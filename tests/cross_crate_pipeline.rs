//! Workspace-level integration: the full pipeline's cross-crate contracts.
//!
//! These tests cut across crate boundaries: wire bytes produced by the
//! gnutella/openft codecs feed the crawler, payloads produced by the
//! corpus feed the scanner, and the filter evaluates against what the
//! analysis sees — every interface a downstream user would compose.

use p2pmal::analysis::{size_census, top_malware};
use p2pmal::core::LimewireScenario;
use p2pmal::corpus::{ContentRef, FamilyId};
use p2pmal::filter::{evaluate, LimewireBuiltin, SizeFilter};

#[test]
fn measured_families_exist_in_roster_and_sizes_match() {
    let mut scenario = LimewireScenario::quick(77);
    scenario.days = 1;
    let run = scenario.run();
    let roster = &run.world.roster;

    // Every measured malware name is a real roster family, and every
    // malicious response's advertised size is one of that family's
    // characteristic sizes — advertisement and ground truth agree.
    let mut seen_any = false;
    for r in run.resolved.iter().filter(|r| r.malware.is_some()) {
        seen_any = true;
        let name = r.malware.as_deref().unwrap();
        let fam = roster
            .by_name(name)
            .unwrap_or_else(|| panic!("unknown family {name}"));
        assert!(
            fam.sizes.contains(&r.record.size),
            "{name} advertised size {} not in {:?}",
            r.record.size,
            fam.sizes
        );
    }
    assert!(seen_any, "the quick scenario must observe malware");

    // The size census over the measured log agrees with the roster.
    let census = size_census(&run.resolved);
    for (name, sizes) in &census.malware_sizes {
        let fam = roster.by_name(name).expect("census family in roster");
        for s in sizes {
            assert!(fam.sizes.contains(s));
        }
    }
}

#[test]
fn scanned_content_hashes_match_store() {
    let mut scenario = LimewireScenario::quick(78);
    scenario.days = 1;
    let run = scenario.run();
    let world = &run.world;
    // For malicious responses, the downloaded content's SHA-1 must equal
    // the store's ground-truth hash for that (family, size).
    let mut checked = 0;
    for r in run
        .resolved
        .iter()
        .filter(|r| r.malware.is_some() && r.sha1.is_some())
    {
        let fam = world.roster.by_name(r.malware.as_deref().unwrap()).unwrap();
        let size_idx = fam
            .sizes
            .iter()
            .position(|&s| s == r.record.size)
            .expect("size is characteristic") as u8;
        let ground = world.store.sha1_of(
            ContentRef::Malware {
                family: fam.id,
                size_idx,
            },
            &world.catalog,
            &world.roster,
        );
        assert_eq!(r.sha1.unwrap(), ground, "transfer must be byte-faithful");
        checked += 1;
        if checked > 50 {
            break;
        }
    }
    assert!(checked > 0);
    // And the echo worm family actually dominates, as designed.
    let top = top_malware(&run.resolved);
    assert_eq!(top[0].item, world.roster.get(FamilyId(0)).name);
}

#[test]
fn filters_compose_with_measured_logs() {
    let mut scenario = LimewireScenario::quick(79);
    scenario.days = 1;
    let run = scenario.run();
    let size = SizeFilter::learn(&run.resolved, 3, 2);
    let builtin = LimewireBuiltin::new();
    let se = evaluate(&size, &run.resolved);
    let be = evaluate(&builtin, &run.resolved);
    assert!(se.detection_rate() > be.detection_rate());
    assert!(se.tp + se.fn_ > 0, "universe non-empty");
    // The learned blocklist is drawn from roster sizes only.
    for s in size.blocked_sizes() {
        assert!(
            run.world
                .roster
                .families()
                .iter()
                .any(|f| f.sizes.contains(&s)),
            "blocked size {s} must be a malware size"
        );
    }
}
