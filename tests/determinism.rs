//! Workspace-level integration: determinism and cross-crate consistency.
//!
//! The reproduction's reproducibility claim is itself testable: the same
//! seed must produce the same study, bit for bit, because every layer —
//! catalog generation, population build-out, simulator event ordering,
//! payload bytes — draws from seeded generators only.

use p2pmal::analysis::{source_breakdown, summarize, top_malware};
use p2pmal::core::telemetry::MetricsRegistry;
use p2pmal::core::LimewireScenario;

fn run(seed: u64) -> (u64, u64, u64, String, f64, MetricsRegistry) {
    let mut scenario = LimewireScenario::quick(seed);
    scenario.days = 1; // keep the determinism check fast
    let run = scenario.run();
    let s = summarize("LimeWire", &run.log, &run.resolved);
    let top = top_malware(&run.resolved);
    let private = source_breakdown(&run.resolved).private_pct;
    (
        s.responses,
        s.malicious,
        run.log.queries_issued,
        top.first().map(|t| t.item.clone()).unwrap_or_default(),
        private,
        // The telemetry registry (counters + sim-time histograms) is part
        // of the determinism contract; its wall-clock histograms compare
        // always-equal by design.
        run.sim_metrics.telemetry,
    )
}

#[test]
fn same_seed_same_study() {
    let a = run(123);
    let b = run(123);
    assert_eq!(a, b, "identical seeds must reproduce the identical study");
}

#[test]
fn different_seed_different_study() {
    let a = run(123);
    let b = run(124);
    // The *shape* holds across seeds but raw counts almost surely differ.
    assert_ne!(
        (a.0, a.2),
        (b.0, b.2),
        "different seeds should differ in raw counts"
    );
}
