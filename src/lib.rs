//! # p2pmal — a study of malware in peer-to-peer networks, reproduced
//!
//! Umbrella crate for the workspace reproducing Kalafut, Acharya and Gupta,
//! *"A study of malware in peer-to-peer networks"* (IMC 2006). It re-exports
//! every subsystem so examples and downstream users can depend on a single
//! crate:
//!
//! * [`netsim`] — deterministic discrete-event network simulator.
//! * [`hashes`] — SHA-1 / MD5 / Base32 (content addressing).
//! * [`archive`] — CRC-32, DEFLATE, ZIP.
//! * [`scanner`] — signature-based anti-virus engine.
//! * [`corpus`] — synthetic benign + malware content ecosystem.
//! * [`gnutella`] — Gnutella 0.6 servent (LimeWire's network).
//! * [`openft`] — OpenFT node (giFT's network).
//! * [`crawler`] — the paper's measurement instrumentation.
//! * [`filter`] — size-based malware filtering and baselines.
//! * [`analysis`] — statistics and table/figure generation.
//! * [`core`] — calibrated end-to-end study scenarios.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use p2pmal_analysis as analysis;
pub use p2pmal_archive as archive;
pub use p2pmal_core as core;
pub use p2pmal_corpus as corpus;
pub use p2pmal_crawler as crawler;
pub use p2pmal_filter as filter;
pub use p2pmal_gnutella as gnutella;
pub use p2pmal_hashes as hashes;
pub use p2pmal_netsim as netsim;
pub use p2pmal_openft as openft;
pub use p2pmal_scanner as scanner;
