//! Wire anatomy: build, dump and re-parse real protocol bytes for both
//! networks — a tour of the codec layers a downstream user gets.
//!
//! ```sh
//! cargo run --example wire_anatomy
//! ```

use p2pmal::gnutella::guid::Guid;
use p2pmal::gnutella::message::{encode_message, MessageReader, MsgType};
use p2pmal::gnutella::payload::{HitResult, QhdFlags, Query, QueryHit, QHD_PUSH};
use p2pmal::gnutella::qrp::{QrpReceiver, QrpTable};
use p2pmal::hashes::sha1;
use p2pmal::openft::packet::{encode_packet, Command, PacketReader, Search, SearchResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

fn hexdump(label: &str, bytes: &[u8]) {
    println!("{label} ({} bytes):", bytes.len());
    for (i, chunk) in bytes.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = chunk
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        println!("  {:04x}  {:<47}  {ascii}", i * 16, hex.join(" "));
        if i >= 5 {
            println!("  ... ({} more bytes)", bytes.len() - (i + 1) * 16);
            break;
        }
    }
    println!();
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Gnutella: a QUERY descriptor -----------------------------------
    println!("== Gnutella 0.6 ==\n");
    let query_guid = Guid::random(&mut rng);
    let query = Query::keyword("crimson horizon remix");
    let mut wire = Vec::new();
    encode_message(query_guid, MsgType::Query, 3, 0, &query.encode(), &mut wire);
    hexdump("QUERY descriptor (23-byte header + payload)", &wire);

    // ...and the QUERYHIT a 2006 worm would answer it with.
    let servent_guid = Guid::random(&mut rng);
    let hit = QueryHit {
        port: 6346,
        ip: Ipv4Addr::new(192, 168, 1, 44), // the RFC 1918 leak the paper measured
        speed: 350,
        results: vec![HitResult {
            index: 0x0100_0000,
            size: 58_368,
            name: "crimson_horizon_remix.exe".into(),
            sha1: Some(sha1(b"the malicious payload")),
        }],
        vendor: *b"LIME",
        flags: QhdFlags::new().with(QHD_PUSH, true),
        ggep: Vec::new(),
        servent_guid,
    };
    let mut hit_wire = Vec::new();
    encode_message(
        query_guid,
        MsgType::QueryHit,
        4,
        0,
        &hit.encode(),
        &mut hit_wire,
    );
    hexdump(
        "QUERYHIT answering it (note the private source address)",
        &hit_wire,
    );

    // Reassemble both from a dribbled byte stream.
    let mut reader = MessageReader::new();
    let mut stream = wire.clone();
    stream.extend_from_slice(&hit_wire);
    for chunk in stream.chunks(11) {
        reader.push(chunk);
    }
    let (h1, p1) = reader.next_message().unwrap().unwrap();
    let (h2, p2) = reader.next_message().unwrap().unwrap();
    let q = Query::parse(&p1).unwrap();
    let qh = QueryHit::parse(&p2).unwrap();
    println!("reparsed: {:?} text={:?}", h1.msg_type, q.text);
    println!(
        "reparsed: {:?} from {}:{} push={} result={:?} ({} bytes)\n",
        h2.msg_type,
        qh.ip,
        qh.port,
        qh.flags.needs_push(),
        qh.results[0].name,
        qh.results[0].size,
    );

    // --- QRP: the table a leaf sends its ultrapeer ----------------------
    let mut table = QrpTable::default_table();
    table.insert_name("crimson_horizon_remix.mp3");
    table.insert_name("silver_echo_toolkit_3.1.exe");
    let msgs = table.to_messages(4096, true);
    println!(
        "QRP table: {} slots, {} populated, shipped as {} messages",
        table.len(),
        table.population(),
        msgs.len()
    );
    let mut rx = QrpReceiver::new();
    for m in &msgs {
        rx.apply(m).unwrap();
    }
    let rebuilt = rx.filter().unwrap();
    println!(
        "ultrapeer side after RESET+PATCH: matches 'crimson horizon'? {} — 'metallica'? {}\n",
        rebuilt.might_match("crimson horizon"),
        rebuilt.might_match("metallica"),
    );

    // --- OpenFT: a search round trip -------------------------------------
    println!("== OpenFT ==\n");
    let req = Search::Request {
        id: 1,
        query: "silver echo toolkit".into(),
    };
    let mut ft_wire = Vec::new();
    encode_packet(Command::Search, &req.encode(), &mut ft_wire);
    hexdump(
        "SEARCH request packet (u16 len + u16 command framing)",
        &ft_wire,
    );

    let result = Search::Result(SearchResult {
        id: 1,
        host: Ipv4Addr::new(4, 8, 15, 16),
        port: 1215,
        http_port: 1216,
        avail: 1,
        md5: p2pmal::hashes::md5(b"registered share"),
        size: 33_280,
        filename: "silver_echo_toolkit.exe".into(),
    });
    let mut res_wire = Vec::new();
    encode_packet(Command::Search, &result.encode(), &mut res_wire);
    encode_packet(
        Command::Search,
        &Search::End { id: 1 }.encode(),
        &mut res_wire,
    );
    hexdump("SEARCH result + end-of-results packets", &res_wire);

    let mut pr = PacketReader::new();
    pr.push(&res_wire);
    while let Some((cmd, payload)) = pr.next_packet().unwrap() {
        println!("reparsed {cmd:?}: {:?}", Search::parse(&payload).unwrap());
    }
}
