//! Size-filter laboratory: learn the paper's size-based filter from a
//! measured crawl and explore its parameter space.
//!
//! ```sh
//! cargo run --release --example size_filter_lab
//! ```
//!
//! Runs a quick LimeWire collection, splits it into train/test halves by
//! day, learns the blocklist from the training half, and prints:
//!
//! * the learned (family, size) blocklist,
//! * the filter-panel comparison (built-in vs heuristics vs size-based),
//! * the k-sweep (how many blocked sizes until detection saturates),
//! * the tolerance ablation (exact vs ± matching).

use p2pmal::analysis::Table;
use p2pmal::core::LimewireScenario;
use p2pmal::filter::sweep::{size_filter_sweep, split_by_day, tolerance_ablation};
use p2pmal::filter::{
    evaluate, EchoHeuristicFilter, HashBlacklist, LimewireBuiltin, ResponseFilter, SizeFilter,
};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    eprintln!("collecting a quick LimeWire crawl (seed {seed})...");
    let run = LimewireScenario::quick(seed).run_with_progress(|d| eprintln!("  day {d} done"));
    let resolved = run.resolved;
    eprintln!(
        "collected {} responses ({} queries)\n",
        resolved.len(),
        run.log.queries_issued
    );

    let (train, test) = split_by_day(&resolved, 1);
    println!(
        "train: {} responses (day 0); test: {} responses (day 1+)\n",
        train.len(),
        test.len()
    );

    // The paper's recipe.
    let size = SizeFilter::learn(&train, 3, 2);
    println!(
        "learned blocklist (top-3 families, <=2 sizes each): {:?}\n",
        size.blocked_sizes()
    );

    // Panel comparison.
    let builtin = LimewireBuiltin::new();
    let echo = EchoHeuristicFilter::new();
    let hash = HashBlacklist::learn(&train);
    let mut t = Table::new(
        "Filter panel (tested on the held-out half)",
        &["filter", "detection", "false positives"],
    );
    for f in [&builtin as &dyn ResponseFilter, &echo, &hash, &size] {
        let ev = evaluate(f, &test);
        t.row(vec![
            ev.name.clone(),
            format!("{:.2}%", ev.detection_pct()),
            format!("{:.3}%", ev.false_positive_pct()),
        ]);
    }
    println!("{}", t.to_markdown());

    // k-sweep.
    let mut t = Table::new("k-sweep", &["k", "detection", "false positives"]);
    for p in size_filter_sweep(&train, &test, &[0, 1, 2, 3, 4, 8]) {
        t.row(vec![
            p.k.to_string(),
            format!("{:.2}%", p.eval.detection_pct()),
            format!("{:.3}%", p.eval.false_positive_pct()),
        ]);
    }
    println!("{}", t.to_markdown());

    // Tolerance ablation.
    let mut t = Table::new(
        "tolerance ablation (k=4)",
        &["± bytes", "detection", "false positives"],
    );
    for (tol, ev) in tolerance_ablation(&train, &test, 4, &[0, 1024, 16384]) {
        t.row(vec![
            tol.to_string(),
            format!("{:.2}%", ev.detection_pct()),
            format!("{:.3}%", ev.false_positive_pct()),
        ]);
    }
    println!("{}", t.to_markdown());
}
