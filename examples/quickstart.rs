//! Quickstart: run a scaled-down version of the full study on both
//! networks and print the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This spins up two simulated P2P ecosystems (a Gnutella ultrapeer/leaf
//! overlay and an OpenFT search/user topology), populates them with benign
//! sharers and 2006-era malware behaviours, runs two simulated days of
//! instrumented crawling on each — queries, response logging, deduplicated
//! downloads, signature scanning — and prints every reconstructed table of
//! the IMC 2006 paper. For the paper-scale 35-day run, use the
//! `p2pmal-bench` experiment binaries.

use p2pmal::core::Study;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    eprintln!("running the quick two-network study (seed {seed})...");
    let report = Study::quick(seed).run_with_progress(|network, day| {
        eprintln!("  {network}: finished simulated day {day}");
    });
    println!("{}", report.render_markdown());

    let comparisons = report.comparisons();
    if comparisons.all_hold() {
        eprintln!("all paper-shape expectations hold at quick scale");
    } else {
        eprintln!(
            "note: {} expectation(s) outside their bands at quick scale — \
             the calibrated numbers are produced by the paper-scale runs \
             (see EXPERIMENTS.md):",
            comparisons.failures().len()
        );
        for f in comparisons.failures() {
            eprintln!(
                "  {}: paper {:.1} vs measured {:.1}",
                f.id, f.paper, f.measured
            );
        }
    }
}
