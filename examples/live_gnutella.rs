//! Live TCP demonstration: the same sans-IO Gnutella servents that power
//! the month-scale simulation, attached to real sockets on localhost.
//!
//! ```sh
//! cargo run --release --example live_gnutella
//! ```
//!
//! Topology: one ultrapeer, one sharing leaf (carrying a query-echo worm
//! infection), and a searching leaf, all on 127.0.0.1. The searcher issues
//! a query over real TCP, receives a wire-format QUERYHIT fabricated by the
//! worm, downloads the payload over HTTP on the same socket pair, and
//! scans it — the full measurement pipeline, no simulator involved.

use p2pmal::corpus::catalog::{Catalog, CatalogConfig};
use p2pmal::corpus::{ContentStore, FamilyId, HostLibrary, Roster};
use p2pmal::gnutella::servent::{
    DownloadMethod, DownloadRequest, Servent, ServentConfig, ServentEvent, SharedWorld,
};
use p2pmal::netsim::live::LiveNode;
use p2pmal::netsim::{App, ConnId, Ctx, Direction, HostAddr, SimDuration};
use p2pmal::scanner::Scanner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

/// Wraps the stock servent: search after a settle delay, then download the
/// first hit and report over a channel.
struct Searcher {
    servent: Servent,
    query: String,
    tx: Sender<(String, u64, Vec<u8>)>,
    searched: bool,
    downloading: bool,
    hit_name: String,
}

const T_SEARCH: u64 = 1 << 50;

impl App for Searcher {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.servent.on_start(ctx);
        ctx.set_timer(SimDuration::from_secs(2), T_SEARCH);
    }
    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, dir: Direction, peer: HostAddr) {
        self.servent.on_connected(ctx, conn, dir, peer);
    }
    fn on_connect_failed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.servent.on_connect_failed(ctx, conn);
    }
    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        self.servent.on_data(ctx, conn, data);
        self.pump(ctx);
    }
    fn on_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.servent.on_closed(ctx, conn);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == T_SEARCH {
            if !self.searched {
                self.searched = true;
                eprintln!("[searcher] querying: {:?}", self.query);
                let q = self.query.clone();
                self.servent.search(ctx, &q);
            }
        } else {
            self.servent.on_timer(ctx, token);
        }
        self.pump(ctx);
    }
}

impl Searcher {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        for ev in self.servent.drain_events() {
            match ev {
                ServentEvent::QueryHit { hit, .. } if !self.downloading => {
                    let res = &hit.results[0];
                    eprintln!(
                        "[searcher] hit from {}:{} — {:?} ({} bytes)",
                        hit.ip, hit.port, res.name, res.size
                    );
                    self.downloading = true;
                    self.hit_name = res.name.clone();
                    self.servent.begin_download(
                        ctx,
                        DownloadRequest {
                            addr: HostAddr::new(hit.ip, hit.port),
                            index: res.index,
                            name: res.name.clone(),
                            servent_guid: hit.servent_guid,
                            method: DownloadMethod::Direct,
                        },
                    );
                }
                ServentEvent::DownloadDone(done) => {
                    if let Ok(body) = done.result {
                        let _ = self
                            .tx
                            .send((self.hit_name.clone(), body.len() as u64, body));
                    }
                }
                _ => {}
            }
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let catalog = Catalog::generate(
        &CatalogConfig {
            titles: 50,
            ..Default::default()
        },
        &mut rng,
    );
    let world = SharedWorld::new(
        Arc::new(catalog),
        Arc::new(Roster::limewire_2006()),
        Arc::new(ContentStore::new(1)),
    );

    // Servents advertise `config.listen_port` in query hits and pongs, so
    // the live socket must be bound to that same port. Derive a base from
    // the PID to dodge collisions with other local runs.
    let base = 20_000 + (std::process::id() % 20_000) as u16;

    // Ultrapeer on a real socket.
    let mut up_cfg = ServentConfig::ultrapeer();
    up_cfg.listen_port = base;
    let up = LiveNode::spawn(
        Box::new(Servent::new(up_cfg, world.clone(), HostLibrary::new())),
        base,
    )
    .expect("bind ultrapeer");
    eprintln!("[up] ultrapeer listening on {}", up.addr());

    // Infected leaf (query-echo worm).
    let mut lib = HostLibrary::new();
    lib.infect(world.roster.get(FamilyId(0)), &world.catalog, &mut rng);
    let mut leaf_cfg = ServentConfig::leaf().with_bootstrap(vec![up.addr()]);
    leaf_cfg.listen_port = base + 1;
    let leaf = LiveNode::spawn(
        Box::new(Servent::new(leaf_cfg, world.clone(), lib)),
        base + 1,
    )
    .expect("bind sharer");
    eprintln!("[leaf] infected leaf on {}", leaf.addr());

    // Searching leaf with a reporting channel.
    let (tx, rx) = channel();
    let mut cfg = ServentConfig::leaf().with_bootstrap(vec![up.addr()]);
    cfg.listen_port = base + 2;
    cfg.collect_events = true;
    let searcher_port = base + 2;
    let searcher = LiveNode::spawn(
        Box::new(Searcher {
            servent: Servent::new(cfg, world.clone(), HostLibrary::new()),
            query: "totally arbitrary search".into(),
            tx,
            searched: false,
            downloading: false,
            hit_name: String::new(),
        }),
        searcher_port,
    )
    .expect("bind searcher");
    eprintln!("[searcher] on {}", searcher.addr());

    let (name, len, body) = rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("download completes over live TCP");
    println!("downloaded {name:?}: {len} bytes over real TCP");

    let scanner = Scanner::new(world.roster.signature_db().unwrap().build().unwrap());
    let verdict = scanner.scan(&name, &body);
    match verdict.primary() {
        Some(fam) => println!("scanner verdict: INFECTED — {fam}"),
        None => println!("scanner verdict: clean"),
    }
    assert_eq!(
        verdict.primary(),
        Some(world.roster.get(FamilyId(0)).name.as_str())
    );
    println!("live wire-level round trip complete.");

    searcher.stop();
    leaf.stop();
    up.stop();
}
