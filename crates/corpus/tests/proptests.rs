//! Property tests on the content ecosystem's invariants.

use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::library::{name_fingerprint, name_matches, query_terms};
use p2pmal_corpus::{CompiledQuery, ContentRef, ContentStore, FamilyId, HostLibrary, Roster, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every payload's length equals its declared size, for all malware
    /// shapes in both rosters.
    #[test]
    fn malware_payload_len_equals_declared_size(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&CatalogConfig { titles: 20, ..Default::default() }, &mut rng);
        let store = ContentStore::new(seed);
        for roster in [Roster::limewire_2006(), Roster::openft_2006()] {
            for fam in roster.families() {
                for (i, &size) in fam.sizes.iter().enumerate() {
                    let r = ContentRef::Malware { family: fam.id, size_idx: i as u8 };
                    prop_assert_eq!(store.size(r, &catalog, &roster), size);
                    prop_assert_eq!(store.payload(r, &catalog, &roster).len() as u64, size);
                }
            }
        }
    }

    /// Replica determinism: two stores with the same seed produce identical
    /// bytes and hashes for the same reference.
    #[test]
    fn replicas_are_identical(seed in any::<u64>(), fam in 0u16..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&CatalogConfig { titles: 10, ..Default::default() }, &mut rng);
        let roster = Roster::limewire_2006();
        let a = ContentStore::new(seed);
        let b = ContentStore::new(seed);
        let r = ContentRef::Malware { family: FamilyId(fam), size_idx: 0 };
        prop_assert_eq!(a.payload(r, &catalog, &roster), b.payload(r, &catalog, &roster));
        prop_assert_eq!(a.hashes(r, &catalog, &roster), b.hashes(r, &catalog, &roster));
        prop_assert_eq!(a.declared_md5(r), b.declared_md5(r));
    }

    /// A filename always matches the query built from its own terms.
    #[test]
    fn name_matches_its_own_terms(name in "[ -~&&[^\\x00]]{1,40}") {
        let terms = query_terms(&name);
        prop_assume!(!terms.is_empty());
        prop_assert!(name_matches(&name, &terms), "{name:?} vs {terms:?}");
    }

    /// Query terms are lowercase, non-empty, alphanumeric.
    #[test]
    fn query_terms_are_normalized(q in "[ -~]{0,60}") {
        for t in query_terms(&q) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_ascii_alphanumeric()));
            prop_assert_eq!(t.clone(), t.to_ascii_lowercase());
        }
    }

    /// Zipf sampling stays in range and pmf is monotonically non-increasing.
    #[test]
    fn zipf_invariants(n in 1usize..200, alpha in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        for k in 1..n {
            prop_assert!(z.pmf(k - 1) >= z.pmf(k) - 1e-12);
        }
    }

    /// An echo-infected host answers any query with at least one result
    /// named after the query, at a characteristic family size.
    #[test]
    fn echo_answers_arbitrary_queries(seed in any::<u64>(), query in "[a-z]{2,10}( [a-z]{2,10}){0,2}") {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&CatalogConfig { titles: 10, ..Default::default() }, &mut rng);
        let roster = Roster::limewire_2006();
        let mut lib = HostLibrary::new();
        lib.infect(roster.get(FamilyId(0)), &catalog, &mut rng);
        let responses = lib.respond(&query, 16);
        prop_assert!(!responses.is_empty());
        for r in &responses {
            prop_assert!(roster.get(FamilyId(0)).sizes.contains(&r.size));
            prop_assert!(r.content.is_malicious());
        }
    }

    /// Fingerprint soundness: a substring's fingerprint bits are always a
    /// subset of the containing string's, so the fast-reject can never
    /// discard a true match. Exercised over arbitrary printable-and-beyond
    /// byte content and arbitrary substring windows.
    #[test]
    fn fingerprint_of_substring_is_subset(name in "\\PC{0,48}", start in 0usize..48, len in 0usize..48) {
        let lower = name.to_ascii_lowercase();
        // Clamp to char boundaries so slicing stays valid.
        let mut s = start.min(lower.len());
        while !lower.is_char_boundary(s) { s -= 1; }
        let mut e = (s + len).min(lower.len());
        while !lower.is_char_boundary(e) { e -= 1; }
        let sub = &lower[s..e.max(s)];
        prop_assert_eq!(name_fingerprint(sub) & !name_fingerprint(&lower), 0);
    }

    /// The compiled hot path is observationally identical to the reference
    /// `query_terms` + `name_matches` pair, over adversarial inputs:
    /// unicode-ish names, empty/punctuation-only queries, and terms that
    /// straddle token boundaries of the name (e.g. "son" in "crimson").
    #[test]
    fn compiled_query_equals_reference(name in "\\PC{0,40}", query in "\\PC{0,40}") {
        let terms = query_terms(&query);
        let reference = name_matches(&name, &terms);
        let compiled = CompiledQuery::compile(&query);
        prop_assert_eq!(compiled.terms(), &terms[..]);
        prop_assert_eq!(compiled.is_empty(), terms.is_empty());
        prop_assert_eq!(compiled.matches_name(&name), reference);
        let lower = name.to_ascii_lowercase();
        prop_assert_eq!(
            compiled.matches_meta(&lower, name_fingerprint(&lower)),
            reference,
            "meta path diverged for name {:?} query {:?}", name, query
        );
    }

    /// `respond` (which now runs the compiled fingerprint path) returns
    /// exactly the static files the reference matcher accepts, in library
    /// order, for any query against a real catalog population.
    #[test]
    fn respond_equals_reference_filter(seed in any::<u64>(), query in "[ -~]{0,24}") {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&CatalogConfig { titles: 30, ..Default::default() }, &mut rng);
        let mut lib = HostLibrary::new();
        for i in 0..8 {
            lib.add_benign(catalog.item(i), 0);
        }
        let terms = query_terms(&query);
        let expected: Vec<std::sync::Arc<str>> = if terms.is_empty() {
            Vec::new()
        } else {
            lib.files()
                .iter()
                .filter(|f| name_matches(&f.name, &terms))
                .map(|f| f.name.clone())
                .collect()
        };
        let got: Vec<std::sync::Arc<str>> =
            lib.respond(&query, usize::MAX).into_iter().map(|f| f.name).collect();
        prop_assert_eq!(got, expected);
    }

    /// Clean libraries never respond to queries that match nothing, and
    /// every response of a clean library is benign.
    #[test]
    fn clean_library_responses_are_benign(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&CatalogConfig { titles: 50, ..Default::default() }, &mut rng);
        let mut lib = HostLibrary::new();
        for i in 0..5 {
            lib.add_benign(catalog.item(i), 0);
        }
        prop_assert!(lib.respond("zz qq xx", 16).is_empty());
        let kw = catalog.item(0).keywords[0].clone();
        for r in lib.respond(&kw, 16) {
            prop_assert!(!r.content.is_malicious());
        }
    }
}
