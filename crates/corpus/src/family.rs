//! Malware families and their response-generation behaviour.
//!
//! The paper's headline structure — 68% prevalence, top-3 families covering
//! 99% of malicious responses, families recognizable by a handful of exact
//! file sizes — is produced by *how* 2006-era P2P malware answered queries,
//! not by the binaries themselves. Three behaviours dominate:
//!
//! * **Query-echo worms** (Mandragore lineage): an infected host answers
//!   *every* query with `<query>.exe`, so one infected host pollutes the
//!   whole keyword space and malicious responses swamp benign ones.
//! * **Fixed-name trojans**: the malware shares itself under a static list
//!   of enticing names; it only answers queries matching those names.
//! * **Popular-title baiters**: the malware clones the names of currently
//!   popular titles, riding the benign popularity distribution.
//!
//! Each family carries a small set of characteristic payload sizes (the
//! paper's filtering insight) and an embedded byte signature the
//! `p2pmal-scanner` engine detects — our stand-in for the study's AV engine.
//!
//! Family names here are *representative* of the 2006 ecosystem; the
//! abstract does not name the study's actual top families.

use p2pmal_hashes::sha1;
use p2pmal_scanner::{SignatureDb, SignatureError};
use std::fmt;

/// Dense identifier of a malware family within a [`Roster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FamilyId(pub u16);

impl fmt::Display for FamilyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// How a family names the files it offers in query responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NamingStrategy {
    /// Answer **every** query with `<query>.<ext>`, one response per
    /// configured extension. `verbatim` worms echo the query text exactly
    /// (spaces preserved) — the Mandragore-style shape LimeWire's built-in
    /// filter recognizes; non-verbatim worms join terms with underscores
    /// and evade it.
    QueryEcho {
        extensions: Vec<String>,
        verbatim: bool,
    },
    /// Share a fixed set of enticing filenames; answer only queries whose
    /// terms all occur in one of them.
    FixedNames(Vec<String>),
    /// Answer queries matching popular benign titles with
    /// `<matched title>.<ext>` — parasitic on the popularity distribution.
    PopularBait { extension: String },
}

/// The on-the-wire container of the malicious payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Container {
    /// A bare Win32 executable (`MZ` header).
    Executable,
    /// A ZIP archive holding one infected executable — the shape that makes
    /// archive traversal in the scanner necessary.
    ZipOfExecutable,
}

/// One malware family: identity, detection signature, characteristic sizes
/// and response behaviour.
#[derive(Debug, Clone)]
pub struct MalwareFamily {
    pub id: FamilyId,
    /// AV-style detection name, e.g. `W32.Polipos.A`.
    pub name: String,
    /// Byte pattern embedded in every payload of this family; derived
    /// deterministically from the name so signatures and payloads always
    /// agree. 24 bytes — long enough that a pseudorandom benign payload
    /// collides with probability ~2^-192.
    pub signature: Vec<u8>,
    /// Characteristic *transfer* sizes in bytes. Real P2P malware of the era
    /// had very few distinct sizes per family because each infected host
    /// served an identical binary; this is the property the paper's filter
    /// exploits.
    pub sizes: Vec<u64>,
    pub naming: NamingStrategy,
    pub container: Container,
    /// Relative weight of this family when infecting hosts in a scenario
    /// preset; normalized by the roster.
    pub prevalence_weight: f64,
}

impl MalwareFamily {
    /// Builds a family, deriving the signature from `name`.
    pub fn new(
        id: FamilyId,
        name: &str,
        sizes: Vec<u64>,
        naming: NamingStrategy,
        container: Container,
        prevalence_weight: f64,
    ) -> Self {
        assert!(!sizes.is_empty(), "family {name} needs at least one size");
        assert!(
            prevalence_weight > 0.0,
            "family {name} needs positive weight"
        );
        MalwareFamily {
            id,
            name: name.to_string(),
            signature: derive_signature(name),
            sizes,
            naming,
            container,
            prevalence_weight,
        }
    }

    /// Hex form of the signature, as stored in the scanner's text DB.
    pub fn signature_hex(&self) -> String {
        p2pmal_hashes::to_hex(&self.signature)
    }
}

/// Derives the 24-byte embedded signature for a family name.
///
/// SHA-1 of the name gives 20 bytes; the final 4 bytes are a fixed sentinel
/// that keeps all family signatures visually identifiable in hex dumps.
pub fn derive_signature(name: &str) -> Vec<u8> {
    let mut sig = sha1(name.as_bytes()).0.to_vec();
    sig.extend_from_slice(&[0xDE, 0xAD, 0xF1, 0x1E]);
    sig
}

/// A set of malware families active in one network scenario.
#[derive(Debug, Clone, Default)]
pub struct Roster {
    families: Vec<MalwareFamily>,
}

impl Roster {
    pub fn new(families: Vec<MalwareFamily>) -> Self {
        for (i, f) in families.iter().enumerate() {
            assert_eq!(f.id.0 as usize, i, "family ids must be dense and ordered");
        }
        Roster { families }
    }

    pub fn families(&self) -> &[MalwareFamily] {
        &self.families
    }

    pub fn len(&self) -> usize {
        self.families.len()
    }

    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    pub fn get(&self, id: FamilyId) -> &MalwareFamily {
        &self.families[id.0 as usize]
    }

    /// Looks a family up by detection name.
    pub fn by_name(&self, name: &str) -> Option<&MalwareFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Builds the scanner signature database covering every family — the
    /// reproduction's equivalent of the study's AV definitions file.
    pub fn signature_db(&self) -> Result<SignatureDb, SignatureError> {
        let mut db = SignatureDb::new();
        for f in &self.families {
            db.add_literal(&f.name, &f.signature)?;
        }
        Ok(db)
    }

    /// Total prevalence weight, for normalized sampling.
    pub fn total_weight(&self) -> f64 {
        self.families.iter().map(|f| f.prevalence_weight).sum()
    }

    /// The roster used for the LimeWire scenario: three dominant query-echo
    /// families (the abstract: "the top three most prevalent malware account
    /// for 99% of all the malicious responses") plus a long tail of
    /// fixed-name and baiting families.
    pub fn limewire_2006() -> Self {
        let mut v = Vec::new();
        let mut id = 0u16;
        let mut push = |f: MalwareFamily| v.push(f);

        // Dominant echo worms. Host-infection weights are chosen so that,
        // response-weighted (Alcra answers twice per query, once per
        // extension), the top three land near 60/33/6.5 of the malicious
        // total — a plausible decomposition of the abstract's "top 3 =
        // 99%" in which the #3 family is also the only one LimeWire's
        // Mandragore-style built-in filter recognizes (its ~6%).
        push(MalwareFamily::new(
            FamilyId(id),
            "W32.Padobot.P2P",
            vec![58_368],
            NamingStrategy::QueryEcho {
                extensions: vec!["exe".into()],
                verbatim: false,
            },
            Container::Executable,
            60.0,
        ));
        id += 1;
        push(MalwareFamily::new(
            FamilyId(id),
            "W32.Alcra.B",
            vec![178_176, 180_224],
            NamingStrategy::QueryEcho {
                extensions: vec!["exe".into(), "zip".into()],
                verbatim: false,
            },
            Container::Executable,
            16.5,
        ));
        id += 1;
        push(MalwareFamily::new(
            FamilyId(id),
            "W32.Bagle.DL",
            vec![92_672],
            NamingStrategy::QueryEcho {
                extensions: vec!["exe".into()],
                verbatim: true,
            },
            Container::ZipOfExecutable,
            6.5,
        ));
        id += 1;

        // The 1% tail: seven minor families, mixed behaviours.
        let tail: [(&str, u64, bool); 7] = [
            ("W32.Gobot.A", 71_168, false),
            ("Trojan.Istbar.PK", 12_800, true),
            ("W32.Stration.P", 133_632, false),
            ("VBS.Gormlez", 8_704, true),
            ("W32.Antinny.Q", 417_792, false),
            ("Trojan.Dropper.PS", 66_048, true),
            ("W32.Sality.Gen", 245_760, false),
        ];
        for (i, (name, size, fixed)) in tail.iter().enumerate() {
            let naming = if *fixed {
                NamingStrategy::FixedNames(fixed_name_list(name))
            } else {
                NamingStrategy::PopularBait {
                    extension: "exe".into(),
                }
            };
            let container = if i % 3 == 2 {
                Container::ZipOfExecutable
            } else {
                Container::Executable
            };
            push(MalwareFamily::new(
                FamilyId(id),
                name,
                vec![*size],
                naming,
                container,
                0.3,
            ));
            id += 1;
        }
        Roster::new(v)
    }

    /// The roster used for the OpenFT scenario: one family served almost
    /// entirely by a single host ("the top virus, which accounts of 67% of
    /// all the malicious responses, is served by a single host"), two minor
    /// families bringing the top-3 share to ~75%, and a diffuse tail.
    pub fn openft_2006() -> Self {
        let mut v = Vec::new();
        v.push(MalwareFamily::new(
            FamilyId(0),
            "W32.Gnuman.A",
            vec![33_280],
            NamingStrategy::FixedNames(fixed_name_list("W32.Gnuman.A")),
            Container::Executable,
            67.0,
        ));
        v.push(MalwareFamily::new(
            FamilyId(1),
            "Trojan.Zlob.FT",
            vec![102_400],
            NamingStrategy::FixedNames(fixed_name_list("Trojan.Zlob.FT")),
            Container::Executable,
            4.5,
        ));
        v.push(MalwareFamily::new(
            FamilyId(2),
            "W32.Polipos.A",
            vec![196_608, 198_656],
            NamingStrategy::PopularBait {
                extension: "exe".into(),
            },
            Container::Executable,
            3.5,
        ));
        // Diffuse 25% tail across five families.
        let tail: [(&str, u64); 5] = [
            ("Trojan.Istbar.FT", 24_576),
            ("W32.Bacalid.A", 154_112),
            ("Trojan.Dialer.QN", 45_056),
            ("W32.Looked.P", 61_440),
            ("Trojan.Agent.FT", 88_064),
        ];
        for (i, (name, size)) in tail.iter().enumerate() {
            let naming = if i % 2 == 0 {
                NamingStrategy::FixedNames(fixed_name_list(name))
            } else {
                NamingStrategy::PopularBait {
                    extension: "exe".into(),
                }
            };
            v.push(MalwareFamily::new(
                FamilyId(3 + i as u16),
                name,
                vec![*size],
                naming,
                Container::Executable,
                5.0,
            ));
        }
        Roster::new(v)
    }
}

/// Static enticing filenames for fixed-name families, derived from the
/// family name so every family's list is distinct but deterministic.
fn fixed_name_list(family: &str) -> Vec<String> {
    let h = sha1(family.as_bytes()).0;
    let bases = [
        "free winzip crack",
        "photoshop keygen",
        "windows activation",
        "divx pro serial",
        "nero burning rom key",
        "popular screensaver",
        "msn password hack",
        "game trainer pack",
    ];
    // Pick four bases, offset by the hash, so lists differ per family.
    (0..4)
        .map(|i| {
            let base = bases[(h[i] as usize + i) % bases.len()];
            format!("{}.exe", base.replace(' ', "_"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_are_24_bytes_and_distinct() {
        let r = Roster::limewire_2006();
        let mut seen = std::collections::HashSet::new();
        for f in r.families() {
            assert_eq!(f.signature.len(), 24, "{}", f.name);
            assert!(
                seen.insert(f.signature.clone()),
                "duplicate signature {}",
                f.name
            );
            assert_eq!(&f.signature[20..], &[0xDE, 0xAD, 0xF1, 0x1E]);
        }
    }

    #[test]
    fn signature_is_deterministic_function_of_name() {
        assert_eq!(derive_signature("W32.Test"), derive_signature("W32.Test"));
        assert_ne!(derive_signature("W32.Test"), derive_signature("W32.Test2"));
    }

    #[test]
    fn rosters_have_dense_ordered_ids() {
        for roster in [Roster::limewire_2006(), Roster::openft_2006()] {
            for (i, f) in roster.families().iter().enumerate() {
                assert_eq!(f.id.0 as usize, i);
                assert!(!f.sizes.is_empty());
            }
        }
    }

    #[test]
    fn limewire_top3_have_dominant_weight() {
        let r = Roster::limewire_2006();
        let total = r.total_weight();
        let top3: f64 = r.families()[..3].iter().map(|f| f.prevalence_weight).sum();
        assert!(top3 / total > 0.95, "top3 weight share {}", top3 / total);
        // And the top three are all echo worms — the response amplifiers.
        for f in &r.families()[..3] {
            assert!(
                matches!(f.naming, NamingStrategy::QueryEcho { .. }),
                "{}",
                f.name
            );
        }
    }

    #[test]
    fn openft_top_family_is_two_thirds_by_weight() {
        let r = Roster::openft_2006();
        let share = r.families()[0].prevalence_weight / r.total_weight();
        assert!((share - 0.67).abs() < 0.03, "top share {share}");
    }

    #[test]
    fn signature_db_detects_each_family_payload_prefix() {
        let r = Roster::openft_2006();
        let db = r.signature_db().unwrap().build().unwrap();
        for f in r.families() {
            let mut fake_payload = vec![0x4D, 0x5A, 0, 0]; // MZ..
            fake_payload.extend_from_slice(&f.signature);
            fake_payload.extend_from_slice(&[0u8; 64]);
            let hits = db.matches(&fake_payload);
            assert!(hits.contains(&f.name.as_str()), "{} not detected", f.name);
        }
    }

    #[test]
    fn fixed_name_lists_are_exe_and_family_specific() {
        let a = fixed_name_list("W32.A");
        let b = fixed_name_list("W32.Gnuman.A");
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|n| n.ends_with(".exe")));
        assert_ne!(a, b);
    }

    #[test]
    fn by_name_lookup() {
        let r = Roster::limewire_2006();
        assert!(r.by_name("W32.Alcra.B").is_some());
        assert!(r.by_name("W32.DoesNotExist").is_none());
    }
}
