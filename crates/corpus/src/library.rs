//! Per-host share libraries: what one peer offers in response to queries.
//!
//! A library holds *static* shared files (benign variants, fixed-name
//! trojans, popularity-bait clones) plus *dynamic* infections: query-echo
//! worms that fabricate a matching response for every query they see. The
//! protocol servents (Gnutella, OpenFT) own a `HostLibrary` and translate
//! its responses into wire-format query hits.

use crate::catalog::{BenignItem, Catalog};
use crate::family::{FamilyId, MalwareFamily, NamingStrategy};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Identifies the bytes behind a shared file. Payloads are a pure function
/// of the reference (plus the store seed), so replicas of the same content
/// on different hosts are byte-identical — exactly like real file sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContentRef {
    /// Variant `variant` of benign catalog title `item`.
    Benign { item: u32, variant: u8 },
    /// The infected binary of `family` at characteristic size `size_idx`.
    Malware { family: FamilyId, size_idx: u8 },
}

impl ContentRef {
    /// The family behind this content, if malicious.
    pub fn family(&self) -> Option<FamilyId> {
        match self {
            ContentRef::Malware { family, .. } => Some(*family),
            ContentRef::Benign { .. } => None,
        }
    }

    /// Ground-truth label (the simulator knows; the crawler must *measure*).
    pub fn is_malicious(&self) -> bool {
        matches!(self, ContentRef::Malware { .. })
    }
}

/// One file a host offers: display name, exact transfer size, and the
/// content reference resolving to its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedFile {
    pub name: String,
    pub size: u64,
    pub content: ContentRef,
}

/// A dynamic query-echo infection resident on a host.
#[derive(Debug, Clone)]
struct EchoInfection {
    family: FamilyId,
    size_idx: u8,
    size: u64,
    extensions: Vec<String>,
    verbatim: bool,
}

/// The share library of a single host.
#[derive(Debug, Clone, Default)]
pub struct HostLibrary {
    files: Vec<SharedFile>,
    echoes: Vec<EchoInfection>,
    /// Families present on this host (static or dynamic), for censuses.
    infections: Vec<FamilyId>,
}

/// Splits a query string into lower-cased match terms the way Gnutella
/// servents do: whitespace- and punctuation-separated words.
pub fn query_terms(query: &str) -> Vec<String> {
    query
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// True when every term occurs as a substring of the lower-cased name —
/// the servent-side match rule.
pub fn name_matches(name: &str, terms: &[String]) -> bool {
    if terms.is_empty() {
        return false;
    }
    let lower = name.to_ascii_lowercase();
    terms.iter().all(|t| lower.contains(t.as_str()))
}

impl HostLibrary {
    pub fn new() -> Self {
        Self::default()
    }

    /// All static files (echo responses are fabricated per query and do not
    /// appear here).
    pub fn files(&self) -> &[SharedFile] {
        &self.files
    }

    /// Families infecting this host.
    pub fn infections(&self) -> &[FamilyId] {
        &self.infections
    }

    pub fn is_infected(&self) -> bool {
        !self.infections.is_empty()
    }

    /// True when a query-echo worm is resident — such hosts want to see
    /// *every* query (e.g. they saturate their QRP table when acting as a
    /// Gnutella leaf).
    pub fn has_echo(&self) -> bool {
        !self.echoes.is_empty()
    }

    /// Number of static shared files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty() && self.echoes.is_empty()
    }

    /// Shares one variant of a benign title.
    pub fn add_benign(&mut self, item: &BenignItem, variant: usize) {
        let v = &item.variants[variant];
        self.files.push(SharedFile {
            name: v.name.clone(),
            size: v.size,
            content: ContentRef::Benign {
                item: item.id,
                variant: variant as u8,
            },
        });
    }

    /// Adds an arbitrary pre-built file (used by tests and custom hosts).
    pub fn add_file(&mut self, file: SharedFile) {
        self.files.push(file);
    }

    /// Infects this host with `family`. The host picks one characteristic
    /// size (the first size is the most common replica, weighted 4:1 over
    /// the rest, which is what makes "most commonly seen sizes" meaningful)
    /// and then:
    ///
    /// * `QueryEcho` — registers a dynamic responder;
    /// * `FixedNames` — shares the static enticing names;
    /// * `PopularBait` — shares clones named after `bait_titles`
    ///   popularity-sampled catalog titles.
    pub fn infect(&mut self, family: &MalwareFamily, catalog: &Catalog, rng: &mut StdRng) {
        let size_idx = pick_size_idx(family, rng);
        let size = family.sizes[size_idx as usize];
        let content = ContentRef::Malware {
            family: family.id,
            size_idx,
        };
        match &family.naming {
            NamingStrategy::QueryEcho {
                extensions,
                verbatim,
            } => {
                self.echoes.push(EchoInfection {
                    family: family.id,
                    size_idx,
                    size,
                    extensions: extensions.clone(),
                    verbatim: *verbatim,
                });
            }
            NamingStrategy::FixedNames(names) => {
                for name in names {
                    self.files.push(SharedFile {
                        name: name.clone(),
                        size,
                        content,
                    });
                }
            }
            NamingStrategy::PopularBait { extension } => {
                // Bait titles are sampled uniformly over the catalog: real
                // baiters skew popular, but the measured tail shares of
                // such families are well under 1% of malicious responses,
                // which uniform title mass reproduces (DESIGN.md §4, T2).
                const BAIT_TITLES: usize = 6;
                for _ in 0..BAIT_TITLES {
                    let title = catalog.sample_uniform(rng);
                    let name = format!("{}.{extension}", title.keywords.join("_"));
                    // Avoid duplicate names if sampling repeats a title.
                    if !self.files.iter().any(|f| f.name == name) {
                        self.files.push(SharedFile {
                            name,
                            size,
                            content,
                        });
                    }
                }
            }
        }
        self.infections.push(family.id);
    }

    /// Infects this host as a *superspreader*: `baits` popularity-sampled
    /// bait clones of `family`, regardless of the family's native naming
    /// strategy. This models the single OpenFT host the paper found serving
    /// 67% of all malicious responses — one always-on machine sharing one
    /// virus under a large number of popular titles.
    pub fn infect_superspreader(
        &mut self,
        family: &MalwareFamily,
        catalog: &Catalog,
        baits: usize,
        rng: &mut StdRng,
    ) {
        let size_idx = pick_size_idx(family, rng);
        let size = family.sizes[size_idx as usize];
        let content = ContentRef::Malware {
            family: family.id,
            size_idx,
        };
        let mut added = 0;
        let mut attempts = 0;
        // Bait titles come uniformly from below the top popularity decile:
        // the host's query-mass share is then close to its bait count times
        // the mean tail-title mass, instead of being dominated by whether a
        // lucky draw shares keywords with a chart-topper. This keeps the
        // calibration knob (bait count -> share of malicious responses)
        // stable across seeds.
        let skip = catalog.len() / 10;
        while added < baits && attempts < baits * 8 {
            attempts += 1;
            let rank = skip + (rng.next_u64() as usize) % (catalog.len() - skip).max(1);
            let title = catalog.item(rank as u32);
            let name = format!("{}.exe", title.keywords.join("_"));
            if !self.files.iter().any(|f| f.name == name) {
                self.files.push(SharedFile {
                    name,
                    size,
                    content,
                });
                added += 1;
            }
        }
        self.infections.push(family.id);
    }

    /// Computes this host's responses to `query`, capped at `max` results
    /// (servents cap per-query results; LimeWire used 64). Echo infections
    /// answer *every* non-empty query; static files answer only on keyword
    /// match. Echo responses come first — the worm wants to be downloaded.
    pub fn respond(&self, query: &str, max: usize) -> Vec<SharedFile> {
        let terms = query_terms(query);
        if terms.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for echo in &self.echoes {
            // Verbatim worms echo the raw query text (Mandragore-style);
            // the rest join terms with underscores, evading exact-echo
            // filters.
            let stem: String = if echo.verbatim {
                query.trim().to_string()
            } else {
                terms.join("_")
            };
            for ext in &echo.extensions {
                if out.len() >= max {
                    return out;
                }
                out.push(SharedFile {
                    name: format!("{stem}.{ext}"),
                    size: echo.size,
                    content: ContentRef::Malware {
                        family: echo.family,
                        size_idx: echo.size_idx,
                    },
                });
            }
        }
        for f in &self.files {
            if out.len() >= max {
                break;
            }
            if name_matches(&f.name, &terms) {
                out.push(f.clone());
            }
        }
        out
    }
}

/// Weighted choice of a characteristic size: index 0 carries 4x the weight
/// of each later index.
fn pick_size_idx(family: &MalwareFamily, rng: &mut StdRng) -> u8 {
    let n = family.sizes.len();
    if n == 1 {
        return 0;
    }
    let total = 4 + (n - 1);
    let roll = rng.gen_range(0..total);
    if roll < 4 {
        0
    } else {
        (roll - 3) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::family::{Container, Roster};
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(1);
        Catalog::generate(
            &CatalogConfig {
                titles: 200,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn query_terms_split_and_lowercase() {
        assert_eq!(query_terms("Crimson  Horizon"), vec!["crimson", "horizon"]);
        assert_eq!(query_terms("a-b_c.d"), vec!["a", "b", "c", "d"]);
        assert!(query_terms("  ").is_empty());
    }

    #[test]
    fn name_matching_rules() {
        let terms = query_terms("silver echo");
        assert!(name_matches("silver_echo_remix.mp3", &terms));
        assert!(name_matches("SILVER_ECHO.mp3", &terms));
        assert!(!name_matches("silver_serenade.mp3", &terms));
        assert!(!name_matches("anything", &[]));
    }

    #[test]
    fn benign_files_answer_matching_queries_only() {
        let cat = catalog();
        let mut lib = HostLibrary::new();
        lib.add_benign(cat.item(0), 0);
        let kw = cat.item(0).keywords[0].clone();
        assert_eq!(lib.respond(&kw, 64).len(), 1);
        assert!(lib.respond("zzzz9999", 64).is_empty());
        assert!(!lib.is_infected());
    }

    #[test]
    fn echo_worm_answers_every_query_with_query_name() {
        let cat = catalog();
        let roster = Roster::limewire_2006();
        let mut rng = StdRng::seed_from_u64(5);
        let mut lib = HostLibrary::new();
        lib.infect(roster.get(FamilyId(0)), &cat, &mut rng);
        for q in ["madonna", "quarterly report", "xyzzy plugh"] {
            let rs = lib.respond(q, 64);
            assert_eq!(rs.len(), 1, "query {q}");
            assert!(rs[0].name.ends_with(".exe"));
            assert!(rs[0].content.is_malicious());
            assert_eq!(rs[0].size, roster.get(FamilyId(0)).sizes[0]);
        }
        let rs = lib.respond("free music", 64);
        assert_eq!(rs[0].name, "free_music.exe");
    }

    #[test]
    fn multi_extension_echo_produces_one_response_per_extension() {
        let cat = catalog();
        let roster = Roster::limewire_2006();
        let alcra = roster.by_name("W32.Alcra.B").unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut lib = HostLibrary::new();
        lib.infect(alcra, &cat, &mut rng);
        let rs = lib.respond("test", 64);
        assert_eq!(rs.len(), 2);
        let exts: Vec<&str> = rs
            .iter()
            .map(|f| f.name.rsplit('.').next().unwrap())
            .collect();
        assert_eq!(exts, vec!["exe", "zip"]);
    }

    #[test]
    fn fixed_name_trojan_answers_only_its_names() {
        let cat = catalog();
        let roster = Roster::openft_2006();
        let gnuman = roster.get(FamilyId(0));
        let mut rng = StdRng::seed_from_u64(7);
        let mut lib = HostLibrary::new();
        lib.infect(gnuman, &cat, &mut rng);
        assert!(lib.is_infected());
        assert_eq!(lib.len(), 4, "four enticing names");
        // A query matching one of the fixed names hits; others miss.
        let name = lib.files()[0].name.clone();
        let first_word = name.split('_').next().unwrap().to_string();
        assert!(!lib.respond(&first_word, 64).is_empty());
        assert!(lib.respond("completely unrelated", 64).is_empty());
    }

    #[test]
    fn popular_bait_rides_catalog_titles() {
        let cat = catalog();
        let roster = Roster::limewire_2006();
        let baiter = roster
            .families()
            .iter()
            .find(|f| matches!(f.naming, NamingStrategy::PopularBait { .. }))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut lib = HostLibrary::new();
        lib.infect(baiter, &cat, &mut rng);
        assert!(!lib.files().is_empty());
        for f in lib.files() {
            assert!(f.name.ends_with(".exe"));
            assert!(f.content.is_malicious());
            assert_eq!(f.size, baiter.sizes[0]);
        }
    }

    #[test]
    fn respond_respects_cap() {
        let cat = catalog();
        let roster = Roster::limewire_2006();
        let mut rng = StdRng::seed_from_u64(9);
        let mut lib = HostLibrary::new();
        for _ in 0..5 {
            lib.infect(roster.get(FamilyId(1)), &cat, &mut rng); // 2 exts each
        }
        assert_eq!(lib.respond("anything", 3).len(), 3);
    }

    #[test]
    fn size_idx_prefers_first_size() {
        let roster = Roster::limewire_2006();
        let alcra = roster.by_name("W32.Alcra.B").unwrap();
        assert_eq!(alcra.sizes.len(), 2);
        let mut rng = StdRng::seed_from_u64(10);
        let mut first = 0;
        for _ in 0..1000 {
            if pick_size_idx(alcra, &mut rng) == 0 {
                first += 1;
            }
        }
        // 4:1 weighting => ~80%.
        assert!((700..=900).contains(&first), "first-size picks {first}");
        let _ = Container::Executable; // silence unused import in some cfgs
    }
}
