//! Per-host share libraries: what one peer offers in response to queries.
//!
//! A library holds *static* shared files (benign variants, fixed-name
//! trojans, popularity-bait clones) plus *dynamic* infections: query-echo
//! worms that fabricate a matching response for every query they see. The
//! protocol servents (Gnutella, OpenFT) own a `HostLibrary` and translate
//! its responses into wire-format query hits.

use crate::catalog::{BenignItem, Catalog};
use crate::family::{FamilyId, MalwareFamily, NamingStrategy};
use crate::intern::{NameInterner, NameRecord};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identifies the bytes behind a shared file. Payloads are a pure function
/// of the reference (plus the store seed), so replicas of the same content
/// on different hosts are byte-identical — exactly like real file sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContentRef {
    /// Variant `variant` of benign catalog title `item`.
    Benign { item: u32, variant: u8 },
    /// The infected binary of `family` at characteristic size `size_idx`.
    Malware { family: FamilyId, size_idx: u8 },
}

impl ContentRef {
    /// The family behind this content, if malicious.
    pub fn family(&self) -> Option<FamilyId> {
        match self {
            ContentRef::Malware { family, .. } => Some(*family),
            ContentRef::Benign { .. } => None,
        }
    }

    /// Ground-truth label (the simulator knows; the crawler must *measure*).
    pub fn is_malicious(&self) -> bool {
        matches!(self, ContentRef::Malware { .. })
    }
}

/// One file a host offers: display name, exact transfer size, and the
/// content reference resolving to its bytes.
/// `name` is an `Arc<str>`: replicas of the same content carry the same
/// name on thousands of hosts, and libraries built through a shared
/// [`NameInterner`] all point at one allocation per distinct name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedFile {
    pub name: std::sync::Arc<str>,
    pub size: u64,
    pub content: ContentRef,
}

/// A dynamic query-echo infection resident on a host.
#[derive(Debug, Clone)]
struct EchoInfection {
    family: FamilyId,
    size_idx: u8,
    size: u64,
    extensions: Vec<String>,
    verbatim: bool,
}

/// The share library of a single host.
///
/// Arena-backed: match metadata (lowered name + fingerprint) lives in
/// world-shared [`NameRecord`]s, one per *distinct* name, so a host's
/// per-file cost is one slice row plus one `Arc` — no owned text at all
/// once an interner is attached. (`SharedFile` itself stays a plain
/// wire-shaped value that is cheap to clone into query hits.)
#[derive(Debug, Clone, Default)]
pub struct HostLibrary {
    files: Vec<SharedFile>,
    /// Parallel to `files`: the shared name records used for matching.
    recs: Vec<std::sync::Arc<NameRecord>>,
    /// World-shared filename dedup table; inserts route through it when
    /// set (the servents attach their world's interner at construction).
    interner: Option<std::sync::Arc<NameInterner>>,
    echoes: Vec<EchoInfection>,
    /// Families present on this host (static or dynamic), for censuses.
    infections: Vec<FamilyId>,
}

/// Splits a query string into lower-cased match terms the way Gnutella
/// servents do: whitespace- and punctuation-separated words.
pub fn query_terms(query: &str) -> Vec<String> {
    query
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// True when every term occurs as a substring of the lower-cased name —
/// the servent-side match rule. This is the reference implementation; the
/// hot path goes through [`CompiledQuery`], which must stay observationally
/// identical (see the proptest equivalence suite).
pub fn name_matches(name: &str, terms: &[String]) -> bool {
    if terms.is_empty() {
        return false;
    }
    let lower = name.to_ascii_lowercase();
    terms.iter().all(|t| lower.contains(t.as_str()))
}

#[inline]
fn fp_bit(x: u64) -> u64 {
    1u64 << (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
}

/// 64-bit character/bigram fingerprint of an (already lowered) name.
///
/// One bit per distinct byte and per distinct byte bigram. Substrings set a
/// subset of the bits their containing string sets, so for any term `t` and
/// name `n`: `lower(n).contains(t)` implies
/// `name_fingerprint(t) & !name_fingerprint(lower(n)) == 0`. The converse
/// does not hold — the fingerprint is a fast *reject* only, and every
/// accept still runs the exact substring check.
pub fn name_fingerprint(lower: &str) -> u64 {
    let b = lower.as_bytes();
    let mut fp = 0u64;
    for i in 0..b.len() {
        fp |= fp_bit(b[i] as u64);
        if i + 1 < b.len() {
            fp |= fp_bit(((b[i] as u64) << 8) | b[i + 1] as u64);
        }
    }
    fp
}

/// A query tokenized (and fingerprinted) once at origination, then carried
/// through the overlay so forwarding hops, QRP checks, and per-library
/// matching never re-tokenize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledQuery {
    raw: String,
    terms: Vec<String>,
    fp: u64,
}

impl CompiledQuery {
    pub fn compile(query: &str) -> Self {
        let terms = query_terms(query);
        let fp = terms.iter().fold(0u64, |a, t| a | name_fingerprint(t));
        CompiledQuery {
            raw: query.to_string(),
            terms,
            fp,
        }
    }

    /// The original query text as it travels on the wire.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// Lower-cased match terms, in query order.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Combined fingerprint (OR over the terms' fingerprints).
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// True when the query has no match terms (such queries match nothing).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Match against a precomputed lowered name + fingerprint. Exactly
    /// equivalent to `name_matches(name, terms)`: the fingerprint subset
    /// test only short-circuits definite misses.
    #[inline]
    pub fn matches_meta(&self, lower: &str, name_fp: u64) -> bool {
        if self.terms.is_empty() || self.fp & !name_fp != 0 {
            return false;
        }
        self.terms.iter().all(|t| lower.contains(t.as_str()))
    }

    /// Match against a raw name (lowers on the fly; used where no cached
    /// meta exists). Equivalent to `name_matches(name, self.terms())`.
    pub fn matches_name(&self, name: &str) -> bool {
        name_matches(name, &self.terms)
    }
}

/// A bounded, shared compile cache: the same query text floods through
/// hundreds of servents per origination, so each distinct text is
/// tokenized + fingerprinted once per world instead of once per hop.
#[derive(Debug, Default)]
pub struct QueryCache {
    map: Mutex<HashMap<String, Arc<CompiledQuery>>>,
}

impl QueryCache {
    /// Cap on distinct cached texts; beyond it, compiles are uncached
    /// (correct either way — the cache is purely a perf device).
    const MAX_ENTRIES: usize = 65_536;

    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the compiled form of `query`, caching per distinct text.
    pub fn compile(&self, query: &str) -> Arc<CompiledQuery> {
        let mut map = self.map.lock().unwrap();
        if let Some(q) = map.get(query) {
            return Arc::clone(q);
        }
        let q = Arc::new(CompiledQuery::compile(query));
        if map.len() < Self::MAX_ENTRIES {
            map.insert(query.to_string(), Arc::clone(&q));
        }
        q
    }

    /// Number of distinct query texts currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl HostLibrary {
    pub fn new() -> Self {
        Self::default()
    }

    /// All static files (echo responses are fabricated per query and do not
    /// appear here).
    pub fn files(&self) -> &[SharedFile] {
        &self.files
    }

    /// Families infecting this host.
    pub fn infections(&self) -> &[FamilyId] {
        &self.infections
    }

    pub fn is_infected(&self) -> bool {
        !self.infections.is_empty()
    }

    /// True when a query-echo worm is resident — such hosts want to see
    /// *every* query (e.g. they saturate their QRP table when acting as a
    /// Gnutella leaf).
    pub fn has_echo(&self) -> bool {
        !self.echoes.is_empty()
    }

    /// Number of static shared files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty() && self.echoes.is_empty()
    }

    /// Attaches the world-shared filename interner. Every subsequent
    /// insert dedups its name through it, and names already registered are
    /// re-interned in place — libraries are typically populated before the
    /// owning servent (which carries the world handle) is constructed.
    pub fn set_interner(&mut self, interner: std::sync::Arc<NameInterner>) {
        // Attaching the same interner twice must not double-count its
        // dedup statistics.
        if self
            .interner
            .as_ref()
            .is_some_and(|i| std::sync::Arc::ptr_eq(i, &interner))
        {
            return;
        }
        for (file, rec) in self.files.iter_mut().zip(&mut self.recs) {
            let r = interner.intern_record_arc(std::mem::replace(&mut file.name, "".into()));
            file.name = r.name().clone();
            *rec = r;
        }
        self.interner = Some(interner);
    }

    /// Shares one variant of a benign title.
    pub fn add_benign(&mut self, item: &BenignItem, variant: usize) {
        let v = &item.variants[variant];
        self.push_file(SharedFile {
            name: v.name.as_str().into(),
            size: v.size,
            content: ContentRef::Benign {
                item: item.id,
                variant: variant as u8,
            },
        });
    }

    /// Adds an arbitrary pre-built file (used by tests and custom hosts).
    pub fn add_file(&mut self, file: SharedFile) {
        self.push_file(file);
    }

    /// The single insert path: every shared file resolves to its arena
    /// record here (world-shared when an interner is attached, standalone
    /// otherwise), so match metadata is derived once per *distinct* name.
    fn push_file(&mut self, mut file: SharedFile) {
        let rec = match &self.interner {
            Some(i) => i.intern_record_arc(file.name),
            None => std::sync::Arc::new(NameRecord::compute(file.name)),
        };
        file.name = rec.name().clone();
        self.recs.push(rec);
        self.files.push(file);
    }

    /// True when a file with exactly this name is already shared. Linear:
    /// only the infect paths call it, at world-build time, and per-host
    /// libraries are small — no per-host hash table needed.
    fn has_name(&self, name: &str) -> bool {
        self.files.iter().any(|f| &*f.name == name)
    }

    /// Infects this host with `family`. The host picks one characteristic
    /// size (the first size is the most common replica, weighted 4:1 over
    /// the rest, which is what makes "most commonly seen sizes" meaningful)
    /// and then:
    ///
    /// * `QueryEcho` — registers a dynamic responder;
    /// * `FixedNames` — shares the static enticing names;
    /// * `PopularBait` — shares clones named after `bait_titles`
    ///   popularity-sampled catalog titles.
    pub fn infect(&mut self, family: &MalwareFamily, catalog: &Catalog, rng: &mut StdRng) {
        let size_idx = pick_size_idx(family, rng);
        let size = family.sizes[size_idx as usize];
        let content = ContentRef::Malware {
            family: family.id,
            size_idx,
        };
        match &family.naming {
            NamingStrategy::QueryEcho {
                extensions,
                verbatim,
            } => {
                self.echoes.push(EchoInfection {
                    family: family.id,
                    size_idx,
                    size,
                    extensions: extensions.clone(),
                    verbatim: *verbatim,
                });
            }
            NamingStrategy::FixedNames(names) => {
                for name in names {
                    self.push_file(SharedFile {
                        name: name.as_str().into(),
                        size,
                        content,
                    });
                }
            }
            NamingStrategy::PopularBait { extension } => {
                // Bait titles are sampled uniformly over the catalog: real
                // baiters skew popular, but the measured tail shares of
                // such families are well under 1% of malicious responses,
                // which uniform title mass reproduces (DESIGN.md §4, T2).
                const BAIT_TITLES: usize = 6;
                for _ in 0..BAIT_TITLES {
                    let title = catalog.sample_uniform(rng);
                    let name = format!("{}.{extension}", title.keywords.join("_"));
                    // Avoid duplicate names if sampling repeats a title.
                    if !self.has_name(&name) {
                        self.push_file(SharedFile {
                            name: name.into(),
                            size,
                            content,
                        });
                    }
                }
            }
        }
        self.infections.push(family.id);
    }

    /// Infects this host as a *superspreader*: `baits` popularity-sampled
    /// bait clones of `family`, regardless of the family's native naming
    /// strategy. This models the single OpenFT host the paper found serving
    /// 67% of all malicious responses — one always-on machine sharing one
    /// virus under a large number of popular titles.
    pub fn infect_superspreader(
        &mut self,
        family: &MalwareFamily,
        catalog: &Catalog,
        baits: usize,
        rng: &mut StdRng,
    ) {
        let size_idx = pick_size_idx(family, rng);
        let size = family.sizes[size_idx as usize];
        let content = ContentRef::Malware {
            family: family.id,
            size_idx,
        };
        let mut added = 0;
        let mut attempts = 0;
        // Bait titles come uniformly from below the top popularity decile:
        // the host's query-mass share is then close to its bait count times
        // the mean tail-title mass, instead of being dominated by whether a
        // lucky draw shares keywords with a chart-topper. This keeps the
        // calibration knob (bait count -> share of malicious responses)
        // stable across seeds.
        let skip = catalog.len() / 10;
        while added < baits && attempts < baits * 8 {
            attempts += 1;
            let rank = skip + (rng.next_u64() as usize) % (catalog.len() - skip).max(1);
            let title = catalog.item(rank as u32);
            let name = format!("{}.exe", title.keywords.join("_"));
            if !self.has_name(&name) {
                self.push_file(SharedFile {
                    name: name.into(),
                    size,
                    content,
                });
                added += 1;
            }
        }
        self.infections.push(family.id);
    }

    /// Deep-heap estimate of this library's per-host owned bytes, for the
    /// simulator's bytes-per-node accounting. Interned names and records
    /// are world-shared and charged to the interner, not to each replica;
    /// the per-host cost counted here is the container storage and (only
    /// for interner-less libraries, whose records are private) the record
    /// text itself.
    pub fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut b = (self.files.capacity() * size_of::<SharedFile>()) as u64;
        b += (self.recs.capacity() * size_of::<std::sync::Arc<NameRecord>>()) as u64;
        if self.interner.is_none() {
            b += self
                .recs
                .iter()
                .map(|r| size_of::<NameRecord>() as u64 + r.heap_bytes())
                .sum::<u64>();
        }
        b += (self.echoes.capacity() * size_of::<EchoInfection>()) as u64;
        for e in &self.echoes {
            b += (e.extensions.capacity() * size_of::<String>()) as u64;
            b += e
                .extensions
                .iter()
                .map(|s| s.capacity() as u64)
                .sum::<u64>();
        }
        b += (self.infections.capacity() * size_of::<FamilyId>()) as u64;
        b
    }

    /// Computes this host's responses to `query`, capped at `max` results
    /// (servents cap per-query results; LimeWire used 64). Echo infections
    /// answer *every* non-empty query; static files answer only on keyword
    /// match. Echo responses come first — the worm wants to be downloaded.
    pub fn respond(&self, query: &str, max: usize) -> Vec<SharedFile> {
        self.respond_compiled(&CompiledQuery::compile(query), max)
    }

    /// [`HostLibrary::respond`] for an already-compiled query — the hot
    /// path. Matching uses the per-file fingerprint to reject misses with
    /// one AND+CMP before the exact substring check; output is identical.
    pub fn respond_compiled(&self, query: &CompiledQuery, max: usize) -> Vec<SharedFile> {
        if query.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for echo in &self.echoes {
            // Verbatim worms echo the raw query text (Mandragore-style);
            // the rest join terms with underscores, evading exact-echo
            // filters.
            let stem: String = if echo.verbatim {
                query.raw().trim().to_string()
            } else {
                query.terms().join("_")
            };
            for ext in &echo.extensions {
                if out.len() >= max {
                    return out;
                }
                out.push(SharedFile {
                    name: format!("{stem}.{ext}").into(),
                    size: echo.size,
                    content: ContentRef::Malware {
                        family: echo.family,
                        size_idx: echo.size_idx,
                    },
                });
            }
        }
        for (f, r) in self.files.iter().zip(&self.recs) {
            if out.len() >= max {
                break;
            }
            if query.matches_meta(r.lower(), r.fp()) {
                out.push(f.clone());
            }
        }
        out
    }
}

/// Rough heap estimate of a hashbrown map/set with `len` entries of
/// `entry_bytes` each: capacity at the 7/8 max load factor, one control
/// byte per slot. Accounting only — never affects behavior.
pub fn hash_table_bytes(len: usize, entry_bytes: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    let cap = (len * 8 / 7 + 1).next_power_of_two().max(8);
    (cap * (entry_bytes + 1)) as u64
}

/// Weighted choice of a characteristic size: index 0 carries 4x the weight
/// of each later index.
fn pick_size_idx(family: &MalwareFamily, rng: &mut StdRng) -> u8 {
    let n = family.sizes.len();
    if n == 1 {
        return 0;
    }
    let total = 4 + (n - 1);
    let roll = rng.gen_range(0..total);
    if roll < 4 {
        0
    } else {
        (roll - 3) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::family::{Container, Roster};
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(1);
        Catalog::generate(
            &CatalogConfig {
                titles: 200,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn query_terms_split_and_lowercase() {
        assert_eq!(query_terms("Crimson  Horizon"), vec!["crimson", "horizon"]);
        assert_eq!(query_terms("a-b_c.d"), vec!["a", "b", "c", "d"]);
        assert!(query_terms("  ").is_empty());
    }

    #[test]
    fn name_matching_rules() {
        let terms = query_terms("silver echo");
        assert!(name_matches("silver_echo_remix.mp3", &terms));
        assert!(name_matches("SILVER_ECHO.mp3", &terms));
        assert!(!name_matches("silver_serenade.mp3", &terms));
        assert!(!name_matches("anything", &[]));
    }

    #[test]
    fn fingerprint_is_subset_for_substrings() {
        let name = "crimson_horizon_remix.mp3";
        for sub in ["son", "crimson", "mix.m", "_", "n_h"] {
            let (nfp, sfp) = (name_fingerprint(name), name_fingerprint(sub));
            assert_eq!(sfp & !nfp, 0, "substring {sub:?} must be fp-subset");
        }
    }

    #[test]
    fn compiled_query_matches_like_name_matches() {
        let cases = [
            ("son", "crimson.mp3"), // substring across token boundary
            ("silver echo", "SILVER_ECHO.mp3"),
            ("silver echo", "silver_serenade.mp3"),
            ("", "anything"),
            ("--  ..", "anything"),
            ("zzz", "aaa"),
        ];
        for (q, name) in cases {
            let terms = query_terms(q);
            let cq = CompiledQuery::compile(q);
            let lower = name.to_ascii_lowercase();
            let fp = name_fingerprint(&lower);
            assert_eq!(
                cq.matches_meta(&lower, fp),
                name_matches(name, &terms),
                "query {q:?} vs {name:?}"
            );
            assert_eq!(cq.matches_name(name), name_matches(name, &terms));
        }
    }

    #[test]
    fn query_cache_dedups_compiles() {
        let cache = QueryCache::new();
        let a = cache.compile("Silver Echo");
        let b = cache.compile("Silver Echo");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(a.terms(), &["silver".to_string(), "echo".to_string()]);
    }

    #[test]
    fn benign_files_answer_matching_queries_only() {
        let cat = catalog();
        let mut lib = HostLibrary::new();
        lib.add_benign(cat.item(0), 0);
        let kw = cat.item(0).keywords[0].clone();
        assert_eq!(lib.respond(&kw, 64).len(), 1);
        assert!(lib.respond("zzzz9999", 64).is_empty());
        assert!(!lib.is_infected());
    }

    #[test]
    fn echo_worm_answers_every_query_with_query_name() {
        let cat = catalog();
        let roster = Roster::limewire_2006();
        let mut rng = StdRng::seed_from_u64(5);
        let mut lib = HostLibrary::new();
        lib.infect(roster.get(FamilyId(0)), &cat, &mut rng);
        for q in ["madonna", "quarterly report", "xyzzy plugh"] {
            let rs = lib.respond(q, 64);
            assert_eq!(rs.len(), 1, "query {q}");
            assert!(rs[0].name.ends_with(".exe"));
            assert!(rs[0].content.is_malicious());
            assert_eq!(rs[0].size, roster.get(FamilyId(0)).sizes[0]);
        }
        let rs = lib.respond("free music", 64);
        assert_eq!(&*rs[0].name, "free_music.exe");
    }

    #[test]
    fn multi_extension_echo_produces_one_response_per_extension() {
        let cat = catalog();
        let roster = Roster::limewire_2006();
        let alcra = roster.by_name("W32.Alcra.B").unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut lib = HostLibrary::new();
        lib.infect(alcra, &cat, &mut rng);
        let rs = lib.respond("test", 64);
        assert_eq!(rs.len(), 2);
        let exts: Vec<&str> = rs
            .iter()
            .map(|f| f.name.rsplit('.').next().unwrap())
            .collect();
        assert_eq!(exts, vec!["exe", "zip"]);
    }

    #[test]
    fn fixed_name_trojan_answers_only_its_names() {
        let cat = catalog();
        let roster = Roster::openft_2006();
        let gnuman = roster.get(FamilyId(0));
        let mut rng = StdRng::seed_from_u64(7);
        let mut lib = HostLibrary::new();
        lib.infect(gnuman, &cat, &mut rng);
        assert!(lib.is_infected());
        assert_eq!(lib.len(), 4, "four enticing names");
        // A query matching one of the fixed names hits; others miss.
        let name = lib.files()[0].name.clone();
        let first_word = name.split('_').next().unwrap().to_string();
        assert!(!lib.respond(&first_word, 64).is_empty());
        assert!(lib.respond("completely unrelated", 64).is_empty());
    }

    #[test]
    fn popular_bait_rides_catalog_titles() {
        let cat = catalog();
        let roster = Roster::limewire_2006();
        let baiter = roster
            .families()
            .iter()
            .find(|f| matches!(f.naming, NamingStrategy::PopularBait { .. }))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut lib = HostLibrary::new();
        lib.infect(baiter, &cat, &mut rng);
        assert!(!lib.files().is_empty());
        for f in lib.files() {
            assert!(f.name.ends_with(".exe"));
            assert!(f.content.is_malicious());
            assert_eq!(f.size, baiter.sizes[0]);
        }
    }

    #[test]
    fn respond_respects_cap() {
        let cat = catalog();
        let roster = Roster::limewire_2006();
        let mut rng = StdRng::seed_from_u64(9);
        let mut lib = HostLibrary::new();
        for _ in 0..5 {
            lib.infect(roster.get(FamilyId(1)), &cat, &mut rng); // 2 exts each
        }
        assert_eq!(lib.respond("anything", 3).len(), 3);
    }

    #[test]
    fn size_idx_prefers_first_size() {
        let roster = Roster::limewire_2006();
        let alcra = roster.by_name("W32.Alcra.B").unwrap();
        assert_eq!(alcra.sizes.len(), 2);
        let mut rng = StdRng::seed_from_u64(10);
        let mut first = 0;
        for _ in 0..1000 {
            if pick_size_idx(alcra, &mut rng) == 0 {
                first += 1;
            }
        }
        // 4:1 weighting => ~80%.
        assert!((700..=900).contains(&first), "first-size picks {first}");
        let _ = Container::Executable; // silence unused import in some cfgs
    }
}
