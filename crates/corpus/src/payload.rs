//! Deterministic payload generation: the bytes behind every shared file.
//!
//! A month-long simulated study transfers far too many files to store, so
//! payloads are a pure function of `(store seed, ContentRef)`. Replicas of
//! the same content are byte-identical across hosts (as in real file
//! sharing, where a replica *is* the same file), hashes are stable, and the
//! scanner sees exactly the bytes the transfer produced.
//!
//! Shapes:
//!
//! * benign files get the correct magic bytes for their media type and a
//!   keyed pseudorandom body (archives are real, parseable ZIPs);
//! * malicious executables are `MZ` images with the family signature
//!   embedded at a fixed offset;
//! * `ZipOfExecutable` families are real ZIP archives holding an infected
//!   executable, built to the family's exact characteristic outer size —
//!   the scanner must traverse the archive to convict them.

use crate::catalog::{Catalog, MediaType};
use crate::family::{Container, Roster};
use crate::library::ContentRef;
use p2pmal_archive::{Method, ZipWriter};
use p2pmal_hashes::{md5, sha1, Md5Digest, Sha1Digest};
use std::collections::HashMap;
use std::sync::Mutex;

/// Offset of the embedded family signature inside a malicious executable
/// image (right after a plausible DOS header area).
const SIG_OFFSET: usize = 0x40;

/// Cached content hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPair {
    /// SHA-1 — Gnutella's HUGE `urn:sha1` addressing.
    pub sha1: Sha1Digest,
    /// MD5 — OpenFT's file addressing.
    pub md5: Md5Digest,
}

/// Generates (and hashes) file payloads on demand.
///
/// Cheap to share by reference; the internal hash cache is thread-safe so
/// parallel experiment sweeps can reuse one store.
pub struct ContentStore {
    seed: u64,
    hash_cache: Mutex<HashMap<ContentRef, HashPair>>,
}

impl ContentStore {
    pub fn new(seed: u64) -> Self {
        ContentStore {
            seed,
            hash_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The exact transfer size of `r` in bytes, without materializing the
    /// payload. Always equals `self.payload(r, ..).len()`.
    pub fn size(&self, r: ContentRef, catalog: &Catalog, roster: &Roster) -> u64 {
        match r {
            ContentRef::Benign { item, variant } => {
                catalog.item(item).variants[variant as usize].size
            }
            ContentRef::Malware { family, size_idx } => roster.get(family).sizes[size_idx as usize],
        }
    }

    /// Materializes the payload bytes for `r`.
    pub fn payload(&self, r: ContentRef, catalog: &Catalog, roster: &Roster) -> Vec<u8> {
        let key = self.content_key(r);
        match r {
            ContentRef::Benign { item, variant } => {
                let it = catalog.item(item);
                let size = it.variants[variant as usize].size as usize;
                benign_payload(it.media, size, key)
            }
            ContentRef::Malware { family, size_idx } => {
                let fam = roster.get(family);
                let size = fam.sizes[size_idx as usize] as usize;
                match fam.container {
                    Container::Executable => infected_exe(size, &fam.signature, key),
                    Container::ZipOfExecutable => infected_zip(size, &fam.signature, key),
                }
            }
        }
    }

    /// SHA-1 and MD5 of the payload, cached after first computation.
    pub fn hashes(&self, r: ContentRef, catalog: &Catalog, roster: &Roster) -> HashPair {
        if let Some(h) = self.hash_cache.lock().unwrap().get(&r) {
            return *h;
        }
        let data = self.payload(r, catalog, roster);
        let pair = HashPair {
            sha1: sha1(&data),
            md5: md5(&data),
        };
        self.hash_cache.lock().unwrap().insert(r, pair);
        pair
    }

    /// Convenience: the SHA-1 digest of `r`.
    pub fn sha1_of(&self, r: ContentRef, catalog: &Catalog, roster: &Roster) -> Sha1Digest {
        self.hashes(r, catalog, roster).sha1
    }

    /// Convenience: the MD5 digest of `r`.
    pub fn md5_of(&self, r: ContentRef, catalog: &Catalog, roster: &Roster) -> Md5Digest {
        self.hashes(r, catalog, roster).md5
    }

    /// Number of distinct contents hashed so far.
    pub fn cached_hashes(&self) -> usize {
        self.hash_cache.lock().unwrap().len()
    }

    /// A cheap, deterministic MD5-shaped identifier for `r`, computed over
    /// the reference (not the payload). OpenFT addresses shares by MD5; a
    /// month-scale population would have to materialize terabytes to hash
    /// real content, so share *registration* uses this surrogate while
    /// downloaded bytes are still hashed for real by the crawler. The
    /// surrogate is unique per content and stable across hosts, which is
    /// all the protocol machinery observes.
    pub fn declared_md5(&self, r: ContentRef) -> Md5Digest {
        let mut tag = [0u8; 24];
        tag[..8].copy_from_slice(&self.seed.to_le_bytes());
        let (kind, a, b) = match r {
            ContentRef::Benign { item, variant } => (1u32, item, variant as u32),
            ContentRef::Malware { family, size_idx } => (2u32, family.0 as u32, size_idx as u32),
        };
        tag[8..12].copy_from_slice(&kind.to_le_bytes());
        tag[12..16].copy_from_slice(&a.to_le_bytes());
        tag[16..20].copy_from_slice(&b.to_le_bytes());
        md5(&tag)
    }

    /// Mixes the store seed and the content reference into a stream key.
    fn content_key(&self, r: ContentRef) -> u64 {
        let field = match r {
            ContentRef::Benign { item, variant } => {
                0x1000_0000_0000_0000u64 | (item as u64) << 8 | variant as u64
            }
            ContentRef::Malware { family, size_idx } => {
                0x2000_0000_0000_0000u64 | (family.0 as u64) << 8 | size_idx as u64
            }
        };
        splitmix64(self.seed ^ field)
    }
}

/// SplitMix64 step — the keyed PRNG behind payload bodies. Chosen for
/// determinism and speed; payload bodies only need to be incompressible and
/// collision-free, not cryptographic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Fills `buf` with the keyed pseudorandom stream.
fn fill_deterministic(buf: &mut [u8], key: u64) {
    let mut state = key;
    let mut chunks = buf.chunks_exact_mut(8);
    for chunk in &mut chunks {
        state = splitmix64(state);
        chunk.copy_from_slice(&state.to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        state = splitmix64(state);
        let bytes = state.to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// A benign payload: correct magic for the media type, pseudorandom body.
fn benign_payload(media: MediaType, size: usize, key: u64) -> Vec<u8> {
    if media == MediaType::Archive {
        return benign_zip(size, key);
    }
    let mut buf = vec![0u8; size];
    fill_deterministic(&mut buf, key);
    let magic: &[u8] = match media {
        MediaType::Audio => b"ID3\x03\x00",
        MediaType::Video => b"RIFF\x00\x00\x00\x00AVI ",
        MediaType::Application => b"MZ",
        MediaType::Document => b"%PDF-1.4\n",
        MediaType::Image => &[0xFF, 0xD8, 0xFF, 0xE0],
        MediaType::Archive => unreachable!("handled above"),
    };
    let n = magic.len().min(buf.len());
    buf[..n].copy_from_slice(&magic[..n]);
    buf
}

/// Builds a real one-entry stored ZIP of exactly `target` bytes by sizing
/// the inner member to absorb the container overhead.
fn exact_size_zip(
    target: usize,
    inner_name: &str,
    build_inner: impl Fn(usize) -> Vec<u8>,
) -> Vec<u8> {
    // Measure the fixed overhead with a zero-length member.
    let mut probe = ZipWriter::new();
    probe.add(inner_name, &[], Method::Stored);
    let overhead = probe.finish().len();
    assert!(
        target > overhead + SIG_OFFSET + 64,
        "target zip size {target} too small (overhead {overhead})"
    );
    let inner = build_inner(target - overhead);
    let mut w = ZipWriter::new();
    w.add(inner_name, &inner, Method::Stored);
    let out = w.finish();
    debug_assert_eq!(out.len(), target);
    out
}

fn benign_zip(size: usize, key: u64) -> Vec<u8> {
    exact_size_zip(size, "content.dat", |len| {
        let mut inner = vec![0u8; len];
        fill_deterministic(&mut inner, key);
        inner
    })
}

/// An infected `MZ` image: DOS-stub-shaped head, the family signature at
/// [`SIG_OFFSET`], pseudorandom tail.
fn infected_exe(size: usize, signature: &[u8], key: u64) -> Vec<u8> {
    assert!(
        size >= SIG_OFFSET + signature.len() + 16,
        "exe size {size} too small"
    );
    let mut buf = vec![0u8; size];
    fill_deterministic(&mut buf, key);
    buf[0] = b'M';
    buf[1] = b'Z';
    buf[SIG_OFFSET..SIG_OFFSET + signature.len()].copy_from_slice(signature);
    buf
}

/// An infected ZIP: real archive holding one *deflated* infected executable
/// plus a stored padding member sized so the outer archive hits exactly
/// `size` bytes.
///
/// The malicious member is deflated (fixed Huffman) so its signature bytes
/// are bit-packed and never appear verbatim in the raw archive — convicting
/// these files requires the scanner to actually traverse and inflate the
/// member, as the study's AV engine had to.
fn infected_zip(size: usize, signature: &[u8], key: u64) -> Vec<u8> {
    let min_exe = SIG_OFFSET + signature.len() + 16;
    let inner_len = (size / 2).clamp(min_exe, 48 * 1024);
    // Compressible body (random head, zero tail) so the writer keeps the
    // member deflated instead of falling back to stored; real executables
    // compress too.
    let mut inner = vec![0u8; inner_len];
    let head = inner_len.min(4096);
    fill_deterministic(&mut inner[..head], key);
    inner[0] = b'M';
    inner[1] = b'Z';
    inner[SIG_OFFSET..SIG_OFFSET + signature.len()].copy_from_slice(signature);
    // Measure the archive with a zero-length pad, then absorb the remainder
    // into the pad member (stored, so its size contribution is linear).
    let build = |pad: &[u8]| {
        let mut w = ZipWriter::new();
        w.add("setup.exe", &inner, Method::Deflate);
        w.add("readme.txt", pad, Method::Stored);
        w.finish()
    };
    let base = build(&[]).len();
    assert!(
        size >= base,
        "target zip size {size} too small (needs {base})"
    );
    let pad = vec![0u8; size - base];
    let out = build(&pad);
    debug_assert_eq!(out.len(), size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::family::FamilyId;
    use p2pmal_scanner::{ScanConfig, Scanner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixtures() -> (Catalog, Roster, ContentStore) {
        let mut rng = StdRng::seed_from_u64(2);
        let catalog = Catalog::generate(
            &CatalogConfig {
                titles: 120,
                ..Default::default()
            },
            &mut rng,
        );
        (
            catalog,
            Roster::limewire_2006(),
            ContentStore::new(0xC0FFEE),
        )
    }

    fn scanner(roster: &Roster) -> Scanner {
        Scanner::with_config(
            roster.signature_db().unwrap().build().unwrap(),
            ScanConfig::default(),
        )
    }

    #[test]
    fn payload_length_matches_size_for_all_shapes() {
        let (catalog, roster, store) = fixtures();
        let mut refs = vec![
            ContentRef::Benign {
                item: 0,
                variant: 0,
            },
            ContentRef::Malware {
                family: FamilyId(0),
                size_idx: 0,
            },
            ContentRef::Malware {
                family: FamilyId(1),
                size_idx: 1,
            },
            ContentRef::Malware {
                family: FamilyId(2),
                size_idx: 0,
            }, // zip container
        ];
        // Add one benign ref per media type that we can afford to build.
        for it in catalog.items() {
            if it.media != MediaType::Video && it.variants[0].size < 4_000_000 {
                refs.push(ContentRef::Benign {
                    item: it.id,
                    variant: 0,
                });
            }
            if refs.len() > 24 {
                break;
            }
        }
        for r in refs {
            let want = store.size(r, &catalog, &roster);
            let got = store.payload(r, &catalog, &roster).len() as u64;
            assert_eq!(want, got, "{r:?}");
        }
    }

    #[test]
    fn payloads_are_deterministic_and_replica_identical() {
        let (catalog, roster, store) = fixtures();
        let other = ContentStore::new(0xC0FFEE);
        let r = ContentRef::Malware {
            family: FamilyId(0),
            size_idx: 0,
        };
        assert_eq!(
            store.payload(r, &catalog, &roster),
            other.payload(r, &catalog, &roster)
        );
        // Different seed => different bytes (same size).
        let third = ContentStore::new(1);
        assert_ne!(
            store.payload(r, &catalog, &roster),
            third.payload(r, &catalog, &roster)
        );
    }

    #[test]
    fn scanner_convicts_every_family_payload() {
        let (catalog, roster, store) = fixtures();
        let sc = scanner(&roster);
        for fam in roster.families() {
            for (i, _) in fam.sizes.iter().enumerate() {
                let r = ContentRef::Malware {
                    family: fam.id,
                    size_idx: i as u8,
                };
                let data = store.payload(r, &catalog, &roster);
                let v = sc.scan("sample.bin", &data);
                assert_eq!(
                    v.primary(),
                    Some(fam.name.as_str()),
                    "{} size {i}",
                    fam.name
                );
            }
        }
    }

    #[test]
    fn zip_container_requires_archive_traversal() {
        let (catalog, roster, store) = fixtures();
        let bagle = roster.by_name("W32.Bagle.DL").unwrap();
        assert_eq!(bagle.container, Container::ZipOfExecutable);
        let r = ContentRef::Malware {
            family: bagle.id,
            size_idx: 0,
        };
        let data = store.payload(r, &catalog, &roster);
        assert_eq!(&data[..2], b"PK", "outer container is a real zip");
        let v = scanner(&roster).scan("pack.zip", &data);
        assert_eq!(v.primary(), Some(bagle.name.as_str()));
        assert!(
            v.detections[0].location.contains("setup.exe"),
            "detection should point into the archive: {:?}",
            v.detections[0].location
        );
    }

    #[test]
    fn benign_payloads_scan_clean() {
        let (catalog, roster, store) = fixtures();
        let sc = scanner(&roster);
        let mut checked = 0;
        for it in catalog.items() {
            if it.media == MediaType::Video || it.variants[0].size > 2_000_000 {
                continue;
            }
            let r = ContentRef::Benign {
                item: it.id,
                variant: 0,
            };
            let data = store.payload(r, &catalog, &roster);
            assert!(
                !sc.scan(&it.variants[0].name, &data).infected(),
                "{}",
                it.variants[0].name
            );
            checked += 1;
            if checked >= 20 {
                break;
            }
        }
        assert!(checked > 5);
    }

    #[test]
    fn benign_magic_bytes_match_media() {
        let (catalog, roster, store) = fixtures();
        for it in catalog.items().iter().take(60) {
            if it.media == MediaType::Video || it.variants[0].size > 2_000_000 {
                continue;
            }
            let data = store.payload(
                ContentRef::Benign {
                    item: it.id,
                    variant: 0,
                },
                &catalog,
                &roster,
            );
            match it.media {
                MediaType::Audio => assert_eq!(&data[..3], b"ID3"),
                MediaType::Application => assert_eq!(&data[..2], b"MZ"),
                MediaType::Archive => assert_eq!(&data[..2], b"PK"),
                MediaType::Document => assert_eq!(&data[..4], b"%PDF"),
                MediaType::Image => assert_eq!(&data[..2], &[0xFF, 0xD8]),
                MediaType::Video => unreachable!(),
            }
        }
    }

    #[test]
    fn hashes_are_cached_and_stable() {
        let (catalog, roster, store) = fixtures();
        let r = ContentRef::Malware {
            family: FamilyId(0),
            size_idx: 0,
        };
        let a = store.hashes(r, &catalog, &roster);
        assert_eq!(store.cached_hashes(), 1);
        let b = store.hashes(r, &catalog, &roster);
        assert_eq!(a, b);
        assert_eq!(store.cached_hashes(), 1);
        let data = store.payload(r, &catalog, &roster);
        assert_eq!(a.sha1, p2pmal_hashes::sha1(&data));
        assert_eq!(a.md5, p2pmal_hashes::md5(&data));
    }

    #[test]
    fn fill_deterministic_covers_tail() {
        let mut a = vec![0u8; 13];
        let mut b = vec![0u8; 13];
        fill_deterministic(&mut a, 7);
        fill_deterministic(&mut b, 7);
        assert_eq!(a, b);
        assert!(a[8..].iter().any(|&x| x != 0), "tail bytes must be filled");
    }
}
