//! The synthetic content ecosystem standing in for the 2006 P2P networks.
//!
//! The original study measured live networks full of real users and real
//! malware. Neither is available, so this crate fabricates both sides
//! faithfully enough that every *mechanism* the paper measured exists here:
//!
//! * [`catalog`] — a benign content universe: thousands of titles (music,
//!   video, applications) with Zipf popularity, multiple variants per title
//!   and realistic size distributions per media type.
//! * [`family`] — malware families with era-accurate behaviours: query-echo
//!   worms that answer **every** query with `<query>.exe` (Mandragore-style),
//!   fixed-name trojans that pose as popular downloads, and archive droppers.
//!   Each family has a small set of characteristic payload sizes — the
//!   property the paper's size-based filter exploits.
//! * [`payload`] — deterministic artifact generation: the bytes for any
//!   shared file are a pure function of (seed, content reference), so a
//!   month-long simulated study needs no storage and replays identically.
//! * [`library`] — per-host share libraries with Gnutella-style keyword
//!   matching, including the dynamic echo behaviour of infected hosts.
//! * [`zipf`] — Zipf-distributed sampling used for popularity.
//!
//! Family names are *representative* of 2006-era P2P malware (the abstract
//! does not name the paper's actual top families); their behaviours are the
//! load-bearing part.

pub mod catalog;
pub mod family;
pub mod intern;
pub mod library;
pub mod payload;
pub mod zipf;

pub use catalog::{BenignItem, Catalog, MediaType};
pub use family::{Container, FamilyId, MalwareFamily, NamingStrategy, Roster};
pub use intern::{InternStats, NameInterner, NameRecord, NO_RECORD_ID};
pub use library::{
    hash_table_bytes, CompiledQuery, ContentRef, HostLibrary, QueryCache, SharedFile,
};
pub use payload::ContentStore;
pub use zipf::Zipf;
