//! Filename interning and the shared name-record arena.
//!
//! A simulated network shares the same names everywhere: every replica of a
//! catalog variant carries the variant's name, every fixed-name trojan its
//! enticing names, and every child of an OpenFT search node re-registers
//! the filenames it shares. Storing each occurrence as its own `String`
//! multiplies that text by the host count. The interner keeps one `Arc<str>`
//! per distinct name and hands out clones, so a name's bytes exist once per
//! world regardless of how many libraries, indexes or query hits hold it.
//!
//! Beyond the raw text, matching needs per-name *metadata*: the lowered
//! copy and the 64-bit match fingerprint. Pre-arena, every library row
//! owned its own lowered `Box<str>` — text duplicated per replica all over
//! again. [`NameRecord`] fixes that: one arena-backed record per distinct
//! name carries name, lowered form and fingerprint, and every library/index
//! row is a single `Arc<NameRecord>`. Records get stable `u32` ids in
//! registration order ([`NameInterner::record_by_id`]).
//!
//! Thread-safe (a `Mutex` around the tables) because sharded simulation
//! runs migrate hosts onto worker threads; the lock is only taken at
//! registration time (library build, share indexing), never on the query
//! match path — a resolved `Arc<NameRecord>` is read lock-free.

use crate::library::name_fingerprint;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Point-in-time interning statistics (see [`NameInterner::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Interned strings that were already present (dedup hits).
    pub hits: u64,
    /// Distinct strings currently interned.
    pub unique: u64,
    /// Bytes of string content the hits avoided duplicating.
    pub bytes_saved: u64,
    /// Distinct arena-backed name records.
    pub records: u64,
    /// Bytes of per-row match metadata (lowered copies plus fingerprints)
    /// that record hits avoided re-deriving and storing per replica. Kept
    /// separate from `bytes_saved` (raw name text), so arena-backed
    /// libraries report both savings honestly instead of folding the
    /// metadata win into the string count.
    pub meta_bytes_saved: u64,
}

/// A filename plus its precomputed match metadata, shared world-wide.
///
/// `lower` is `None` when the name is already lowercase (the common case
/// for generated catalog names) — `lower()` then aliases `name`, so the
/// text is not allocated twice.
#[derive(Debug)]
pub struct NameRecord {
    name: Arc<str>,
    lower: Option<Arc<str>>,
    fp: u64,
    id: u32,
}

/// Arena id of a record built outside any interner (standalone libraries,
/// tests).
pub const NO_RECORD_ID: u32 = u32::MAX;

impl NameRecord {
    /// Builds a standalone record (no arena, id = [`NO_RECORD_ID`]). Used
    /// by libraries that have no world interner attached.
    pub fn compute(name: Arc<str>) -> Self {
        let lowered = name.to_ascii_lowercase();
        let lower = if *name == *lowered {
            None
        } else {
            Some(Arc::from(lowered.as_str()))
        };
        NameRecord {
            fp: name_fingerprint(&lowered),
            name,
            lower,
            id: NO_RECORD_ID,
        }
    }

    /// The canonical name text.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// The lowered form used for substring matching.
    pub fn lower(&self) -> &str {
        self.lower.as_deref().unwrap_or(&self.name)
    }

    /// 64-bit match fingerprint of the lowered name.
    pub fn fp(&self) -> u64 {
        self.fp
    }

    /// Stable arena index ([`NO_RECORD_ID`] for standalone records).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Heap bytes owned by this record (name text plus the distinct
    /// lowered copy, when one exists).
    pub fn heap_bytes(&self) -> u64 {
        self.name.len() as u64 + self.lower.as_ref().map_or(0, |l| l.len() as u64)
    }
}

#[derive(Debug, Default)]
struct Inner {
    set: HashSet<Arc<str>>,
    records: HashMap<Arc<str>, Arc<NameRecord>>,
    arena: Vec<Arc<NameRecord>>,
    hits: u64,
    bytes_saved: u64,
    meta_bytes_saved: u64,
}

impl Inner {
    /// Canonical `Arc<str>` for `s` without touching the hit counters
    /// (internal machinery, e.g. lowered copies).
    fn canonical(&mut self, s: Arc<str>) -> Arc<str> {
        if let Some(existing) = self.set.get(&*s) {
            Arc::clone(existing)
        } else {
            self.set.insert(Arc::clone(&s));
            s
        }
    }
}

/// A shared dedup table for filenames (and other world-wide repeated
/// strings). Clone the `Arc<NameInterner>` into every party that registers
/// names; readers never need it — an interned name is a plain `Arc<str>`
/// and an interned record a plain `Arc<NameRecord>`.
#[derive(Debug, Default)]
pub struct NameInterner {
    inner: Mutex<Inner>,
}

impl NameInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the canonical `Arc<str>` for `s`, inserting it on first
    /// sight.
    pub fn intern(&self, s: &str) -> Arc<str> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(existing) = inner.set.get(s) {
            let out = Arc::clone(existing);
            inner.hits += 1;
            inner.bytes_saved += s.len() as u64;
            return out;
        }
        let arc: Arc<str> = Arc::from(s);
        inner.set.insert(Arc::clone(&arc));
        arc
    }

    /// Re-interns an already-allocated `Arc<str>`, reusing its allocation
    /// when it is the first sight of that text.
    pub fn intern_arc(&self, s: Arc<str>) -> Arc<str> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(existing) = inner.set.get(&*s) {
            let out = Arc::clone(existing);
            inner.hits += 1;
            inner.bytes_saved += s.len() as u64;
            return out;
        }
        inner.set.insert(Arc::clone(&s));
        s
    }

    /// Returns the arena record for `s`, registering it on first sight.
    pub fn intern_record(&self, s: &str) -> Arc<NameRecord> {
        self.intern_record_arc(Arc::from(s))
    }

    /// [`NameInterner::intern_record`] for an already-allocated `Arc<str>`,
    /// reusing its allocation on first sight.
    pub fn intern_record_arc(&self, s: Arc<str>) -> Arc<NameRecord> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(rec) = inner.records.get(&*s) {
            let out = Arc::clone(rec);
            inner.hits += 1;
            inner.bytes_saved += s.len() as u64;
            // The hit also spares a per-replica lowered copy + fingerprint.
            inner.meta_bytes_saved += out.lower().len() as u64 + 8;
            return out;
        }
        // First sight as a record. The name (and its lowered copy) still
        // dedup against plain interned strings.
        let had_name = inner.set.contains(&*s);
        let name = inner.canonical(s);
        if had_name {
            inner.hits += 1;
            inner.bytes_saved += name.len() as u64;
        }
        let lowered = name.to_ascii_lowercase();
        let lower = if *name == *lowered {
            None
        } else {
            Some(inner.canonical(Arc::from(lowered.as_str())))
        };
        let rec = Arc::new(NameRecord {
            fp: name_fingerprint(&lowered),
            id: inner.arena.len() as u32,
            name: Arc::clone(&name),
            lower,
        });
        inner.arena.push(Arc::clone(&rec));
        inner.records.insert(name, Arc::clone(&rec));
        rec
    }

    /// Resolves an arena id handed out by [`NameRecord::id`].
    pub fn record_by_id(&self, id: u32) -> Option<Arc<NameRecord>> {
        let inner = self.inner.lock().unwrap();
        inner.arena.get(id as usize).map(Arc::clone)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> InternStats {
        let inner = self.inner.lock().unwrap();
        InternStats {
            hits: inner.hits,
            unique: inner.set.len() as u64,
            bytes_saved: inner.bytes_saved,
            records: inner.arena.len() as u64,
            meta_bytes_saved: inner.meta_bytes_saved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_counts() {
        let i = NameInterner::new();
        let a = i.intern("crimson_horizon.mp3");
        let b = i.intern("crimson_horizon.mp3");
        let c = i.intern("other.exe");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        let s = i.stats();
        assert_eq!(s.unique, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.bytes_saved, "crimson_horizon.mp3".len() as u64);
    }

    #[test]
    fn intern_arc_reuses_canonical() {
        let i = NameInterner::new();
        let first = i.intern("name.bin");
        let fresh: Arc<str> = Arc::from("name.bin");
        let canon = i.intern_arc(fresh);
        assert!(Arc::ptr_eq(&first, &canon));
        assert_eq!(i.stats().hits, 1);
    }

    #[test]
    fn records_share_one_arena_entry() {
        let i = NameInterner::new();
        let a = i.intern_record("Crimson_Horizon.MP3");
        let b = i.intern_record("Crimson_Horizon.MP3");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.lower(), "crimson_horizon.mp3");
        assert_ne!(a.fp(), 0);
        assert_eq!(a.id(), 0);
        assert_eq!(i.record_by_id(0).unwrap().name(), a.name());
        assert!(i.record_by_id(7).is_none());
        let s = i.stats();
        assert_eq!(s.records, 1);
        assert_eq!(s.hits, 1);
        // The second sight spared name text and a lowered copy + fp.
        assert_eq!(s.bytes_saved, "Crimson_Horizon.MP3".len() as u64);
        assert_eq!(s.meta_bytes_saved, "crimson_horizon.mp3".len() as u64 + 8);
    }

    #[test]
    fn lowercase_record_aliases_its_name() {
        let i = NameInterner::new();
        let r = i.intern_record("already_lower.exe");
        assert_eq!(r.lower(), &**r.name());
        assert_eq!(r.heap_bytes(), "already_lower.exe".len() as u64);
        // Mixed case allocates the lowered copy once.
        let m = i.intern_record("Mixed_Case.EXE");
        assert_eq!(
            m.heap_bytes(),
            ("Mixed_Case.EXE".len() + "mixed_case.exe".len()) as u64
        );
    }

    #[test]
    fn record_reuses_plain_interned_name() {
        let i = NameInterner::new();
        let plain = i.intern("name.bin");
        let rec = i.intern_record("name.bin");
        assert!(Arc::ptr_eq(&plain, rec.name()));
        // The record's first sight of an already-interned name counts as a
        // name dedup hit.
        assert_eq!(i.stats().hits, 1);
    }

    #[test]
    fn standalone_records_carry_no_id() {
        let r = NameRecord::compute(Arc::from("Solo_File.EXE"));
        assert_eq!(r.id(), NO_RECORD_ID);
        assert_eq!(r.lower(), "solo_file.exe");
    }

    #[test]
    fn shared_across_threads() {
        let i = Arc::new(NameInterner::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || i.intern("same_everywhere.avi"))
            })
            .collect();
        let arcs: Vec<Arc<str>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
        assert_eq!(i.stats().unique, 1);
        assert_eq!(i.stats().hits, 3);
    }
}
