//! Filename interning.
//!
//! A simulated network shares the same names everywhere: every replica of a
//! catalog variant carries the variant's name, every fixed-name trojan its
//! enticing names, and every child of an OpenFT search node re-registers
//! the filenames it shares. Storing each occurrence as its own `String`
//! multiplies that text by the host count. The interner keeps one `Arc<str>`
//! per distinct name and hands out clones, so a name's bytes exist once per
//! world regardless of how many libraries, indexes or query hits hold it.
//!
//! Thread-safe (a `Mutex` around the set) because sharded simulation runs
//! migrate hosts onto worker threads; the lock is only taken at
//! registration time (library build, share indexing), never on the query
//! match path.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// Point-in-time interning statistics (see [`NameInterner::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Interned strings that were already present (dedup hits).
    pub hits: u64,
    /// Distinct strings currently interned.
    pub unique: u64,
    /// Bytes of string content the hits avoided duplicating.
    pub bytes_saved: u64,
}

#[derive(Debug, Default)]
struct Inner {
    set: HashSet<Arc<str>>,
    hits: u64,
    bytes_saved: u64,
}

/// A shared dedup table for filenames (and other world-wide repeated
/// strings). Clone the `Arc<NameInterner>` into every party that registers
/// names; readers never need it — an interned name is a plain `Arc<str>`.
#[derive(Debug, Default)]
pub struct NameInterner {
    inner: Mutex<Inner>,
}

impl NameInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the canonical `Arc<str>` for `s`, inserting it on first
    /// sight.
    pub fn intern(&self, s: &str) -> Arc<str> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(existing) = inner.set.get(s) {
            let out = Arc::clone(existing);
            inner.hits += 1;
            inner.bytes_saved += s.len() as u64;
            return out;
        }
        let arc: Arc<str> = Arc::from(s);
        inner.set.insert(Arc::clone(&arc));
        arc
    }

    /// Re-interns an already-allocated `Arc<str>`, reusing its allocation
    /// when it is the first sight of that text.
    pub fn intern_arc(&self, s: Arc<str>) -> Arc<str> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(existing) = inner.set.get(&*s) {
            let out = Arc::clone(existing);
            inner.hits += 1;
            inner.bytes_saved += s.len() as u64;
            return out;
        }
        inner.set.insert(Arc::clone(&s));
        s
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> InternStats {
        let inner = self.inner.lock().unwrap();
        InternStats {
            hits: inner.hits,
            unique: inner.set.len() as u64,
            bytes_saved: inner.bytes_saved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_counts() {
        let i = NameInterner::new();
        let a = i.intern("crimson_horizon.mp3");
        let b = i.intern("crimson_horizon.mp3");
        let c = i.intern("other.exe");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        let s = i.stats();
        assert_eq!(s.unique, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.bytes_saved, "crimson_horizon.mp3".len() as u64);
    }

    #[test]
    fn intern_arc_reuses_canonical() {
        let i = NameInterner::new();
        let first = i.intern("name.bin");
        let fresh: Arc<str> = Arc::from("name.bin");
        let canon = i.intern_arc(fresh);
        assert!(Arc::ptr_eq(&first, &canon));
        assert_eq!(i.stats().hits, 1);
    }

    #[test]
    fn shared_across_threads() {
        let i = Arc::new(NameInterner::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || i.intern("same_everywhere.avi"))
            })
            .collect();
        let arcs: Vec<Arc<str>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
        assert_eq!(i.stats().unique, 1);
        assert_eq!(i.stats().hits, 3);
    }
}
