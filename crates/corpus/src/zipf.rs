//! Zipf-distributed sampling.
//!
//! File popularity in 2006-era P2P networks is strongly Zipf-like: a handful
//! of titles draw most queries and most replicas (Gummadi et al., SOSP 2003,
//! measured exponents near 1 for Kazaa). Both the benign catalog and the
//! query workload sample ranks from this distribution.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n` (rank 0 is the most popular).
///
/// Sampling is O(log n) via binary search over the precomputed CDF; the
/// construction is O(n). Probabilities are proportional to `1/(rank+1)^α`.
///
/// ```
/// use p2pmal_corpus::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let z = Zipf::new(1000, 1.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1000);
/// // Rank 0 is the single most likely outcome.
/// assert!(z.pmf(0) > z.pmf(1));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k]` = P(rank <= k). Last entry is 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative/non-finite — both indicate
    /// a configuration bug, not a data-dependent condition.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "bad Zipf exponent {alpha}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has exactly one rank (degenerate).
    pub fn is_empty(&self) -> bool {
        false // construction requires n > 0
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.9);
        let total: f64 = (0..500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        // Harmonic(100) ~ 5.19, so pmf(0) ~ 0.193.
        assert!((z.pmf(0) - 0.1927).abs() < 0.01);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_track_pmf() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 2, 10] {
            let emp = counts[k] as f64 / n as f64;
            let exp = z.pmf(k);
            assert!((emp - exp).abs() < 0.01, "rank {k}: emp {emp} vs pmf {exp}");
        }
    }

    #[test]
    fn samples_in_range_and_deterministic() {
        let z = Zipf::new(7, 1.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(3);
        assert!(a.iter().all(|&r| r < 7));
        assert_eq!(a, draw(3));
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
