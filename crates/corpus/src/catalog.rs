//! The benign content universe: what non-infected hosts share.
//!
//! The study's denominators come from here. The 68% headline number counts
//! malware among *downloadable responses containing archives and
//! executables*, so the benign catalog must contain a realistic minority of
//! applications and archives among the dominant audio/video titles, each
//! title replicated across hosts in a handful of variants (different rips,
//! encodings, bundles) with diverse file sizes — diversity that makes the
//! paper's size-based filter cheap on false positives.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Broad media classes, mirroring how the study bucketed responses by
/// filename extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaType {
    Audio,
    Video,
    /// Installable programs — the `.exe` slice of the downloadable class.
    Application,
    /// `.zip`/`.rar`-style bundles — the archive slice.
    Archive,
    Document,
    Image,
}

impl MediaType {
    /// All media types, in catalog-weight order.
    pub const ALL: [MediaType; 6] = [
        MediaType::Audio,
        MediaType::Video,
        MediaType::Application,
        MediaType::Archive,
        MediaType::Document,
        MediaType::Image,
    ];

    /// File extension used for generated variant names.
    pub fn extension(self) -> &'static str {
        match self {
            MediaType::Audio => "mp3",
            MediaType::Video => "avi",
            MediaType::Application => "exe",
            MediaType::Archive => "zip",
            MediaType::Document => "pdf",
            MediaType::Image => "jpg",
        }
    }

    /// Whether responses of this type fall in the paper's "downloadable"
    /// class (archives and executables).
    pub fn is_downloadable_class(self) -> bool {
        matches!(self, MediaType::Application | MediaType::Archive)
    }

    /// Plausible size range in bytes for a single shared file of this type,
    /// reflecting 2006-era encodings (applications/archives are
    /// shareware-scale — multi-hundred-MB installers lived on FTP mirrors,
    /// not Gnutella shares).
    pub fn size_range(self) -> (u64, u64) {
        match self {
            MediaType::Audio => (1_800_000, 9_500_000),
            MediaType::Video => (40_000_000, 720_000_000),
            MediaType::Application => (150_000, 6_000_000),
            MediaType::Archive => (100_000, 9_000_000),
            MediaType::Document => (20_000, 4_000_000),
            MediaType::Image => (30_000, 2_500_000),
        }
    }
}

impl fmt::Display for MediaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MediaType::Audio => "audio",
            MediaType::Video => "video",
            MediaType::Application => "application",
            MediaType::Archive => "archive",
            MediaType::Document => "document",
            MediaType::Image => "image",
        };
        f.write_str(s)
    }
}

/// One concrete shareable file belonging to a title: a specific rip /
/// encoding / bundling with its own name and exact byte size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Full filename, e.g. `crimson_horizon-midnight_arcade.mp3`.
    pub name: String,
    /// Exact size in bytes. Replicas of the same variant share this size.
    pub size: u64,
}

/// A benign title: the unit of popularity. Hosts that "have" a title share
/// one of its variants.
#[derive(Debug, Clone)]
pub struct BenignItem {
    /// Dense id; also the title's popularity rank (0 = most popular).
    pub id: u32,
    /// Lower-cased keywords making up the title (artist + work words).
    pub keywords: Vec<String>,
    pub media: MediaType,
    /// 1..=5 concrete variants.
    pub variants: Vec<Variant>,
}

impl BenignItem {
    /// True when every query term occurs as a substring of the title's
    /// keyword string — the match rule Gnutella servents apply to shared
    /// file names.
    pub fn matches_query(&self, terms: &[&str]) -> bool {
        if terms.is_empty() {
            return false;
        }
        terms.iter().all(|t| {
            let t = t.to_ascii_lowercase();
            self.keywords.iter().any(|k| k.contains(&t))
        })
    }
}

/// Catalog construction parameters.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Number of distinct titles.
    pub titles: usize,
    /// Zipf exponent for title popularity.
    pub alpha: f64,
    /// Per-mille weights for each media type, in [`MediaType::ALL`] order.
    /// Defaults mirror the audio-dominant mix of 2006 file sharing.
    pub media_mix_permille: [u32; 6],
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            titles: 4000,
            alpha: 0.95,
            // audio, video, application, archive, document, image
            media_mix_permille: [580, 150, 110, 90, 40, 30],
        }
    }
}

/// The generated benign universe plus its popularity distribution.
#[derive(Debug, Clone)]
pub struct Catalog {
    items: Vec<BenignItem>,
    popularity: Zipf,
}

impl Catalog {
    /// Generates a catalog deterministically from `rng`.
    pub fn generate(config: &CatalogConfig, rng: &mut StdRng) -> Self {
        assert!(config.titles > 0, "catalog needs at least one title");
        let mix: u32 = config.media_mix_permille.iter().sum();
        assert!(mix > 0, "media mix must have positive weight");
        let mut items = Vec::with_capacity(config.titles);
        // Media types are striped deterministically across popularity ranks
        // (largest-remainder round-robin) instead of drawn independently:
        // with Zipf popularity the head ranks dominate query and replica
        // mass, and an independent draw would make the *realized* media mix
        // of responses a coin flip over a handful of titles.
        let mut media_credit = [0i64; 6];
        for id in 0..config.titles as u32 {
            let media = pick_media_striped(&config.media_mix_permille, mix, &mut media_credit);
            let keywords = title_keywords(media, rng);
            let n_variants = rng.gen_range(1..=5usize);
            let (lo, hi) = media.size_range();
            let variants = (0..n_variants)
                .map(|v| {
                    let size = rng.gen_range(lo..=hi);
                    let name = variant_name(&keywords, media, v, rng);
                    Variant { name, size }
                })
                .collect();
            items.push(BenignItem {
                id,
                keywords,
                media,
                variants,
            });
        }
        let popularity = Zipf::new(config.titles, config.alpha);
        Catalog { items, popularity }
    }

    /// All titles, indexed by id / popularity rank.
    pub fn items(&self) -> &[BenignItem] {
        &self.items
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn item(&self, id: u32) -> &BenignItem {
        &self.items[id as usize]
    }

    /// Samples a title by popularity (rank 0 most likely).
    pub fn sample(&self, rng: &mut StdRng) -> &BenignItem {
        &self.items[self.popularity.sample(rng)]
    }

    /// Samples a title id by popularity.
    pub fn sample_id(&self, rng: &mut StdRng) -> u32 {
        self.popularity.sample(rng) as u32
    }

    /// Ids of all titles matching every term of `terms`.
    pub fn matching(&self, terms: &[&str]) -> Vec<u32> {
        self.items
            .iter()
            .filter(|it| it.matches_query(terms))
            .map(|it| it.id)
            .collect()
    }

    /// A realistic query string for this catalog: two or three keywords of
    /// a popularity-sampled title — what users actually type. Multi-word
    /// queries are the norm (single-word searches drown in noise), which
    /// also matters for filter fidelity: a single-word query would make an
    /// underscore-joining echo worm's response identical to a verbatim one.
    pub fn sample_query(&self, rng: &mut StdRng) -> String {
        let item = self.sample(rng);
        let max = item.keywords.len().min(3);
        let n = rng.gen_range(2.min(max)..=max).max(1);
        let start = rng.gen_range(0..=item.keywords.len() - n);
        item.keywords[start..start + n].join(" ")
    }

    /// Samples a title uniformly (every title equally likely), used for
    /// bait-title selection where query-mass coverage must stay small.
    pub fn sample_uniform(&self, rng: &mut StdRng) -> &BenignItem {
        &self.items[rng.gen_range(0..self.items.len())]
    }
}

/// Largest-remainder striping: each rank goes to the media type with the
/// highest accumulated credit, keeping every popularity band at the
/// configured mix.
fn pick_media_striped(weights: &[u32; 6], total: u32, credit: &mut [i64; 6]) -> MediaType {
    for (c, &w) in credit.iter_mut().zip(weights.iter()) {
        *c += w as i64;
    }
    let (best, _) = credit
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("six media types");
    credit[best] -= total as i64;
    MediaType::ALL[best]
}

/// Word pools for synthetic titles. Deliberately invented (no real artists)
/// but shaped like real ones so query strings look authentic in logs.
const FIRST_WORDS: &[&str] = &[
    "crimson", "midnight", "electric", "silver", "neon", "golden", "broken", "velvet", "lunar",
    "shadow", "burning", "frozen", "wild", "savage", "hollow", "iron", "scarlet", "emerald",
    "phantom", "stellar", "rusty", "glass", "paper", "thunder", "quiet", "rapid", "northern",
    "eastern", "retro", "turbo",
];

const SECOND_WORDS: &[&str] = &[
    "horizon", "arcade", "echo", "serenade", "district", "parade", "empire", "avenue", "signal",
    "garden", "mirror", "harbor", "circuit", "anthem", "voyage", "canyon", "river", "skyline",
    "engine", "castle", "monsoon", "dynamo", "lagoon", "meadow", "pulse", "reactor", "summit",
    "tunnel", "vertigo", "zephyr",
];

const WORK_WORDS: &[&str] = &[
    "remix",
    "live",
    "sessions",
    "unplugged",
    "deluxe",
    "edition",
    "collection",
    "trilogy",
    "chronicles",
    "returns",
    "forever",
    "nights",
    "dreams",
    "stories",
    "tapes",
    "vault",
    "anthology",
    "bootleg",
    "special",
    "ultimate",
];

const APP_WORDS: &[&str] = &[
    "toolkit",
    "studio",
    "manager",
    "optimizer",
    "designer",
    "converter",
    "player",
    "editor",
    "builder",
    "suite",
    "wizard",
    "express",
    "deluxe",
    "professional",
    "cleaner",
    "tuner",
];

fn title_keywords(media: MediaType, rng: &mut StdRng) -> Vec<String> {
    let mut kws = vec![
        FIRST_WORDS[rng.gen_range(0..FIRST_WORDS.len())].to_string(),
        SECOND_WORDS[rng.gen_range(0..SECOND_WORDS.len())].to_string(),
    ];
    match media {
        MediaType::Application | MediaType::Archive => {
            kws.push(APP_WORDS[rng.gen_range(0..APP_WORDS.len())].to_string());
            if rng.gen_bool(0.6) {
                kws.push(format!("{}.{}", rng.gen_range(1..=9), rng.gen_range(0..=9)));
            }
        }
        _ => {
            if rng.gen_bool(0.7) {
                kws.push(WORK_WORDS[rng.gen_range(0..WORK_WORDS.len())].to_string());
            }
        }
    }
    kws
}

fn variant_name(keywords: &[String], media: MediaType, variant: usize, rng: &mut StdRng) -> String {
    let stem = keywords.join("_");
    let tag = match variant {
        0 => String::new(),
        _ => format!(
            "_{}",
            ["hq", "rip", "full", "v2", "final"][rng.gen_range(0..5usize)]
        ),
    };
    format!("{stem}{tag}.{}", media.extension())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_catalog(seed: u64) -> Catalog {
        let mut rng = StdRng::seed_from_u64(seed);
        Catalog::generate(
            &CatalogConfig {
                titles: 300,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_catalog(5);
        let b = small_catalog(5);
        for (x, y) in a.items().iter().zip(b.items()) {
            assert_eq!(x.keywords, y.keywords);
            assert_eq!(x.variants, y.variants);
        }
    }

    #[test]
    fn media_mix_roughly_matches_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = CatalogConfig {
            titles: 6000,
            ..Default::default()
        };
        let cat = Catalog::generate(&cfg, &mut rng);
        let audio = cat
            .items()
            .iter()
            .filter(|i| i.media == MediaType::Audio)
            .count();
        let frac = audio as f64 / cat.len() as f64;
        assert!((frac - 0.58).abs() < 0.03, "audio fraction {frac}");
    }

    #[test]
    fn variants_have_sizes_in_media_range() {
        let cat = small_catalog(3);
        for item in cat.items() {
            let (lo, hi) = item.media.size_range();
            assert!(!item.variants.is_empty() && item.variants.len() <= 5);
            for v in &item.variants {
                assert!(v.size >= lo && v.size <= hi, "{} size {}", v.name, v.size);
                assert!(v.name.ends_with(item.media.extension()));
            }
        }
    }

    #[test]
    fn query_matching_requires_all_terms() {
        let cat = small_catalog(9);
        let item = cat.item(0);
        let k0 = item.keywords[0].clone();
        let k1 = item.keywords[1].clone();
        assert!(item.matches_query(&[&k0]));
        assert!(item.matches_query(&[&k0, &k1]));
        assert!(
            item.matches_query(&[&k0.to_ascii_uppercase()]),
            "case-insensitive"
        );
        assert!(!item.matches_query(&[&k0, "zzzzqqq"]));
        assert!(!item.matches_query(&[]), "empty query matches nothing");
    }

    #[test]
    fn sampled_queries_hit_the_catalog() {
        let cat = small_catalog(21);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..50 {
            let q = cat.sample_query(&mut rng);
            let terms: Vec<&str> = q.split_whitespace().collect();
            assert!(
                !cat.matching(&terms).is_empty(),
                "query {q:?} matched nothing"
            );
        }
    }

    #[test]
    fn popular_titles_are_sampled_more() {
        let cat = small_catalog(33);
        let mut rng = StdRng::seed_from_u64(34);
        let mut counts = vec![0u32; cat.len()];
        for _ in 0..20_000 {
            counts[cat.sample_id(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[cat.len() - 1] * 3);
    }

    #[test]
    fn downloadable_class_flags() {
        assert!(MediaType::Application.is_downloadable_class());
        assert!(MediaType::Archive.is_downloadable_class());
        assert!(!MediaType::Audio.is_downloadable_class());
        assert!(!MediaType::Video.is_downloadable_class());
    }
}
