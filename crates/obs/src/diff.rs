//! Structured diff of two BENCH JSON artifacts (run-comparison tooling).
//!
//! Understands both benchmark shapes the workspace emits:
//!
//! * **study** (`run_study` with `P2PMAL_BENCH_JSON`): `{seed, quick,
//!   faults, networks: [{network, wall_secs, events, events_per_sec,
//!   subsystems: {bucket: {secs, calls}}, memory, telemetry: {counters,
//!   hists}}]}`;
//! * **mega** (`run_mega`): flat `{seed, nodes, …, run_secs, events,
//!   events_per_sec, memory: [{phase, …}]}`.
//!
//! Comparison policy, tuned so the CI gate is meaningful across machines:
//!
//! * **Deterministic fields compare exactly** — event totals, telemetry
//!   counters, histogram counts, histogram quantiles (sim-time valued;
//!   hists whose name contains `wall` are exempt from the quantile check),
//!   subsystem call counts, node counts. Any drift here means the
//!   trajectory changed, which a snapshot refresh must acknowledge.
//! * **Wall-clock buckets compare as share-of-total-wall**, not absolute
//!   seconds: absolute timings differ across hosts, but the *profile* is
//!   stable. Tiny buckets (below [`DiffOptions::min_bucket_secs`] or under
//!   [`DiffOptions::min_bucket_share_pct`] of baseline wall) are skipped;
//!   a bucket fails only if its share grew by more than
//!   [`DiffOptions::max_share_regress_pct`] relative **and** more than
//!   [`DiffOptions::min_share_points`] percentage points absolute.
//! * **Throughput (`events_per_sec`) and absolute wall are report-only**
//!   by default ([`DiffOptions::fail_on_throughput`] opts in).
//! * **`bytes_per_node` has a tolerance** ([`DiffOptions::max_bytes_regress_pct`])
//!   — byte-for-byte identical on the same toolchain, but allocator and
//!   layout shifts across toolchains shouldn't fail the gate.

use p2pmal_json::Value;

/// Thresholds for [`diff_bench`]. Defaults match the CI gate.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Max relative growth of a wall bucket's share-of-wall, percent.
    pub max_share_regress_pct: f64,
    /// A bucket must also grow by this many share *points* to fail.
    pub min_share_points: f64,
    /// Buckets under this many baseline seconds are skipped.
    pub min_bucket_secs: f64,
    /// Buckets under this baseline share (percent) are skipped.
    pub min_bucket_share_pct: f64,
    /// Max regression of `bytes_per_node`, percent.
    pub max_bytes_regress_pct: f64,
    /// Whether an `events_per_sec` drop beyond
    /// `max_throughput_regress_pct` fails the diff (off by default:
    /// wall-clock throughput is machine-dependent).
    pub fail_on_throughput: bool,
    pub max_throughput_regress_pct: f64,
    /// Downgrade exact-field mismatches from failures to notes. For
    /// comparing runs that are *expected* to differ (e.g. different
    /// seeds), not for the CI gate.
    pub lenient_exact: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            max_share_regress_pct: 15.0,
            min_share_points: 3.0,
            min_bucket_secs: 0.05,
            min_bucket_share_pct: 10.0,
            max_bytes_regress_pct: 10.0,
            fail_on_throughput: false,
            max_throughput_regress_pct: 25.0,
            lenient_exact: false,
        }
    }
}

/// Outcome of a diff: hard failures, informational notes, and a
/// machine-readable report.
#[derive(Debug, Default)]
pub struct Diff {
    pub failures: Vec<String>,
    pub notes: Vec<String>,
    /// Per-bucket share table and headline deltas, for the `--json` dump.
    pub rows: Vec<Value>,
}

impl Diff {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("ok".into(), Value::Bool(self.ok())),
            (
                "failures".into(),
                Value::Arr(self.failures.iter().cloned().map(Value::Str).collect()),
            ),
            (
                "notes".into(),
                Value::Arr(self.notes.iter().cloned().map(Value::Str).collect()),
            ),
            ("rows".into(), Value::Arr(self.rows.clone())),
        ])
    }
}

fn obj_entries(v: &Value) -> &[(String, Value)] {
    match v {
        Value::Obj(fields) => fields,
        _ => &[],
    }
}

fn f64_field(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn pct_delta(base: f64, cand: f64) -> f64 {
    if base == 0.0 {
        if cand == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cand - base) / base * 100.0
    }
}

/// Exact comparison of one deterministic numeric field.
fn exact(diff: &mut Diff, opts: &DiffOptions, what: &str, base: Option<f64>, cand: Option<f64>) {
    if base == cand {
        return;
    }
    let msg = format!(
        "{what}: baseline {} vs candidate {}",
        base.map_or("<missing>".into(), |v| v.to_string()),
        cand.map_or("<missing>".into(), |v| v.to_string()),
    );
    if opts.lenient_exact {
        diff.notes.push(msg);
    } else {
        diff.failures.push(msg);
    }
}

/// Walks two flat numeric objects (counters, one hist, one subsystem
/// bucket) comparing every key exactly, both directions.
fn exact_obj(diff: &mut Diff, opts: &DiffOptions, what: &str, base: &Value, cand: &Value) {
    for (key, bval) in obj_entries(base) {
        exact(
            diff,
            opts,
            &format!("{what}.{key}"),
            bval.as_f64(),
            cand.get(key).and_then(Value::as_f64),
        );
    }
    for (key, cval) in obj_entries(cand) {
        if base.get(key).is_none() {
            exact(diff, opts, &format!("{what}.{key}"), None, cval.as_f64());
        }
    }
}

fn diff_memory(diff: &mut Diff, opts: &DiffOptions, what: &str, base: &Value, cand: &Value) {
    exact(
        diff,
        opts,
        &format!("{what}.nodes"),
        f64_field(base, "nodes"),
        f64_field(cand, "nodes"),
    );
    let (b, c) = (
        f64_field(base, "bytes_per_node").unwrap_or(0.0),
        f64_field(cand, "bytes_per_node").unwrap_or(0.0),
    );
    let delta = pct_delta(b, c);
    if delta > opts.max_bytes_regress_pct {
        diff.failures.push(format!(
            "{what}.bytes_per_node: {b:.0} -> {c:.0} (+{delta:.1}% > {:.1}% budget)",
            opts.max_bytes_regress_pct
        ));
    } else if delta != 0.0 {
        diff.notes.push(format!(
            "{what}.bytes_per_node: {b:.0} -> {c:.0} ({delta:+.1}%)"
        ));
    }
}

fn diff_throughput(diff: &mut Diff, opts: &DiffOptions, what: &str, base: f64, cand: f64) {
    let delta = pct_delta(base, cand);
    let msg = format!("{what}.events_per_sec: {base:.0} -> {cand:.0} ({delta:+.1}%)");
    if opts.fail_on_throughput && -delta > opts.max_throughput_regress_pct {
        diff.failures.push(msg);
    } else {
        diff.notes.push(msg);
    }
}

/// Share-of-wall comparison of one network's subsystem buckets.
fn diff_buckets(
    diff: &mut Diff,
    opts: &DiffOptions,
    what: &str,
    base_wall: f64,
    cand_wall: f64,
    base: &Value,
    cand: &Value,
) {
    for (bucket, bval) in obj_entries(base) {
        let b_secs = f64_field(bval, "secs").unwrap_or(0.0);
        let c_secs = cand
            .get(bucket)
            .and_then(|v| f64_field(v, "secs"))
            .unwrap_or(0.0);
        exact(
            diff,
            opts,
            &format!("{what}.{bucket}.calls"),
            bval.get("calls").and_then(Value::as_f64),
            cand.get(bucket)
                .and_then(|v| v.get("calls"))
                .and_then(Value::as_f64),
        );
        let b_share = if base_wall > 0.0 {
            b_secs / base_wall * 100.0
        } else {
            0.0
        };
        let c_share = if cand_wall > 0.0 {
            c_secs / cand_wall * 100.0
        } else {
            0.0
        };
        let skipped = b_secs < opts.min_bucket_secs && c_secs < opts.min_bucket_secs
            || b_share < opts.min_bucket_share_pct;
        let regressed = !skipped
            && pct_delta(b_share, c_share) > opts.max_share_regress_pct
            && c_share - b_share > opts.min_share_points;
        diff.rows.push(Value::Obj(vec![
            ("scope".into(), Value::Str(what.to_string())),
            ("bucket".into(), Value::Str(bucket.clone())),
            ("base_secs".into(), Value::Num(b_secs)),
            ("cand_secs".into(), Value::Num(c_secs)),
            ("base_share_pct".into(), Value::Num(b_share)),
            ("cand_share_pct".into(), Value::Num(c_share)),
            ("skipped".into(), Value::Bool(skipped)),
            ("regressed".into(), Value::Bool(regressed)),
        ]));
        if regressed {
            diff.failures.push(format!(
                "{what}.{bucket}: wall share {b_share:.1}% -> {c_share:.1}% \
                 (relative +{:.1}% > {:.1}%, absolute +{:.1}pt > {:.1}pt)",
                pct_delta(b_share, c_share),
                opts.max_share_regress_pct,
                c_share - b_share,
                opts.min_share_points,
            ));
        }
    }
}

fn diff_network(diff: &mut Diff, opts: &DiffOptions, base: &Value, cand: &Value) {
    let name = base
        .get("network")
        .and_then(Value::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    for key in ["events", "shards", "window_ms"] {
        exact(
            diff,
            opts,
            &format!("{name}.{key}"),
            f64_field(base, key),
            f64_field(cand, key),
        );
    }
    diff_throughput(
        diff,
        opts,
        &name,
        f64_field(base, "events_per_sec").unwrap_or(0.0),
        f64_field(cand, "events_per_sec").unwrap_or(0.0),
    );
    let base_wall = f64_field(base, "wall_secs").unwrap_or(0.0);
    let cand_wall = f64_field(cand, "wall_secs").unwrap_or(0.0);
    diff.notes.push(format!(
        "{name}.wall_secs: {base_wall:.2} -> {cand_wall:.2} ({:+.1}%)",
        pct_delta(base_wall, cand_wall)
    ));
    if let (Some(b), Some(c)) = (base.get("subsystems"), cand.get("subsystems")) {
        diff_buckets(
            diff,
            opts,
            &format!("{name}.subsystems"),
            base_wall,
            cand_wall,
            b,
            c,
        );
    }
    if let (Some(b), Some(c)) = (base.get("memory"), cand.get("memory")) {
        diff_memory(diff, opts, &format!("{name}.memory"), b, c);
    }
    let (btel, ctel) = (base.get("telemetry"), cand.get("telemetry"));
    if let (Some(b), Some(c)) = (btel, ctel) {
        if let (Some(bc), Some(cc)) = (b.get("counters"), c.get("counters")) {
            exact_obj(diff, opts, &format!("{name}.counters"), bc, cc);
        }
        if let (Some(bh), Some(ch)) = (b.get("hists"), c.get("hists")) {
            for (hist, bval) in obj_entries(bh) {
                let cval = ch.get(hist).cloned().unwrap_or(Value::Null);
                // Counts are deterministic for every hist; quantiles only
                // for sim-time-valued ones (wall hists vary per machine).
                if hist.contains("wall") {
                    exact(
                        diff,
                        opts,
                        &format!("{name}.hists.{hist}.count"),
                        bval.get("count").and_then(Value::as_f64),
                        cval.get("count").and_then(Value::as_f64),
                    );
                } else {
                    exact_obj(diff, opts, &format!("{name}.hists.{hist}"), bval, &cval);
                }
            }
        }
    }
}

fn diff_study(diff: &mut Diff, opts: &DiffOptions, base: &Value, cand: &Value) {
    for key in ["seed", "quick"] {
        exact(
            diff,
            opts,
            key,
            f64_field(base, key).or_else(|| base.get(key).and_then(Value::as_bool).map(f64::from)),
            f64_field(cand, key).or_else(|| cand.get(key).and_then(Value::as_bool).map(f64::from)),
        );
    }
    let empty = Vec::new();
    let base_nets = base
        .get("networks")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    let cand_nets = cand
        .get("networks")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    for bnet in base_nets {
        let name = bnet.get("network").and_then(Value::as_str).unwrap_or("");
        match cand_nets
            .iter()
            .find(|c| c.get("network").and_then(Value::as_str) == Some(name))
        {
            Some(cnet) => diff_network(diff, opts, bnet, cnet),
            None => diff
                .failures
                .push(format!("network {name:?} missing from candidate")),
        }
    }
    for cnet in cand_nets {
        let name = cnet.get("network").and_then(Value::as_str).unwrap_or("");
        if !base_nets
            .iter()
            .any(|b| b.get("network").and_then(Value::as_str) == Some(name))
        {
            diff.notes
                .push(format!("network {name:?} only in candidate"));
        }
    }
}

fn diff_mega(diff: &mut Diff, opts: &DiffOptions, base: &Value, cand: &Value) {
    for key in [
        "seed",
        "nodes",
        "ultrapeers",
        "leaves",
        "days",
        "shards",
        "window_ms",
        "events",
    ] {
        exact(diff, opts, key, f64_field(base, key), f64_field(cand, key));
    }
    diff_throughput(
        diff,
        opts,
        "mega",
        f64_field(base, "events_per_sec").unwrap_or(0.0),
        f64_field(cand, "events_per_sec").unwrap_or(0.0),
    );
    diff.notes.push(format!(
        "mega.run_secs: {:.2} -> {:.2}",
        f64_field(base, "run_secs").unwrap_or(0.0),
        f64_field(cand, "run_secs").unwrap_or(0.0)
    ));
    let empty = Vec::new();
    let base_mem = base.get("memory").and_then(Value::as_arr).unwrap_or(&empty);
    let cand_mem = cand.get("memory").and_then(Value::as_arr).unwrap_or(&empty);
    for bphase in base_mem {
        let phase = bphase.get("phase").and_then(Value::as_str).unwrap_or("");
        match cand_mem
            .iter()
            .find(|c| c.get("phase").and_then(Value::as_str) == Some(phase))
        {
            Some(cphase) => diff_memory(diff, opts, &format!("memory.{phase}"), bphase, cphase),
            None => diff
                .failures
                .push(format!("memory phase {phase:?} missing from candidate")),
        }
    }
}

/// Diffs two parsed BENCH documents. `Err` on shape mismatch or an
/// unrecognized document; `Ok` carries failures/notes per the policy above.
pub fn diff_bench(base: &Value, cand: &Value, opts: &DiffOptions) -> Result<Diff, String> {
    let shape = |v: &Value| {
        if v.get("networks").is_some() {
            Some("study")
        } else if v.get("run_secs").is_some() {
            Some("mega")
        } else {
            None
        }
    };
    let (bshape, cshape) = (shape(base), shape(cand));
    if bshape != cshape {
        return Err(format!(
            "shape mismatch: baseline is {}, candidate is {}",
            bshape.unwrap_or("unrecognized"),
            cshape.unwrap_or("unrecognized")
        ));
    }
    let mut diff = Diff::default();
    match bshape {
        Some("study") => diff_study(&mut diff, opts, base, cand),
        Some("mega") => diff_mega(&mut diff, opts, base, cand),
        _ => return Err("unrecognized BENCH shape (neither study nor mega)".into()),
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study(wall: f64, scan_secs: f64, queries: u64, bytes: u64) -> Value {
        p2pmal_json::parse(&format!(
            r#"{{"seed":2006,"quick":true,"faults":"none","networks":[{{
                "network":"LimeWire","wall_secs":{wall},"events":119083,
                "events_per_sec":100000,"shards":1,"window_ms":0,
                "subsystems":{{
                    "app":{{"secs":{app},"calls":119236}},
                    "scan":{{"secs":{scan_secs},"calls":33}}
                }},
                "memory":{{"nodes":41,"app_bytes":1,"bytes_per_node":{bytes},
                           "peak_rss_kb":1,"current_rss_kb":1}},
                "telemetry":{{"counters":{{"queries_issued":{queries}}},
                    "hists":{{"download_latency_us":
                        {{"count":33,"min":1,"p50":2,"p90":3,"p99":4,"max":5}},
                        "scan_wall_us":
                        {{"count":33,"min":9,"p50":9,"p90":9,"p99":9,"max":9}}}}}}
            }}]}}"#,
            app = wall * 0.5,
        ))
        .unwrap()
    }

    #[test]
    fn identical_studies_pass() {
        let base = study(1.0, 0.30, 997, 83617);
        let diff = diff_bench(&base, &base, &DiffOptions::default()).unwrap();
        assert!(diff.ok(), "failures: {:?}", diff.failures);
    }

    #[test]
    fn wall_noise_within_thresholds_passes_but_share_blowup_fails() {
        let base = study(1.0, 0.30, 997, 83617);
        // 10% slower machine, profile unchanged: fine.
        let slower = study(1.1, 0.33, 997, 83617);
        assert!(diff_bench(&base, &slower, &DiffOptions::default())
            .unwrap()
            .ok());
        // Scan share 30% -> 60% of wall: regression.
        let hot = study(1.0, 0.60, 997, 83617);
        let diff = diff_bench(&base, &hot, &DiffOptions::default()).unwrap();
        assert!(!diff.ok());
        assert!(diff.failures[0].contains("scan"), "{:?}", diff.failures);
    }

    #[test]
    fn counter_drift_fails_strict_but_not_lenient() {
        let base = study(1.0, 0.30, 997, 83617);
        let drift = study(1.0, 0.30, 998, 83617);
        assert!(!diff_bench(&base, &drift, &DiffOptions::default())
            .unwrap()
            .ok());
        let lenient = DiffOptions {
            lenient_exact: true,
            ..DiffOptions::default()
        };
        assert!(diff_bench(&base, &drift, &lenient).unwrap().ok());
    }

    #[test]
    fn bytes_per_node_has_a_budget() {
        let base = study(1.0, 0.30, 997, 80000);
        let ok = study(1.0, 0.30, 997, 86000); // +7.5% < 10%
        assert!(diff_bench(&base, &ok, &DiffOptions::default())
            .unwrap()
            .ok());
        let bad = study(1.0, 0.30, 997, 90000); // +12.5% > 10%
        let diff = diff_bench(&base, &bad, &DiffOptions::default()).unwrap();
        assert!(!diff.ok());
        assert!(diff.failures[0].contains("bytes_per_node"));
    }

    #[test]
    fn wall_hist_quantiles_are_exempt_but_counts_are_not() {
        let base = study(1.0, 0.30, 997, 83617);
        let mut cand = study(1.0, 0.30, 997, 83617);
        // Perturb the wall hist quantiles in place: find and rewrite p50.
        let s = cand.to_string_compact().replace(
            r#""scan_wall_us":{"count":33,"min":9,"p50":9"#,
            r#""scan_wall_us":{"count":33,"min":7,"p50":8"#,
        );
        cand = p2pmal_json::parse(&s).unwrap();
        assert!(diff_bench(&base, &cand, &DiffOptions::default())
            .unwrap()
            .ok());
        let s = s.replace(
            r#""scan_wall_us":{"count":33"#,
            r#""scan_wall_us":{"count":32"#,
        );
        cand = p2pmal_json::parse(&s).unwrap();
        assert!(!diff_bench(&base, &cand, &DiffOptions::default())
            .unwrap()
            .ok());
    }

    #[test]
    fn mega_shape_diffs_events_and_memory() {
        let mega = |events: u64, bytes: u64| {
            p2pmal_json::parse(&format!(
                r#"{{"seed":42,"nodes":50000,"ultrapeers":1923,"leaves":48076,
                     "days":2,"shards":4,"window_ms":1000,"setup_secs":0.2,
                     "run_secs":200.0,"events":{events},"events_per_sec":300000,
                     "memory":[{{"phase":"steady","nodes":50000,"app_bytes":1,
                       "bytes_per_node":{bytes},"peak_rss_kb":1,"current_rss_kb":1}}]}}"#
            ))
            .unwrap()
        };
        let base = mega(70907572, 38586);
        assert!(diff_bench(&base, &base, &DiffOptions::default())
            .unwrap()
            .ok());
        let bad = mega(70907573, 38586);
        assert!(!diff_bench(&base, &bad, &DiffOptions::default())
            .unwrap()
            .ok());
        let fat = mega(70907572, 60000);
        let diff = diff_bench(&base, &fat, &DiffOptions::default()).unwrap();
        assert!(diff.failures[0].contains("bytes_per_node"));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let s = study(1.0, 0.3, 1, 1);
        let m = p2pmal_json::parse(r#"{"run_secs":1,"events":1}"#).unwrap();
        assert!(diff_bench(&s, &m, &DiffOptions::default()).is_err());
    }
}
