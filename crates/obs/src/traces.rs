//! Causal trace reconstruction over a parsed journal.
//!
//! Spanned journal events form, per trace id, a forest: `query_issued`
//! roots, `query_matched` children, and the download / scan / infection
//! chain hanging off each match (the exact shape is documented in
//! `p2pmal-crawler`'s `trace.rs`). This module rebuilds those trees with
//! plain `BTreeMap`s (deterministic iteration ⇒ byte-stable reports),
//! checks referential integrity (every `parent` must resolve to a span
//! emitted somewhere in the same journal; sim-time must not decrease from
//! parent to child), and derives the analyses the `trace_report` bin
//! prints: per-edge sim-time latency, hop-depth distributions, per-family
//! propagation stats, and top-K deepest / widest traces.

use std::collections::BTreeMap;

use p2pmal_json::Value;
use p2pmal_netsim::telemetry_span::span_hex;

use crate::journal::JournalEvent;

/// One reconstructed trace: every event sharing a trace id, indexed by span.
#[derive(Debug, Default)]
pub struct Trace {
    /// Journal indices of member events, in journal order.
    pub events: Vec<usize>,
    /// span id → journal index of the event that defined it (first wins).
    pub span_owner: BTreeMap<u64, usize>,
    /// parent span id → journal indices of its children.
    pub children: BTreeMap<u64, Vec<usize>>,
    /// Journal indices of parentless (root) events.
    pub roots: Vec<usize>,
    /// Journal indices whose `parent` span was never emitted.
    pub orphans: Vec<usize>,
}

/// All traces of a journal plus integrity bookkeeping.
#[derive(Debug, Default)]
pub struct TraceForest {
    pub traces: BTreeMap<u64, Trace>,
    /// Events without provenance (fault/churn or sampled-out categories).
    pub spanless: usize,
    /// Events carrying a span.
    pub spanned: usize,
    /// (child journal idx, parent journal idx) where child.t < parent.t.
    pub monotone_violations: Vec<(usize, usize)>,
}

impl TraceForest {
    /// Rebuilds the forest. Order-independent: membership and links are
    /// resolved over the whole journal, so a window-merged sharded journal
    /// reconstructs identically however its shards interleaved.
    pub fn build(events: &[JournalEvent]) -> TraceForest {
        let mut forest = TraceForest::default();
        for ev in events {
            let (Some(trace), Some(span)) = (ev.trace, ev.span) else {
                forest.spanless += 1;
                continue;
            };
            forest.spanned += 1;
            let tr = forest.traces.entry(trace).or_default();
            tr.events.push(ev.idx);
            tr.span_owner.entry(span).or_insert(ev.idx);
            match ev.parent {
                Some(parent) => tr.children.entry(parent).or_default().push(ev.idx),
                None => tr.roots.push(ev.idx),
            }
        }
        // Second pass: now that every span owner is known, classify orphans
        // and check per-edge sim-time monotonicity.
        for ev in events {
            let (Some(trace), Some(parent)) = (ev.trace, ev.parent) else {
                continue;
            };
            let tr = forest.traces.get_mut(&trace).expect("trace indexed above");
            match tr.span_owner.get(&parent) {
                None => tr.orphans.push(ev.idx),
                Some(&owner) => {
                    if events[owner].t > ev.t {
                        forest.monotone_violations.push((ev.idx, owner));
                    }
                }
            }
        }
        forest
    }

    /// Root-to-event path of journal indices, following `parent` links.
    /// `None` if a link is orphaned (or a hash collision formed a cycle).
    pub fn path_of(&self, events: &[JournalEvent], idx: usize) -> Option<Vec<usize>> {
        let trace = events[idx].trace?;
        let tr = self.traces.get(&trace)?;
        let mut path = vec![idx];
        let mut cur = idx;
        while let Some(parent) = events[cur].parent {
            if path.len() > events.len() {
                return None; // cycle guard
            }
            cur = *tr.span_owner.get(&parent)?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    pub fn orphan_count(&self) -> usize {
        self.traces.values().map(|t| t.orphans.len()).sum()
    }
}

/// Sim-time aggregate for one parent→child edge kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeAgg {
    pub count: u64,
    pub min_us: u64,
    pub max_us: u64,
    pub sum_us: u64,
}

impl EdgeAgg {
    fn push(&mut self, dt: u64) {
        if self.count == 0 || dt < self.min_us {
            self.min_us = dt;
        }
        if dt > self.max_us {
            self.max_us = dt;
        }
        self.count += 1;
        self.sum_us += dt;
    }

    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-malware-family propagation stats, keyed off `infection` events.
#[derive(Debug, Default)]
pub struct FamilyStats {
    pub infections: u64,
    /// Distinct traces (≈ distinct originating queries) that delivered it.
    pub traces: BTreeMap<u64, u64>,
    /// Overlay hop depth (from the chain's `query_matched`) → count.
    pub hops: BTreeMap<u64, u64>,
}

/// A top-K entry: one maximal chain of a trace.
#[derive(Debug)]
pub struct ChainDesc {
    pub trace: u64,
    /// (event label, sim-micros) along the root→leaf path.
    pub path: Vec<(String, u64)>,
}

/// A top-K entry: the bushiest span of a trace.
#[derive(Debug)]
pub struct WidthDesc {
    pub trace: u64,
    /// Label of the widest span's event and its direct child count.
    pub span_ev: String,
    pub fanout: usize,
    /// Total events in the trace.
    pub events: usize,
}

/// Everything `trace_report` prints about one journal.
#[derive(Debug)]
pub struct Analysis {
    pub label: String,
    pub total_events: usize,
    pub spanless: usize,
    pub spanned: usize,
    pub trace_count: usize,
    pub orphans: Vec<(usize, u64, String)>,
    pub monotone_violations: usize,
    /// scan_verdict events reached by a full
    /// query→match→start→complete→verdict path.
    pub complete_chains: usize,
    /// scan_verdict events carrying a span at all.
    pub spanned_verdicts: usize,
    /// parent_ev→child_ev → sim-time latency aggregate.
    pub edges: BTreeMap<String, EdgeAgg>,
    /// Hop depth of chains whose verdict had detections > 0 / == 0.
    pub hops_malicious: BTreeMap<u64, u64>,
    pub hops_clean: BTreeMap<u64, u64>,
    pub families: BTreeMap<String, FamilyStats>,
    pub deepest: Vec<ChainDesc>,
    pub widest: Vec<WidthDesc>,
}

/// Walks one journal and derives the full [`Analysis`].
pub fn analyze(label: &str, events: &[JournalEvent], top_k: usize) -> Analysis {
    let forest = TraceForest::build(events);
    let mut analysis = Analysis {
        label: label.to_string(),
        total_events: events.len(),
        spanless: forest.spanless,
        spanned: forest.spanned,
        trace_count: forest.traces.len(),
        orphans: Vec::new(),
        monotone_violations: forest.monotone_violations.len(),
        complete_chains: 0,
        spanned_verdicts: 0,
        edges: BTreeMap::new(),
        hops_malicious: BTreeMap::new(),
        hops_clean: BTreeMap::new(),
        families: BTreeMap::new(),
        deepest: Vec::new(),
        widest: Vec::new(),
    };

    for tr in forest.traces.values() {
        for &idx in &tr.orphans {
            let ev = &events[idx];
            analysis
                .orphans
                .push((idx, ev.parent.unwrap_or(0), ev.ev.clone()));
        }
    }

    // Per-edge sim-time latency.
    for ev in events {
        let (Some(trace), Some(parent)) = (ev.trace, ev.parent) else {
            continue;
        };
        let Some(&owner) = forest
            .traces
            .get(&trace)
            .and_then(|t| t.span_owner.get(&parent))
        else {
            continue;
        };
        let parent_ev = &events[owner];
        let key = format!("{}->{}", parent_ev.ev, ev.ev);
        analysis
            .edges
            .entry(key)
            .or_default()
            .push(ev.t.saturating_sub(parent_ev.t));
    }

    // Chain completeness + hop depth, anchored on scan verdicts.
    for ev in events {
        if ev.ev != "scan_verdict" || !ev.spanned() {
            continue;
        }
        analysis.spanned_verdicts += 1;
        let Some(path) = forest.path_of(events, ev.idx) else {
            continue;
        };
        let labels: Vec<&str> = path.iter().map(|&i| events[i].ev.as_str()).collect();
        let complete = labels.first() == Some(&"query_issued")
            && labels.contains(&"query_matched")
            && labels.contains(&"download_start")
            && labels.contains(&"download_complete")
            && labels.last() == Some(&"scan_verdict");
        if complete {
            analysis.complete_chains += 1;
        }
        let hops = path
            .iter()
            .find(|&&i| events[i].ev == "query_matched")
            .and_then(|&i| events[i].u64_field("hops"));
        if let Some(hops) = hops {
            let detections = ev.u64_field("detections").unwrap_or(0);
            let bucket = if detections > 0 {
                &mut analysis.hops_malicious
            } else {
                &mut analysis.hops_clean
            };
            *bucket.entry(hops).or_insert(0) += 1;
        }
    }

    // Per-family propagation, anchored on infection events.
    for ev in events {
        if ev.ev != "infection" {
            continue;
        }
        let family = ev.str_field("family").unwrap_or("unknown").to_string();
        let stats = analysis.families.entry(family).or_default();
        stats.infections += 1;
        if let Some(trace) = ev.trace {
            *stats.traces.entry(trace).or_insert(0) += 1;
            if let Some(path) = forest.path_of(events, ev.idx) {
                if let Some(hops) = path
                    .iter()
                    .find(|&&i| events[i].ev == "query_matched")
                    .and_then(|&i| events[i].u64_field("hops"))
                {
                    *stats.hops.entry(hops).or_insert(0) += 1;
                }
            }
        }
    }

    // Top-K deepest chains: longest root→leaf path per trace, ranked.
    let mut deepest: Vec<ChainDesc> = Vec::new();
    let mut widest: Vec<WidthDesc> = Vec::new();
    for (&trace, tr) in &forest.traces {
        let mut best: Option<Vec<usize>> = None;
        for &idx in &tr.events {
            if let Some(path) = forest.path_of(events, idx) {
                if best.as_ref().is_none_or(|b| path.len() > b.len()) {
                    best = Some(path);
                }
            }
        }
        if let Some(path) = best {
            deepest.push(ChainDesc {
                trace,
                path: path
                    .iter()
                    .map(|&i| (events[i].ev.clone(), events[i].t))
                    .collect(),
            });
        }
        if let Some((&span, kids)) = tr.children.iter().max_by_key(|(_, kids)| kids.len()) {
            widest.push(WidthDesc {
                trace,
                span_ev: tr
                    .span_owner
                    .get(&span)
                    .map(|&i| events[i].ev.clone())
                    .unwrap_or_else(|| "<orphaned>".to_string()),
                fanout: kids.len(),
                events: tr.events.len(),
            });
        }
    }
    // Stable ranking: primary metric desc, trace id asc as tiebreak.
    deepest.sort_by(|a, b| b.path.len().cmp(&a.path.len()).then(a.trace.cmp(&b.trace)));
    deepest.truncate(top_k);
    widest.sort_by(|a, b| b.fanout.cmp(&a.fanout).then(a.trace.cmp(&b.trace)));
    widest.truncate(top_k);
    analysis.deepest = deepest;
    analysis.widest = widest;
    analysis
}

fn hist_json(hist: &BTreeMap<u64, u64>) -> Value {
    Value::Obj(
        hist.iter()
            .map(|(k, v)| (k.to_string(), Value::Num(*v as f64)))
            .collect(),
    )
}

impl Analysis {
    /// Machine-readable report fragment for this journal.
    pub fn to_json(&self) -> Value {
        let edges = Value::Obj(
            self.edges
                .iter()
                .map(|(k, agg)| {
                    (
                        k.clone(),
                        Value::Obj(vec![
                            ("count".into(), Value::Num(agg.count as f64)),
                            ("min_us".into(), Value::Num(agg.min_us as f64)),
                            ("mean_us".into(), Value::Num(agg.mean_us() as f64)),
                            ("max_us".into(), Value::Num(agg.max_us as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        let families = Value::Obj(
            self.families
                .iter()
                .map(|(name, f)| {
                    (
                        name.clone(),
                        Value::Obj(vec![
                            ("infections".into(), Value::Num(f.infections as f64)),
                            ("traces".into(), Value::Num(f.traces.len() as f64)),
                            ("hops".into(), hist_json(&f.hops)),
                        ]),
                    )
                })
                .collect(),
        );
        let orphans = Value::Arr(
            self.orphans
                .iter()
                .take(20)
                .map(|(idx, parent, ev)| {
                    Value::Obj(vec![
                        ("line".into(), Value::Num((*idx + 1) as f64)),
                        ("ev".into(), Value::Str(ev.clone())),
                        ("parent".into(), Value::Str(span_hex(*parent))),
                    ])
                })
                .collect(),
        );
        let deepest = Value::Arr(
            self.deepest
                .iter()
                .map(|c| {
                    Value::Obj(vec![
                        ("trace".into(), Value::Str(span_hex(c.trace))),
                        ("depth".into(), Value::Num(c.path.len() as f64)),
                        (
                            "path".into(),
                            Value::Arr(
                                c.path
                                    .iter()
                                    .map(|(ev, t)| {
                                        Value::Obj(vec![
                                            ("ev".into(), Value::Str(ev.clone())),
                                            ("t".into(), Value::Num(*t as f64)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let widest = Value::Arr(
            self.widest
                .iter()
                .map(|w| {
                    Value::Obj(vec![
                        ("trace".into(), Value::Str(span_hex(w.trace))),
                        ("span_ev".into(), Value::Str(w.span_ev.clone())),
                        ("fanout".into(), Value::Num(w.fanout as f64)),
                        ("events".into(), Value::Num(w.events as f64)),
                    ])
                })
                .collect(),
        );
        Value::Obj(vec![
            ("journal".into(), Value::Str(self.label.clone())),
            ("events".into(), Value::Num(self.total_events as f64)),
            ("spanned".into(), Value::Num(self.spanned as f64)),
            ("spanless".into(), Value::Num(self.spanless as f64)),
            ("traces".into(), Value::Num(self.trace_count as f64)),
            ("orphans".into(), Value::Num(self.orphans.len() as f64)),
            ("orphan_examples".into(), orphans),
            (
                "monotone_violations".into(),
                Value::Num(self.monotone_violations as f64),
            ),
            (
                "spanned_verdicts".into(),
                Value::Num(self.spanned_verdicts as f64),
            ),
            (
                "complete_chains".into(),
                Value::Num(self.complete_chains as f64),
            ),
            ("edge_latency".into(), edges),
            ("hops_malicious".into(), hist_json(&self.hops_malicious)),
            ("hops_clean".into(), hist_json(&self.hops_clean)),
            ("families".into(), families),
            ("deepest".into(), deepest),
            ("widest".into(), widest),
        ])
    }

    /// Human-readable summary, one block per journal.
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.label);
        let _ = writeln!(
            out,
            "  events: {} ({} spanned, {} spanless), traces: {}",
            self.total_events, self.spanned, self.spanless, self.trace_count
        );
        let _ = writeln!(
            out,
            "  integrity: {} orphan spans, {} sim-time monotonicity violations",
            self.orphans.len(),
            self.monotone_violations
        );
        let _ = writeln!(
            out,
            "  chains: {}/{} scan verdicts reached by a complete query->match->download->verdict path",
            self.complete_chains, self.spanned_verdicts
        );
        if !self.edges.is_empty() {
            let _ = writeln!(out, "  per-hop sim-time latency (min/mean/max us):");
            for (edge, agg) in &self.edges {
                let _ = writeln!(
                    out,
                    "    {:<40} x{:<6} {:>8}/{:>8}/{:>10}",
                    edge,
                    agg.count,
                    agg.min_us,
                    agg.mean_us(),
                    agg.max_us
                );
            }
        }
        if !self.hops_malicious.is_empty() || !self.hops_clean.is_empty() {
            let fmt_hist = |h: &BTreeMap<u64, u64>| {
                h.iter()
                    .map(|(k, v)| format!("{k}:{v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let _ = writeln!(
                out,
                "  hop depth (malicious verdicts): {}",
                fmt_hist(&self.hops_malicious)
            );
            let _ = writeln!(
                out,
                "  hop depth (clean verdicts):     {}",
                fmt_hist(&self.hops_clean)
            );
        }
        for (family, f) in &self.families {
            let _ = writeln!(
                out,
                "  family {:<24} {} infections over {} traces",
                family,
                f.infections,
                f.traces.len()
            );
        }
        for (i, c) in self.deepest.iter().enumerate() {
            let path = c
                .path
                .iter()
                .map(|(ev, _)| ev.as_str())
                .collect::<Vec<_>>()
                .join(" -> ");
            let _ = writeln!(
                out,
                "  deepest#{i} trace {} depth {}: {}",
                span_hex(c.trace),
                c.path.len(),
                path
            );
        }
        for (i, w) in self.widest.iter().enumerate() {
            let _ = writeln!(
                out,
                "  widest#{i}  trace {} fanout {} at {} ({} events)",
                span_hex(w.trace),
                w.fanout,
                w.span_ev,
                w.events
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::parse_journal;

    fn chain_journal() -> Vec<JournalEvent> {
        // A hand-built two-retry chain matching the DlTrace shape, plus one
        // spanless churn line and one orphan.
        let text = concat!(
            "{\"t\":10,\"day\":0,\"cat\":\"query\",\"ev\":\"query_issued\",\"trace\":\"0000000000000001\",\"span\":\"0000000000000010\",\"text\":\"a\",\"seq\":0}\n",
            "{\"t\":20,\"day\":0,\"cat\":\"query\",\"ev\":\"query_matched\",\"trace\":\"0000000000000001\",\"span\":\"0000000000000011\",\"parent\":\"0000000000000010\",\"text\":\"a\",\"results\":2,\"hops\":3}\n",
            "{\"t\":30,\"day\":0,\"cat\":\"download\",\"ev\":\"download_start\",\"trace\":\"0000000000000001\",\"span\":\"0000000000000012\",\"parent\":\"0000000000000011\",\"name\":\"a\",\"size\":1,\"host\":\"h\",\"attempt\":0}\n",
            "{\"t\":40,\"day\":0,\"cat\":\"download\",\"ev\":\"download_complete\",\"trace\":\"0000000000000001\",\"span\":\"0000000000000013\",\"parent\":\"0000000000000012\",\"name\":\"a\",\"ok\":true,\"latency_us\":10,\"attempts\":1}\n",
            "{\"t\":50,\"day\":0,\"cat\":\"scan\",\"ev\":\"scan_verdict\",\"trace\":\"0000000000000001\",\"span\":\"0000000000000014\",\"parent\":\"0000000000000013\",\"name\":\"a\",\"sha1\":\"x\",\"len\":1,\"detections\":1}\n",
            "{\"t\":50,\"day\":0,\"cat\":\"scan\",\"ev\":\"infection\",\"trace\":\"0000000000000001\",\"span\":\"0000000000000015\",\"parent\":\"0000000000000014\",\"name\":\"Worm.A\",\"family\":\"worm_a\",\"sha1\":\"x\"}\n",
            "{\"t\":60,\"day\":0,\"cat\":\"churn\",\"ev\":\"churn_down\",\"node\":1}\n",
            "{\"t\":70,\"day\":0,\"cat\":\"download\",\"ev\":\"download_retry\",\"trace\":\"0000000000000002\",\"span\":\"0000000000000021\",\"parent\":\"00000000000000ff\",\"name\":\"b\",\"attempt\":1,\"cause\":\"reset\"}\n",
        );
        parse_journal(text).unwrap()
    }

    #[test]
    fn reconstructs_a_complete_chain() {
        let events = chain_journal();
        let forest = TraceForest::build(&events);
        assert_eq!(forest.traces.len(), 2);
        assert_eq!(forest.spanless, 1);
        assert_eq!(forest.orphan_count(), 1);
        assert!(forest.monotone_violations.is_empty());
        let path = forest.path_of(&events, 5).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3, 4, 5]);
        // Orphaned link has no path to a root.
        assert!(forest.path_of(&events, 7).is_none());
    }

    #[test]
    fn analysis_counts_chains_hops_and_families() {
        let events = chain_journal();
        let a = analyze("test", &events, 3);
        assert_eq!(a.complete_chains, 1);
        assert_eq!(a.spanned_verdicts, 1);
        assert_eq!(a.hops_malicious.get(&3), Some(&1));
        assert!(a.hops_clean.is_empty());
        let fam = a.families.get("worm_a").unwrap();
        assert_eq!(fam.infections, 1);
        assert_eq!(fam.traces.len(), 1);
        assert_eq!(fam.hops.get(&3), Some(&1));
        assert_eq!(a.orphans.len(), 1);
        assert_eq!(a.deepest[0].path.len(), 6);
        // Edge latency captured per edge kind.
        assert_eq!(a.edges.get("query_issued->query_matched").unwrap().count, 1);
        assert_eq!(a.edges.get("scan_verdict->infection").unwrap().mean_us(), 0);
        // JSON render is stable and contains the headline numbers.
        let json = a.to_json();
        assert_eq!(json.get("complete_chains").and_then(Value::as_u64), Some(1));
        assert_eq!(json.get("orphans").and_then(Value::as_u64), Some(1));
        assert!(a.render_summary().contains("1/1 scan verdicts"));
    }
}
