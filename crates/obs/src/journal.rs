//! JSONL journal parsing into typed events.
//!
//! The journal schema is defined in `p2pmal-netsim`'s
//! `telemetry/event.rs` (`TelemetryEvent::to_json`): a flat object per
//! line with envelope fields `t`/`day`/`cat`/`ev`, optional provenance
//! `trace`/`span`/`parent` (16-char hex strings), then body fields. This
//! module parses lines back into [`JournalEvent`]s, keeping the full
//! object around so analyses can reach any body field.

use p2pmal_json::Value;
use p2pmal_netsim::telemetry_span::parse_span_hex;

/// One parsed journal line.
#[derive(Debug, Clone)]
pub struct JournalEvent {
    /// 0-based line number in the source journal.
    pub idx: usize,
    /// Sim-time in microseconds.
    pub t: u64,
    pub day: u64,
    pub cat: String,
    pub ev: String,
    pub trace: Option<u64>,
    pub span: Option<u64>,
    pub parent: Option<u64>,
    /// The whole parsed object, for body-field access.
    pub obj: Value,
}

impl JournalEvent {
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.obj.get(key).and_then(Value::as_str)
    }

    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.obj.get(key).and_then(Value::as_u64)
    }

    /// Whether this event carries provenance.
    pub fn spanned(&self) -> bool {
        self.span.is_some()
    }
}

fn id_field(obj: &Value, key: &str, idx: usize) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| format!("line {}: `{key}` is not a string", idx + 1))?;
            parse_span_hex(s)
                .map(Some)
                .ok_or_else(|| format!("line {}: `{key}` is not a hex id: {s:?}", idx + 1))
        }
    }
}

/// Parses one journal line (0-based `idx` for diagnostics).
pub fn parse_line(line: &str, idx: usize) -> Result<JournalEvent, String> {
    let obj = p2pmal_json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
    let need_u64 = |key: &str| {
        obj.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line {}: missing numeric `{key}`", idx + 1))
    };
    let need_str = |key: &str| {
        obj.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("line {}: missing string `{key}`", idx + 1))
    };
    let ev = JournalEvent {
        idx,
        t: need_u64("t")?,
        day: need_u64("day")?,
        cat: need_str("cat")?,
        ev: need_str("ev")?,
        trace: id_field(&obj, "trace", idx)?,
        span: id_field(&obj, "span", idx)?,
        parent: id_field(&obj, "parent", idx)?,
        obj,
    };
    if ev.span.is_some() != ev.trace.is_some() {
        return Err(format!(
            "line {}: `trace` and `span` must appear together",
            idx + 1
        ));
    }
    if ev.parent.is_some() && ev.span.is_none() {
        return Err(format!("line {}: `parent` without `span`", idx + 1));
    }
    Ok(ev)
}

/// Parses a whole journal (one JSON object per non-empty line).
pub fn parse_journal(text: &str) -> Result<Vec<JournalEvent>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line, idx)?);
    }
    Ok(events)
}

/// Reads and parses a journal file.
pub fn load_journal(path: &str) -> Result<Vec<JournalEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_journal(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spanned_and_spanless_lines() {
        let text = concat!(
            "{\"t\":1,\"day\":0,\"cat\":\"query\",\"ev\":\"query_issued\",",
            "\"trace\":\"00000000000000aa\",\"span\":\"00000000000000bb\",",
            "\"text\":\"mp3\",\"seq\":0}\n",
            "{\"t\":2,\"day\":0,\"cat\":\"churn\",\"ev\":\"churn_down\",\"node\":3}\n",
        );
        let events = parse_journal(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].trace, Some(0xaa));
        assert_eq!(events[0].span, Some(0xbb));
        assert_eq!(events[0].parent, None);
        assert_eq!(events[0].str_field("text"), Some("mp3"));
        assert!(!events[1].spanned());
        assert_eq!(events[1].u64_field("node"), Some(3));
    }

    #[test]
    fn rejects_malformed_provenance() {
        // span without trace
        let bad = "{\"t\":1,\"day\":0,\"cat\":\"query\",\"ev\":\"query_issued\",\"span\":\"01\"}";
        assert!(parse_line(bad, 0).is_err());
        // parent without span
        let bad = "{\"t\":1,\"day\":0,\"cat\":\"query\",\"ev\":\"query_issued\",\"parent\":\"01\"}";
        assert!(parse_line(bad, 0).is_err());
        // non-hex id
        let bad = concat!(
            "{\"t\":1,\"day\":0,\"cat\":\"query\",\"ev\":\"q\",",
            "\"trace\":\"zz\",\"span\":\"01\"}"
        );
        assert!(parse_line(bad, 0).is_err());
    }
}
