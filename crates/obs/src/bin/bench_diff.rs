//! Diffs two BENCH JSON artifacts; CI's perf-regression gate.
//!
//! ```text
//! bench_diff [options] <baseline.json> <candidate.json>
//!   --max-share-regress-pct N   wall-bucket share growth budget (default 15)
//!   --min-share-points N        ...and minimum absolute growth in points (3)
//!   --min-bucket-secs S         skip buckets under S baseline seconds (0.05)
//!   --min-bucket-share-pct N    skip buckets under N% of baseline wall (10)
//!   --max-bytes-regress-pct N   bytes_per_node budget (default 10)
//!   --fail-on-throughput        fail on events/sec drops too (default: note)
//!   --max-throughput-regress-pct N   ...beyond this percentage (25)
//!   --lenient-exact             demote exact-field drift to notes
//!   --json PATH                 write the machine-readable diff report
//! ```
//!
//! Exit codes: 0 = within thresholds, 1 = regression, 2 = usage/parse
//! error. The comparison policy (what is exact, what is thresholded, and
//! why) is documented on `p2pmal_obs::diff`.

use p2pmal_obs::{diff_bench, DiffOptions};

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff [options] <baseline.json> <candidate.json> (see --help in source)"
    );
    std::process::exit(2);
}

fn load(path: &str) -> p2pmal_json::Value {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("bench_diff: cannot read {path}: {err}");
            std::process::exit(2);
        }
    };
    match p2pmal_json::parse(&text) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("bench_diff: {path}: {err}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut opts = DiffOptions::default();
    let mut json_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |target: &mut f64| match args.next().and_then(|v| v.parse().ok()) {
            Some(v) => *target = v,
            None => usage(),
        };
        match arg.as_str() {
            "--max-share-regress-pct" => num(&mut opts.max_share_regress_pct),
            "--min-share-points" => num(&mut opts.min_share_points),
            "--min-bucket-secs" => num(&mut opts.min_bucket_secs),
            "--min-bucket-share-pct" => num(&mut opts.min_bucket_share_pct),
            "--max-bytes-regress-pct" => num(&mut opts.max_bytes_regress_pct),
            "--max-throughput-regress-pct" => num(&mut opts.max_throughput_regress_pct),
            "--fail-on-throughput" => opts.fail_on_throughput = true,
            "--lenient-exact" => opts.lenient_exact = true,
            "--json" => match args.next() {
                Some(v) => json_path = Some(v),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => files.push(arg),
        }
    }
    let [baseline, candidate] = files.as_slice() else {
        usage();
    };

    let diff = match diff_bench(&load(baseline), &load(candidate), &opts) {
        Ok(diff) => diff,
        Err(err) => {
            eprintln!("bench_diff: {err}");
            std::process::exit(2);
        }
    };

    println!("baseline:  {baseline}");
    println!("candidate: {candidate}");
    for note in &diff.notes {
        println!("  note: {note}");
    }
    for failure in &diff.failures {
        println!("  FAIL: {failure}");
    }
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, diff.to_json().to_string_pretty() + "\n") {
            eprintln!("bench_diff: cannot write {path}: {err}");
            std::process::exit(2);
        }
    }
    if diff.ok() {
        println!("OK: no regressions beyond thresholds");
    } else {
        println!("REGRESSION: {} failure(s)", diff.failures.len());
        std::process::exit(1);
    }
}
