//! Reconstructs causal propagation trees from telemetry journals.
//!
//! ```text
//! trace_report [--top-k N] [--json PATH] [--strict] <journal.jsonl>...
//! ```
//!
//! For each journal (produced with `P2PMAL_JOURNAL=path` — see the README
//! Observability section): rebuilds every trace, prints a human summary
//! (chain completeness, per-hop sim-time latency, hop-depth distribution
//! of clean vs malicious verdicts, per-family propagation, top-K deepest
//! and widest traces, orphan diagnostics) and, with `--json`, writes a
//! machine-readable report covering all journals.
//!
//! `--strict` makes the bin a CI check: exit 1 unless every journal has
//! **zero orphan spans**, **zero sim-time monotonicity violations**, and
//! **at least one complete** `query_issued -> query_matched ->
//! download_start -> download_complete -> scan_verdict` chain.

use p2pmal_json::Value;
use p2pmal_obs::{analyze, load_journal};

fn usage() -> ! {
    eprintln!("usage: trace_report [--top-k N] [--json PATH] [--strict] <journal.jsonl>...");
    std::process::exit(2);
}

fn main() {
    let mut top_k = 3usize;
    let mut json_path: Option<String> = None;
    let mut strict = false;
    let mut journals: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top-k" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => top_k = v,
                None => usage(),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(v),
                None => usage(),
            },
            "--strict" => strict = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => journals.push(arg),
        }
    }
    if journals.is_empty() {
        usage();
    }

    let mut reports = Vec::new();
    let mut strict_ok = true;
    for path in &journals {
        let events = match load_journal(path) {
            Ok(events) => events,
            Err(err) => {
                eprintln!("trace_report: {err}");
                std::process::exit(2);
            }
        };
        let analysis = analyze(path, &events, top_k);
        print!("{}", analysis.render_summary());
        if !analysis.orphans.is_empty()
            || analysis.monotone_violations > 0
            || analysis.complete_chains == 0
        {
            strict_ok = false;
            if strict {
                eprintln!(
                    "trace_report: {path}: strict check failed \
                     ({} orphans, {} monotonicity violations, {} complete chains)",
                    analysis.orphans.len(),
                    analysis.monotone_violations,
                    analysis.complete_chains
                );
            }
        }
        reports.push(analysis.to_json());
    }

    if let Some(path) = json_path {
        let doc = Value::Obj(vec![("journals".into(), Value::Arr(reports))]);
        if let Err(err) = std::fs::write(&path, doc.to_string_pretty() + "\n") {
            eprintln!("trace_report: cannot write {path}: {err}");
            std::process::exit(2);
        }
        println!("report written to {path}");
    }

    if strict && !strict_ok {
        std::process::exit(1);
    }
}
