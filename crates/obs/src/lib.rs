//! Observability toolkit: causal provenance analysis and run comparison.
//!
//! Everything downstream of the journal lives here, split in three layers:
//!
//! * [`journal`] — parse JSONL journals (schema: `telemetry/event.rs` in
//!   `p2pmal-netsim`) back into typed events with trace/span/parent ids;
//! * [`traces`] — rebuild the per-trace causal forests, check referential
//!   integrity, and derive propagation / latency / hop-depth analyses
//!   (consumed by the `trace_report` bin);
//! * [`diff`] — compare two BENCH JSON artifacts with machine-robust
//!   thresholds (consumed by the `bench_diff` bin, which CI runs as a
//!   perf-regression gate against the committed `bench/` snapshots).
//!
//! The crate deliberately depends only on `p2pmal-json` and
//! `p2pmal-netsim` (for the span-id codec), so simulation crates can use
//! it from tests without dependency cycles.

pub mod diff;
pub mod journal;
pub mod traces;

pub use diff::{diff_bench, Diff, DiffOptions};
pub use journal::{load_journal, parse_journal, JournalEvent};
pub use traces::{analyze, Analysis, TraceForest};
