//! Property tests for the OpenFT codec: roundtrips for arbitrary values,
//! and panic-freedom on arbitrary bytes.

use p2pmal_hashes::Md5Digest;
use p2pmal_openft::http::{RequestReader, ResponseReader};
use p2pmal_openft::packet::{
    encode_packet, AddShare, Child, Command, NodeEntry, NodeInfo, NodeList, PacketReader, RemShare,
    Search, SearchResult, Session, Version,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

fn arb_md5() -> impl Strategy<Value = Md5Digest> {
    any::<[u8; 16]>().prop_map(Md5Digest)
}

fn arb_str() -> impl Strategy<Value = String> {
    "[ -~&&[^\\x00]]{0,48}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn packet_reader_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = PacketReader::new();
        r.push(&data);
        for _ in 0..64 {
            match r.next_packet() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn payload_parsers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Version::parse(&data);
        let _ = NodeInfo::parse(&data);
        let _ = NodeList::parse(&data);
        let _ = Session::parse(&data);
        let _ = Child::parse(&data);
        let _ = AddShare::parse(&data);
        let _ = RemShare::parse(&data);
        let _ = Search::parse(&data);
    }

    #[test]
    fn http_readers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut rr = RequestReader::new();
        rr.push(&data);
        let _ = rr.request();
        let mut resp = ResponseReader::new(1 << 16);
        resp.push(&data);
        let _ = resp.response();
    }

    #[test]
    fn nodeinfo_roundtrip(klass in any::<u16>(), port in any::<u16>(), http in any::<u16>(), alias in arb_str()) {
        let n = NodeInfo {
            klass,
            port,
            http_port: http,
            alias: alias.into(),
        };
        prop_assert_eq!(NodeInfo::parse(&n.encode()).unwrap(), n);
    }

    #[test]
    fn nodelist_roundtrip(entries in proptest::collection::vec((arb_ip(), any::<u16>(), any::<u16>()), 1..16)) {
        let list = NodeList::Response(
            entries.into_iter().map(|(ip, port, klass)| NodeEntry { ip, port, klass }).collect(),
        );
        prop_assert_eq!(NodeList::parse(&list.encode()).unwrap(), list);
    }

    #[test]
    fn addshare_roundtrip(md5 in arb_md5(), size in any::<u32>(), path in arb_str()) {
        let a = AddShare { md5, size, path };
        prop_assert_eq!(AddShare::parse(&a.encode()).unwrap(), a);
    }

    #[test]
    fn search_roundtrips(
        id in any::<u32>(),
        query in arb_str(),
        host in arb_ip(),
        port in any::<u16>(),
        http_port in any::<u16>(),
        avail in any::<u16>(),
        md5 in arb_md5(),
        size in any::<u32>(),
        filename in arb_str(),
    ) {
        let req = Search::Request { id, query };
        prop_assert_eq!(Search::parse(&req.encode()).unwrap(), req);
        let res = Search::Result(SearchResult { id, host, port, http_port, avail, md5, size, filename });
        prop_assert_eq!(Search::parse(&res.encode()).unwrap(), res);
        let end = Search::End { id };
        prop_assert_eq!(Search::parse(&end.encode()).unwrap(), end);
    }

    #[test]
    fn framing_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut wire = Vec::new();
        encode_packet(Command::Stats, &payload, &mut wire);
        let mut r = PacketReader::new();
        r.push(&wire);
        let (cmd, got) = r.next_packet().unwrap().unwrap();
        prop_assert_eq!(cmd, Command::Stats);
        prop_assert_eq!(got, payload);
        prop_assert_eq!(r.buffered(), 0);
    }
}
