//! End-to-end OpenFT node tests over the simulator.

use super::*;
use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::{ContentStore, FamilyId, Roster};
use p2pmal_netsim::{NodeId, NodeSpec, SimConfig, SimTime, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn world(seed: u64) -> SharedWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::generate(
        &CatalogConfig {
            titles: 150,
            ..Default::default()
        },
        &mut rng,
    );
    SharedWorld::new(
        Arc::new(catalog),
        Arc::new(Roster::openft_2006()),
        Arc::new(ContentStore::new(seed)),
    )
}

fn with_node<R>(
    sim: &mut Simulator,
    node: NodeId,
    f: impl FnOnce(&mut FtNode, &mut p2pmal_netsim::Ctx<'_>) -> R,
) -> R {
    sim.with_node(node, |app, ctx| {
        let n = app.as_any_mut().unwrap().downcast_mut::<FtNode>().unwrap();
        f(n, ctx)
    })
    .expect("node alive")
}

struct Net {
    sim: Simulator,
    search_nodes: Vec<NodeId>,
    world: SharedWorld,
    search_addrs: Vec<HostAddr>,
}

fn build(seed: u64, n_search: usize) -> Net {
    let world = world(seed);
    let mut sim = Simulator::new(SimConfig::default(), seed);
    let mut search_nodes = Vec::new();
    let mut search_addrs = Vec::new();
    for _ in 0..n_search {
        let cfg = FtConfig::search_node().with_bootstrap(search_addrs.clone());
        let node = FtNode::new(cfg, world.clone(), HostLibrary::new());
        let id = sim.spawn(NodeSpec::public().listen(1215), Box::new(node));
        search_addrs.push(sim.node_addr(id));
        search_nodes.push(id);
    }
    sim.run_until(SimTime::from_secs(60));
    Net {
        sim,
        search_nodes,
        world,
        search_addrs,
    }
}

fn spawn_user(net: &mut Net, library: HostLibrary, collect: bool) -> NodeId {
    let cfg = FtConfig {
        collect_events: collect,
        ..FtConfig::user().with_bootstrap(net.search_addrs.clone())
    };
    let node = FtNode::new(cfg, net.world.clone(), library);
    net.sim
        .spawn(NodeSpec::public().listen(1215), Box::new(node))
}

/// A user registers shares with a search parent; a crawler's search returns
/// a result pointing at the *user's* host, and the download delivers bytes
/// of the advertised size.
#[test]
fn register_search_download_roundtrip() {
    let mut net = build(1, 2);
    // Pick the smallest title so the transfer finishes within the timeout
    // at simulated 2006 bandwidths.
    let small = net
        .world
        .catalog
        .items()
        .iter()
        .min_by_key(|it| it.variants[0].size)
        .expect("catalog is non-empty")
        .clone();
    assert!(
        small.variants[0].size < 2_000_000,
        "smallest title transfers quickly"
    );
    let mut lib = HostLibrary::new();
    lib.add_benign(&small, 0);
    let kw = small.keywords.clone();
    let expected_size = small.variants[0].size;

    let sharer = spawn_user(&mut net, lib, false);
    net.sim.run_until(SimTime::from_secs(180));
    assert!(
        with_node(&mut net.sim, sharer, |n, _| n.parent_count()) > 0,
        "sharer got a parent"
    );

    let crawler = spawn_user(&mut net, HostLibrary::new(), true);
    net.sim.run_until(SimTime::from_secs(300));
    assert!(with_node(&mut net.sim, crawler, |n, _| n.session_count()) > 0);

    with_node(&mut net.sim, crawler, |n, ctx| n.search(ctx, &kw.join(" ")));
    net.sim.run_until(SimTime::from_secs(360));
    let events = with_node(&mut net.sim, crawler, |n, _| n.drain_events());
    let result = events
        .iter()
        .find_map(|e| match e {
            FtEvent::SearchResult { result, .. } => Some(result.clone()),
            _ => None,
        })
        .expect("search returned the registered share");
    assert_eq!(result.size as u64, expected_size);
    assert_eq!(
        result.host,
        net.sim.node_addr(sharer).ip,
        "result points at the sharer"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, FtEvent::SearchEnd { .. })),
        "stream terminated"
    );

    // Download from the result's host by MD5.
    with_node(&mut net.sim, crawler, |n, ctx| {
        n.begin_download(
            ctx,
            HostAddr::new(result.host, result.http_port),
            result.md5,
        )
    });
    net.sim.run_until(SimTime::from_secs(900));
    let events = with_node(&mut net.sim, crawler, |n, _| n.drain_events());
    let body = events
        .iter()
        .find_map(|e| match e {
            FtEvent::DownloadDone { result, .. } => Some(result.clone().expect("download ok")),
            _ => None,
        })
        .expect("download completed");
    assert_eq!(body.len() as u64, expected_size);
}

/// The OpenFT superspreader: one host sharing one virus under many popular
/// names; its registrations dominate malicious search results.
#[test]
fn superspreader_dominates_malicious_results() {
    let mut net = build(2, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let mut lib = HostLibrary::new();
    let fam = net.world.roster.get(FamilyId(0)).clone();
    lib.infect_superspreader(&fam, &net.world.catalog, 40, &mut rng);
    assert!(lib.files().len() >= 30);

    let spreader = spawn_user(&mut net, lib, false);
    net.sim.run_until(SimTime::from_secs(180));
    let crawler = spawn_user(&mut net, HostLibrary::new(), true);
    net.sim.run_until(SimTime::from_secs(300));

    // Query popular titles; the spreader's baits ride popularity.
    let queries: Vec<String> = (0..20)
        .map(|i| net.world.catalog.item(i).keywords.join(" "))
        .collect();
    for q in &queries {
        with_node(&mut net.sim, crawler, |n, ctx| n.search(ctx, q));
    }
    net.sim.run_until(SimTime::from_secs(500));
    let events = with_node(&mut net.sim, crawler, |n, _| n.drain_events());
    let results: Vec<SearchResult> = events
        .into_iter()
        .filter_map(|e| match e {
            FtEvent::SearchResult { result, .. } => Some(result),
            _ => None,
        })
        .collect();
    assert!(!results.is_empty());
    let spreader_ip = net.sim.node_addr(spreader).ip;
    let from_spreader = results.iter().filter(|r| r.host == spreader_ip).count();
    assert!(
        from_spreader > 0,
        "superspreader shows up in popular searches"
    );
    // Every spreader result has the family's characteristic size.
    for r in results.iter().filter(|r| r.host == spreader_ip) {
        assert!(fam.sizes.contains(&(r.size as u64)), "size {}", r.size);
    }
}

/// Downloaded superspreader content convicts under the scanner.
#[test]
fn downloaded_malware_scans_dirty() {
    let mut net = build(3, 1);
    let mut rng = StdRng::seed_from_u64(6);
    let mut lib = HostLibrary::new();
    let fam = net.world.roster.get(FamilyId(0)).clone();
    lib.infect_superspreader(&fam, &net.world.catalog, 10, &mut rng);
    let bait_name = lib.files()[0].name.clone();
    let spreader = spawn_user(&mut net, lib, false);
    net.sim.run_until(SimTime::from_secs(180));
    let crawler = spawn_user(&mut net, HostLibrary::new(), true);
    net.sim.run_until(SimTime::from_secs(300));

    let stem = bait_name.trim_end_matches(".exe").replace('_', " ");
    with_node(&mut net.sim, crawler, |n, ctx| n.search(ctx, &stem));
    net.sim.run_until(SimTime::from_secs(400));
    let events = with_node(&mut net.sim, crawler, |n, _| n.drain_events());
    let result = events
        .iter()
        .find_map(|e| match e {
            FtEvent::SearchResult { result, .. } => Some(result.clone()),
            _ => None,
        })
        .expect("bait found");
    with_node(&mut net.sim, crawler, |n, ctx| {
        n.begin_download(
            ctx,
            HostAddr::new(result.host, result.http_port),
            result.md5,
        )
    });
    net.sim.run_until(SimTime::from_secs(600));
    let events = with_node(&mut net.sim, crawler, |n, _| n.drain_events());
    let body = events
        .iter()
        .find_map(|e| match e {
            FtEvent::DownloadDone { result, .. } => Some(result.clone().expect("ok")),
            _ => None,
        })
        .expect("download done");
    let scanner =
        p2pmal_scanner::Scanner::new(net.world.roster.signature_db().unwrap().build().unwrap());
    assert_eq!(
        scanner.scan(&result.filename, &body).primary(),
        Some(fam.name.as_str())
    );
    let _ = spreader;
}

/// Node discovery: a user bootstrapped with one search node learns about
/// the others via NODELIST and sessions with them.
#[test]
fn nodelist_discovery_expands_sessions() {
    let mut net = build(4, 3);
    let one = vec![net.search_addrs[0]];
    let cfg = FtConfig {
        target_sessions: 3,
        ..FtConfig::user().with_bootstrap(one)
    };
    let node = FtNode::new(cfg, net.world.clone(), HostLibrary::new());
    let user = net
        .sim
        .spawn(NodeSpec::public().listen(1215), Box::new(node));
    net.sim.run_until(SimTime::from_secs(400));
    let sessions = with_node(&mut net.sim, user, |n, _| n.session_count());
    assert!(sessions >= 2, "discovered beyond bootstrap: {sessions}");
}

/// A 404 comes back for an unknown MD5 instead of a hang.
#[test]
fn unknown_md5_download_fails_cleanly() {
    let mut net = build(5, 1);
    let crawler = spawn_user(&mut net, HostLibrary::new(), true);
    net.sim.run_until(SimTime::from_secs(120));
    let target = net.search_addrs[0];
    with_node(&mut net.sim, crawler, |n, ctx| {
        n.begin_download(ctx, target, p2pmal_hashes::md5(b"no such file"))
    });
    net.sim.run_until(SimTime::from_secs(300));
    let events = with_node(&mut net.sim, crawler, |n, _| n.drain_events());
    let outcome = events
        .iter()
        .find_map(|e| match e {
            FtEvent::DownloadDone { result, .. } => Some(result.clone()),
            _ => None,
        })
        .expect("download resolved");
    assert_eq!(outcome, Err(FtDownloadError::Http(404)));
}

/// Share withdrawal: REMSHARE removes the entry from the parent index.
#[test]
fn remshare_removes_from_index() {
    let mut net = build(6, 1);
    let mut lib = HostLibrary::new();
    lib.add_benign(net.world.catalog.item(1), 0);
    let content = lib.files()[0].content;
    let sharer = spawn_user(&mut net, lib, false);
    net.sim.run_until(SimTime::from_secs(200));
    let indexed = with_node(&mut net.sim, net.search_nodes[0], |n, _| n.indexed_shares());
    assert_eq!(indexed, 1);

    // Withdraw by sending REMSHARE over the parent connection.
    let md5 = net.world.store.declared_md5(content);
    with_node(&mut net.sim, sharer, |n, ctx| {
        let parents: Vec<ConnId> = n
            .conns
            .iter()
            .filter(|(_, k)| matches!(k, ConnKind::Peer(p) if p.parent))
            .map(|(&c, _)| c)
            .collect();
        for c in parents {
            n.send_packet(
                ctx,
                c,
                Command::RemShare,
                &crate::packet::RemShare { md5 }.encode(),
            );
        }
    });
    net.sim.run_until(SimTime::from_secs(260));
    let indexed = with_node(&mut net.sim, net.search_nodes[0], |n, _| n.indexed_shares());
    assert_eq!(indexed, 0);
}

/// A disconnecting child's shares vanish from the parent index.
#[test]
fn child_departure_cleans_index() {
    let mut net = build(7, 1);
    let mut lib = HostLibrary::new();
    lib.add_benign(net.world.catalog.item(2), 0);
    let sharer = spawn_user(&mut net, lib, false);
    net.sim.run_until(SimTime::from_secs(200));
    assert_eq!(
        with_node(&mut net.sim, net.search_nodes[0], |n, _| n.indexed_shares()),
        1
    );
    net.sim.stop_node(sharer);
    net.sim.run_until(SimTime::from_secs(300));
    assert_eq!(
        with_node(&mut net.sim, net.search_nodes[0], |n, _| n.indexed_shares()),
        0,
        "index purged on child departure"
    );
}
