//! An OpenFT (giFT) implementation — the substrate for the reproduction's
//! second measured network.
//!
//! The IMC 2006 study instrumented giFT's OpenFT plugin alongside LimeWire.
//! OpenFT is architecturally unlike Gnutella: instead of flooding, USER
//! nodes register their shares (MD5 + size + path) with SEARCH-class
//! parents, searches are answered from those registration indexes, and
//! files move over a separate MD5-addressed HTTP channel.
//!
//! * [`packet`] — length/command framing and all typed payloads
//!   (VERSION, NODEINFO, NODELIST, SESSION, CHILD, ADDSHARE, REMSHARE,
//!   SEARCH, ...);
//! * [`http`] — the MD5-addressed transfer channel;
//! * [`node`] — a complete node over [`p2pmal_netsim::App`] supporting the
//!   USER, SEARCH and INDEX classes.
//!
//! ```
//! use p2pmal_openft::packet::{encode_packet, Command, PacketReader, Search};
//!
//! let mut wire = Vec::new();
//! let req = Search::Request { id: 1, query: "screensaver".into() };
//! encode_packet(Command::Search, &req.encode(), &mut wire);
//!
//! let mut reader = PacketReader::new();
//! reader.push(&wire);
//! let (cmd, payload) = reader.next_packet().unwrap().unwrap();
//! assert_eq!(cmd, Command::Search);
//! assert_eq!(Search::parse(&payload).unwrap(), req);
//! ```

pub mod http;
pub mod node;
pub mod packet;

pub use node::{FtConfig, FtDownloadError, FtEvent, FtNode, FtStats};
pub use packet::{
    AddShare, Child, Command, NodeEntry, NodeInfo, NodeList, PacketError, PacketReader, Search,
    SearchResult, Session, Version, CLASS_INDEX, CLASS_SEARCH, CLASS_USER,
};
