//! OpenFT packet framing and typed payloads.
//!
//! OpenFT (the giFT project's native network) frames every message as
//!
//! ```text
//! u16 length   (payload bytes, big-endian)
//! u16 command
//! payload
//! ```
//!
//! Integers are big-endian ("network order", as giFT transmitted them);
//! strings are NUL-terminated. Commands cover session setup (VERSION,
//! NODEINFO, SESSION), topology discovery (NODELIST, NODECAP, PING), the
//! parent/child share-registration protocol (CHILD, ADDSHARE, REMSHARE,
//! MODSHARE, STATS), and search (SEARCH, BROWSE).

use p2pmal_hashes::Md5Digest;
use std::fmt;
use std::net::Ipv4Addr;

/// OpenFT command numbers (giFT `ft_packet.h` ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    Version = 0,
    NodeInfo = 1,
    NodeList = 2,
    NodeCap = 3,
    Ping = 4,
    Session = 5,
    Child = 6,
    AddShare = 7,
    RemShare = 8,
    ModShare = 9,
    Stats = 10,
    Search = 11,
    Browse = 12,
}

impl Command {
    pub fn from_u16(v: u16) -> Option<Command> {
        use Command::*;
        Some(match v {
            0 => Version,
            1 => NodeInfo,
            2 => NodeList,
            3 => NodeCap,
            4 => Ping,
            5 => Session,
            6 => Child,
            7 => AddShare,
            8 => RemShare,
            9 => ModShare,
            10 => Stats,
            11 => Search,
            12 => Browse,
            _ => return None,
        })
    }
}

/// Node class bitmask.
pub const CLASS_USER: u16 = 0x01;
pub const CLASS_SEARCH: u16 = 0x02;
pub const CLASS_INDEX: u16 = 0x04;

/// Hard payload ceiling, as the C implementation enforced (u16 length).
pub const MAX_PAYLOAD: usize = u16::MAX as usize;

/// Framing / payload errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    UnknownCommand(u16),
    Truncated,
    MissingNul,
    BadUtf8,
    TooLong,
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::UnknownCommand(c) => write!(f, "unknown OpenFT command {c}"),
            PacketError::Truncated => write!(f, "truncated packet"),
            PacketError::MissingNul => write!(f, "missing string terminator"),
            PacketError::BadUtf8 => write!(f, "invalid UTF-8"),
            PacketError::TooLong => write!(f, "payload too long"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Encodes one packet into `out`.
pub fn encode_packet(cmd: Command, payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "payload {} too long",
        payload.len()
    );
    out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    out.extend_from_slice(&(cmd as u16).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Incremental packet framer.
#[derive(Debug, Default)]
pub struct PacketReader {
    buf: Vec<u8>,
}

impl PacketReader {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete `(command, payload)`.
    pub fn next_packet(&mut self) -> Result<Option<(Command, Vec<u8>)>, PacketError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u16::from_be_bytes([self.buf[0], self.buf[1]]) as usize;
        let cmd_raw = u16::from_be_bytes([self.buf[2], self.buf[3]]);
        let cmd = Command::from_u16(cmd_raw).ok_or(PacketError::UnknownCommand(cmd_raw))?;
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some((cmd, payload)))
    }
}

// -- payload cursor ---------------------------------------------------------

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PacketError> {
        if self.data.len() - self.pos < n {
            return Err(PacketError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, PacketError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, PacketError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn ipv4(&mut self) -> Result<Ipv4Addr, PacketError> {
        let b = self.take(4)?;
        Ok(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
    }

    fn md5(&mut self) -> Result<Md5Digest, PacketError> {
        let b = self.take(16)?;
        let mut d = [0u8; 16];
        d.copy_from_slice(b);
        Ok(Md5Digest(d))
    }

    fn cstr(&mut self) -> Result<String, PacketError> {
        let rest = &self.data[self.pos..];
        let nul = rest
            .iter()
            .position(|&b| b == 0)
            .ok_or(PacketError::MissingNul)?;
        let s = std::str::from_utf8(&rest[..nul]).map_err(|_| PacketError::BadUtf8)?;
        self.pos += nul + 1;
        Ok(s.to_string())
    }

    fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(s.as_bytes());
    out.push(0);
}

// -- typed payloads ---------------------------------------------------------

/// VERSION: protocol version advertisement (first packet both ways).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    pub major: u16,
    pub minor: u16,
    pub micro: u16,
}

impl Version {
    /// The protocol revision this crate speaks (giFT 0.11.x era).
    pub const CURRENT: Version = Version {
        major: 0,
        minor: 2,
        micro: 1,
    };

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6);
        out.extend_from_slice(&self.major.to_be_bytes());
        out.extend_from_slice(&self.minor.to_be_bytes());
        out.extend_from_slice(&self.micro.to_be_bytes());
        out
    }

    pub fn parse(data: &[u8]) -> Result<Self, PacketError> {
        let mut r = Reader::new(data);
        Ok(Version {
            major: r.u16()?,
            minor: r.u16()?,
            micro: r.u16()?,
        })
    }
}

/// NODEINFO: class bitmask, OpenFT port, HTTP port, alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    pub klass: u16,
    pub port: u16,
    pub http_port: u16,
    /// `Arc<str>` so routing state can hold a world-interned copy (see
    /// `FtNode`'s NodeInfo handler); parsing allocates a fresh one.
    pub alias: std::sync::Arc<str>,
}

impl NodeInfo {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.klass.to_be_bytes());
        out.extend_from_slice(&self.port.to_be_bytes());
        out.extend_from_slice(&self.http_port.to_be_bytes());
        put_str(&mut out, &self.alias);
        out
    }

    pub fn parse(data: &[u8]) -> Result<Self, PacketError> {
        let mut r = Reader::new(data);
        Ok(NodeInfo {
            klass: r.u16()?,
            port: r.u16()?,
            http_port: r.u16()?,
            alias: r.cstr()?.into(),
        })
    }

    pub fn is_search(&self) -> bool {
        self.klass & CLASS_SEARCH != 0
    }

    pub fn is_index(&self) -> bool {
        self.klass & CLASS_INDEX != 0
    }
}

/// One NODELIST entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeEntry {
    pub ip: Ipv4Addr,
    pub port: u16,
    pub klass: u16,
}

/// NODELIST: empty payload = request; otherwise a response carrying peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeList {
    Request,
    Response(Vec<NodeEntry>),
}

impl NodeList {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            NodeList::Request => Vec::new(),
            NodeList::Response(entries) => {
                let mut out = Vec::with_capacity(entries.len() * 8);
                for e in entries {
                    out.extend_from_slice(&e.ip.octets());
                    out.extend_from_slice(&e.port.to_be_bytes());
                    out.extend_from_slice(&e.klass.to_be_bytes());
                }
                out
            }
        }
    }

    pub fn parse(data: &[u8]) -> Result<Self, PacketError> {
        if data.is_empty() {
            return Ok(NodeList::Request);
        }
        if !data.len().is_multiple_of(8) {
            return Err(PacketError::Truncated);
        }
        let mut r = Reader::new(data);
        let mut entries = Vec::with_capacity(data.len() / 8);
        while !r.at_end() {
            entries.push(NodeEntry {
                ip: r.ipv4()?,
                port: r.u16()?,
                klass: r.u16()?,
            });
        }
        Ok(NodeList::Response(entries))
    }
}

/// SESSION: stage 0 request, stage 1 accept/deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Session {
    Request,
    Response { accepted: bool },
}

impl Session {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Session::Request => vec![0, 0],
            Session::Response { accepted } => vec![0, 1, 0, u8::from(*accepted)],
        }
    }

    pub fn parse(data: &[u8]) -> Result<Self, PacketError> {
        let mut r = Reader::new(data);
        match r.u16()? {
            0 => Ok(Session::Request),
            1 => Ok(Session::Response {
                accepted: r.u16()? != 0,
            }),
            _ => Err(PacketError::Truncated),
        }
    }
}

/// CHILD: a USER asks a SEARCH node to become its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Child {
    Request,
    Response { accepted: bool },
}

impl Child {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Child::Request => Vec::new(),
            Child::Response { accepted } => vec![0, u8::from(*accepted)],
        }
    }

    pub fn parse(data: &[u8]) -> Result<Self, PacketError> {
        if data.is_empty() {
            return Ok(Child::Request);
        }
        let mut r = Reader::new(data);
        Ok(Child::Response {
            accepted: r.u16()? != 0,
        })
    }
}

/// ADDSHARE: register one file with the parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddShare {
    pub md5: Md5Digest,
    pub size: u32,
    pub path: String,
}

impl AddShare {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.md5.0);
        out.extend_from_slice(&self.size.to_be_bytes());
        put_str(&mut out, &self.path);
        out
    }

    pub fn parse(data: &[u8]) -> Result<Self, PacketError> {
        let mut r = Reader::new(data);
        Ok(AddShare {
            md5: r.md5()?,
            size: r.u32()?,
            path: r.cstr()?,
        })
    }
}

/// REMSHARE: withdraw one file (by MD5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemShare {
    pub md5: Md5Digest,
}

impl RemShare {
    pub fn encode(&self) -> Vec<u8> {
        self.md5.0.to_vec()
    }

    pub fn parse(data: &[u8]) -> Result<Self, PacketError> {
        let mut r = Reader::new(data);
        Ok(RemShare { md5: r.md5()? })
    }
}

/// SEARCH request / response stream. One request fans out into zero or
/// more `Result` packets, terminated by an `End` packet with the same id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Search {
    Request { id: u32, query: String },
    Result(SearchResult),
    End { id: u32 },
}

/// One search result: where to fetch which bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    pub id: u32,
    /// Host that actually serves the file (children register with parents,
    /// so results point at third parties).
    pub host: Ipv4Addr,
    pub port: u16,
    pub http_port: u16,
    /// How many simultaneous uploads the host advertises.
    pub avail: u16,
    pub md5: Md5Digest,
    pub size: u32,
    pub filename: String,
}

impl Search {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Search::Request { id, query } => {
                let mut out = Vec::new();
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&1u16.to_be_bytes()); // kind 1: request
                put_str(&mut out, query);
                out
            }
            Search::Result(res) => {
                let mut out = Vec::new();
                out.extend_from_slice(&res.id.to_be_bytes());
                out.extend_from_slice(&2u16.to_be_bytes()); // kind 2: result
                out.extend_from_slice(&res.host.octets());
                out.extend_from_slice(&res.port.to_be_bytes());
                out.extend_from_slice(&res.http_port.to_be_bytes());
                out.extend_from_slice(&res.avail.to_be_bytes());
                out.extend_from_slice(&res.md5.0);
                out.extend_from_slice(&res.size.to_be_bytes());
                put_str(&mut out, &res.filename);
                out
            }
            Search::End { id } => {
                let mut out = Vec::new();
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&3u16.to_be_bytes()); // kind 3: end
                out
            }
        }
    }

    pub fn parse(data: &[u8]) -> Result<Self, PacketError> {
        let mut r = Reader::new(data);
        let id = r.u32()?;
        match r.u16()? {
            1 => Ok(Search::Request {
                id,
                query: r.cstr()?,
            }),
            2 => Ok(Search::Result(SearchResult {
                id,
                host: r.ipv4()?,
                port: r.u16()?,
                http_port: r.u16()?,
                avail: r.u16()?,
                md5: r.md5()?,
                size: r.u32()?,
                filename: r.cstr()?,
            })),
            3 => Ok(Search::End { id }),
            k => Err(PacketError::UnknownCommand(k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmal_hashes::md5;

    #[test]
    fn framing_roundtrip_across_chunks() {
        let mut wire = Vec::new();
        encode_packet(Command::Version, &Version::CURRENT.encode(), &mut wire);
        encode_packet(Command::Ping, &[], &mut wire);
        encode_packet(
            Command::Search,
            &Search::Request {
                id: 7,
                query: "free stuff".into(),
            }
            .encode(),
            &mut wire,
        );
        let mut r = PacketReader::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            r.push(chunk);
            while let Some(p) = r.next_packet().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, Command::Version);
        assert_eq!(got[1].0, Command::Ping);
        assert!(got[1].1.is_empty());
        assert_eq!(
            Search::parse(&got[2].1).unwrap(),
            Search::Request {
                id: 7,
                query: "free stuff".into()
            }
        );
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn unknown_command_is_fatal() {
        let mut r = PacketReader::new();
        r.push(&[0, 0, 0, 99]);
        assert_eq!(r.next_packet(), Err(PacketError::UnknownCommand(99)));
    }

    #[test]
    fn version_roundtrip() {
        let v = Version {
            major: 1,
            minor: 2,
            micro: 3,
        };
        assert_eq!(Version::parse(&v.encode()).unwrap(), v);
        assert!(Version::parse(&[0, 1]).is_err());
    }

    #[test]
    fn nodeinfo_roundtrip_and_class_bits() {
        let n = NodeInfo {
            klass: CLASS_USER | CLASS_SEARCH,
            port: 1215,
            http_port: 1216,
            alias: "copper".into(),
        };
        let parsed = NodeInfo::parse(&n.encode()).unwrap();
        assert_eq!(parsed, n);
        assert!(parsed.is_search());
        assert!(!parsed.is_index());
    }

    #[test]
    fn nodelist_roundtrip() {
        assert_eq!(
            NodeList::parse(&NodeList::Request.encode()).unwrap(),
            NodeList::Request
        );
        let resp = NodeList::Response(vec![
            NodeEntry {
                ip: Ipv4Addr::new(1, 2, 3, 4),
                port: 1215,
                klass: CLASS_SEARCH,
            },
            NodeEntry {
                ip: Ipv4Addr::new(9, 9, 9, 9),
                port: 1999,
                klass: CLASS_INDEX,
            },
        ]);
        assert_eq!(NodeList::parse(&resp.encode()).unwrap(), resp);
        // Non-multiple-of-8 payload is corrupt.
        assert!(NodeList::parse(&[1, 2, 3]).is_err());
    }

    #[test]
    fn session_and_child_roundtrip() {
        for s in [
            Session::Request,
            Session::Response { accepted: true },
            Session::Response { accepted: false },
        ] {
            assert_eq!(Session::parse(&s.encode()).unwrap(), s);
        }
        for c in [
            Child::Request,
            Child::Response { accepted: true },
            Child::Response { accepted: false },
        ] {
            assert_eq!(Child::parse(&c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn share_packets_roundtrip() {
        let a = AddShare {
            md5: md5(b"x"),
            size: 12345,
            path: "/shared/thing.exe".into(),
        };
        assert_eq!(AddShare::parse(&a.encode()).unwrap(), a);
        let rm = RemShare { md5: md5(b"x") };
        assert_eq!(RemShare::parse(&rm.encode()).unwrap(), rm);
    }

    #[test]
    fn search_result_roundtrip() {
        let res = SearchResult {
            id: 42,
            host: Ipv4Addr::new(10, 0, 0, 7),
            port: 1215,
            http_port: 1216,
            avail: 3,
            md5: md5(b"payload"),
            size: 33_280,
            filename: "winzip_crack.exe".into(),
        };
        let s = Search::Result(res.clone());
        assert_eq!(Search::parse(&s.encode()).unwrap(), s);
        assert_eq!(
            Search::parse(&Search::End { id: 42 }.encode()).unwrap(),
            Search::End { id: 42 }
        );
    }

    #[test]
    fn search_truncations_never_panic() {
        let res = Search::Result(SearchResult {
            id: 1,
            host: Ipv4Addr::new(1, 1, 1, 1),
            port: 1,
            http_port: 2,
            avail: 0,
            md5: md5(b"z"),
            size: 9,
            filename: "f.exe".into(),
        });
        let wire = res.encode();
        for cut in 0..wire.len() {
            let _ = Search::parse(&wire[..cut]);
        }
    }
}
