//! OpenFT's HTTP transfer channel: files are addressed by MD5.
//!
//! giFT served uploads over a second listening port with requests of the
//! form `GET /md5/<hex> HTTP/1.1`. The reader/writer pairs here are sans-IO
//! like everything else in the workspace.

use p2pmal_hashes::{from_hex, Md5Digest};
use std::fmt;

const MAX_HEAD: usize = 8 * 1024;

/// Transfer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    BadRequest,
    BadStatusLine,
    BadHeader,
    MissingLength,
    HeadTooLong,
    BodyTooLong,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HttpError::BadRequest => "malformed upload request",
            HttpError::BadStatusLine => "malformed status line",
            HttpError::BadHeader => "malformed header",
            HttpError::MissingLength => "missing Content-Length",
            HttpError::HeadTooLong => "head too long",
            HttpError::BodyTooLong => "body exceeds cap",
        };
        f.write_str(s)
    }
}

impl std::error::Error for HttpError {}

/// Builds the MD5-addressed GET.
pub fn encode_request(md5: &Md5Digest) -> Vec<u8> {
    format!(
        "GET /md5/{} HTTP/1.1\r\nUser-Agent: giFT/0.11\r\nConnection: close\r\n\r\n",
        md5.to_hex()
    )
    .into_bytes()
}

/// Builds a 200 response head.
pub fn encode_response_ok(body_len: usize) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\nServer: giFT/0.11 (OpenFT)\r\nContent-Type: application/octet-stream\r\nContent-Length: {body_len}\r\n\r\n"
    )
    .into_bytes()
}

/// Builds an error response.
pub fn encode_response_err(code: u16, reason: &str) -> Vec<u8> {
    format!("HTTP/1.1 {code} {reason}\r\nServer: giFT/0.11 (OpenFT)\r\nContent-Length: 0\r\n\r\n")
        .into_bytes()
}

fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Server-side request reader: yields the requested MD5.
#[derive(Debug, Default)]
pub struct RequestReader {
    buf: Vec<u8>,
}

impl RequestReader {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    pub fn request(&mut self) -> Result<Option<Md5Digest>, HttpError> {
        let end = match head_end(&self.buf) {
            Some(i) => i,
            None => {
                if self.buf.len() > MAX_HEAD {
                    return Err(HttpError::HeadTooLong);
                }
                return Ok(None);
            }
        };
        let head = std::str::from_utf8(&self.buf[..end]).map_err(|_| HttpError::BadRequest)?;
        let line = head.split("\r\n").next().ok_or(HttpError::BadRequest)?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("GET") {
            return Err(HttpError::BadRequest);
        }
        let path = parts.next().ok_or(HttpError::BadRequest)?;
        let hex = path.strip_prefix("/md5/").ok_or(HttpError::BadRequest)?;
        let raw = from_hex(hex).ok_or(HttpError::BadRequest)?;
        if raw.len() != 16 {
            return Err(HttpError::BadRequest);
        }
        let mut d = [0u8; 16];
        d.copy_from_slice(&raw);
        self.buf.drain(..end + 4);
        Ok(Some(Md5Digest(d)))
    }
}

/// Client-side response reader (head + Content-Length body).
#[derive(Debug)]
pub struct ResponseReader {
    buf: Vec<u8>,
    body_len: Option<(u16, usize)>,
    max_body: usize,
}

impl ResponseReader {
    pub fn new(max_body: usize) -> Self {
        ResponseReader {
            buf: Vec::new(),
            body_len: None,
            max_body,
        }
    }

    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Returns `(status, body)` once complete.
    pub fn response(&mut self) -> Result<Option<(u16, Vec<u8>)>, HttpError> {
        if self.body_len.is_none() {
            let end = match head_end(&self.buf) {
                Some(i) => i,
                None => {
                    if self.buf.len() > MAX_HEAD {
                        return Err(HttpError::HeadTooLong);
                    }
                    return Ok(None);
                }
            };
            let head = std::str::from_utf8(&self.buf[..end]).map_err(|_| HttpError::BadHeader)?;
            let mut lines = head.split("\r\n");
            let status_line = lines.next().ok_or(HttpError::BadStatusLine)?;
            let mut parts = status_line.split_whitespace();
            if !parts.next().unwrap_or("").starts_with("HTTP/1.") {
                return Err(HttpError::BadStatusLine);
            }
            let status: u16 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(HttpError::BadStatusLine)?;
            let mut len = None;
            for line in lines {
                let (k, v) = line.split_once(':').ok_or(HttpError::BadHeader)?;
                if k.trim().eq_ignore_ascii_case("content-length") {
                    len = v.trim().parse::<usize>().ok();
                }
            }
            let len = len.ok_or(HttpError::MissingLength)?;
            if len > self.max_body {
                return Err(HttpError::BodyTooLong);
            }
            self.buf.drain(..end + 4);
            self.body_len = Some((status, len));
        }
        if let Some((status, len)) = self.body_len {
            if self.buf.len() < len {
                return Ok(None);
            }
            let body = self.buf[..len].to_vec();
            self.buf.drain(..len);
            self.body_len = None;
            return Ok(Some((status, body)));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmal_hashes::md5;

    #[test]
    fn request_roundtrip() {
        let d = md5(b"the file");
        let wire = encode_request(&d);
        let mut r = RequestReader::new();
        for chunk in wire.chunks(5) {
            r.push(chunk);
        }
        assert_eq!(r.request().unwrap(), Some(d));
    }

    #[test]
    fn bad_requests_rejected() {
        for bad in [
            "POST /md5/00112233445566778899aabbccddeeff HTTP/1.1\r\n\r\n",
            "GET /file/abc HTTP/1.1\r\n\r\n",
            "GET /md5/zz HTTP/1.1\r\n\r\n",
            "GET /md5/0011 HTTP/1.1\r\n\r\n",
        ] {
            let mut r = RequestReader::new();
            r.push(bad.as_bytes());
            assert!(r.request().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let body = vec![7u8; 5000];
        let mut wire = encode_response_ok(body.len());
        wire.extend_from_slice(&body);
        let mut r = ResponseReader::new(1 << 20);
        let mut out = None;
        for chunk in wire.chunks(333) {
            r.push(chunk);
            if let Some(resp) = r.response().unwrap() {
                out = Some(resp);
            }
        }
        let (status, got) = out.unwrap();
        assert_eq!(status, 200);
        assert_eq!(got, body);
    }

    #[test]
    fn oversized_body_refused() {
        let mut r = ResponseReader::new(10);
        r.push(&encode_response_ok(11));
        assert_eq!(r.response(), Err(HttpError::BodyTooLong));
    }

    #[test]
    fn error_response_parses() {
        let mut r = ResponseReader::new(10);
        r.push(&encode_response_err(404, "Not Found"));
        assert_eq!(r.response().unwrap(), Some((404, Vec::new())));
    }
}
