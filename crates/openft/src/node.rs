//! The OpenFT node: USER / SEARCH / INDEX classes over
//! [`p2pmal_netsim::App`].
//!
//! OpenFT is giFT's native network. Unlike Gnutella's flooding, OpenFT is
//! *registration-based*: USER nodes pick SEARCH-class parents and register
//! every shared file (MD5 + size + path) with them; a search is answered
//! entirely from the parent's registration index, with results pointing at
//! the third-party host that serves the bytes over HTTP.
//!
//! The simulator gives each node one listening socket, so the OpenFT packet
//! channel and the HTTP transfer channel share the port and inbound
//! connections are sniffed (binary packets never begin with `G`, HTTP GETs
//! always do). `NodeInfo.http_port` is still carried on the wire.
//!
//! Simplifications versus giFT, documented in DESIGN.md: the multi-stage
//! session negotiation is collapsed to one request/response; searches are
//! answered by the queried node only (no search-peer forwarding — the
//! crawler queries every SEARCH node it discovers, which is how giFT's
//! default configuration effectively behaved in small deployments); the
//! firewalled-source PUSH relay is not modelled (the study's OpenFT
//! population is dominated by publicly reachable hosts).

use crate::http::{
    encode_request, encode_response_err, encode_response_ok, RequestReader, ResponseReader,
};
use crate::packet::{
    encode_packet, AddShare, Child, Command, NodeEntry, NodeInfo, NodeList, PacketReader, Search,
    SearchResult, Session, Version, CLASS_SEARCH, CLASS_USER,
};
use p2pmal_corpus::{ContentRef, HostLibrary, NameRecord};
use p2pmal_gnutella::servent::SharedWorld;
use p2pmal_hashes::Md5Digest;
use p2pmal_netsim::{
    telemetry_span as span, App, ConnId, Ctx, Direction, EventBody, EventCategory, HostAddr,
    SimDuration, SimTime, SpanCtx, Subsystem, VecMap,
};
use rand::RngCore;

/// Timer tokens.
const TIMER_MAINTENANCE: u64 = 0;
const TIMER_AUTO_QUERY: u64 = 1;
const TIMER_DL_BASE: u64 = 1 << 32;

/// Node tunables. Defaults mirror a giFT 0.11 deployment.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Class bitmask ([`CLASS_USER`], [`CLASS_SEARCH`],
    /// [`crate::packet::CLASS_INDEX`]).
    pub klass: u16,
    pub alias: String,
    pub port: u16,
    /// Sessions to maintain with SEARCH-class nodes.
    pub target_sessions: usize,
    /// Parents to register shares with (USER nodes).
    pub target_parents: usize,
    /// Children a SEARCH node accepts.
    pub max_children: usize,
    /// `Arc`-shared across the population; see `ServentConfig::bootstrap`.
    pub bootstrap: std::sync::Arc<[HostAddr]>,
    /// Result cap per answered search.
    pub max_results: usize,
    /// Ambient query interval (user behaviour), if any.
    pub auto_query: Option<SimDuration>,
    pub collect_events: bool,
    pub max_download_bytes: usize,
    pub download_timeout: SimDuration,
    pub tick: SimDuration,
}

impl FtConfig {
    pub fn user() -> Self {
        FtConfig {
            klass: CLASS_USER,
            alias: "user".into(),
            port: 1215,
            target_sessions: 3,
            target_parents: 2,
            max_children: 0,
            bootstrap: std::sync::Arc::from([]),
            max_results: 64,
            auto_query: None,
            collect_events: false,
            max_download_bytes: 64 << 20,
            download_timeout: SimDuration::from_secs(120),
            tick: SimDuration::from_secs(10),
        }
    }

    pub fn search_node() -> Self {
        FtConfig {
            klass: CLASS_USER | CLASS_SEARCH,
            alias: "search".into(),
            target_sessions: 4,
            max_children: 60,
            ..Self::user()
        }
    }

    pub fn with_bootstrap(mut self, hosts: impl Into<std::sync::Arc<[HostAddr]>>) -> Self {
        self.bootstrap = hosts.into();
        self
    }
}

/// Download failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtDownloadError {
    ConnectFailed,
    Timeout,
    Http(u16),
    Protocol(String),
}

/// Node events for instrumented owners.
#[derive(Debug, Clone)]
pub enum FtEvent {
    /// An OpenFT session reached the established state.
    SessionUp {
        conn: ConnId,
        info: NodeInfo,
    },
    SessionDown {
        conn: ConnId,
    },
    /// A result for one of our searches. `from` is the routable address of
    /// the SEARCH node that answered (the session peer) — provenance
    /// consumers derive the `query_matched` span id from it.
    SearchResult {
        at: SimTime,
        from: HostAddr,
        result: SearchResult,
    },
    /// The queried node finished streaming results for `id`.
    SearchEnd {
        at: SimTime,
        id: u32,
    },
    DownloadDone {
        at: SimTime,
        id: u64,
        result: Result<Vec<u8>, FtDownloadError>,
    },
}

/// Counters for benches and experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct FtStats {
    pub sessions_up: u64,
    pub searches_sent: u64,
    pub searches_answered: u64,
    pub results_sent: u64,
    pub results_received: u64,
    pub shares_registered: u64,
    pub shares_indexed: u64,
    pub uploads_served: u64,
    pub downloads_ok: u64,
    pub downloads_failed: u64,
    pub bad_packets: u64,
}

/// One share registered by a child, denormalized for fast answering.
#[derive(Debug, Clone)]
struct IndexedShare {
    owner: ConnId,
    host: HostAddr,
    http_port: u16,
    md5: Md5Digest,
    size: u32,
    /// Arena record from the world's [`p2pmal_corpus::NameInterner`]:
    /// thousands of children re-register the same catalog names, so each
    /// distinct name's text, lowered copy and match fingerprint live once
    /// per world and every index row is a single `Arc`.
    rec: std::sync::Arc<NameRecord>,
}

struct PeerState {
    reader: PacketReader,
    info: Option<NodeInfo>,
    session: bool,
    /// Remote's observed routable address (what we dial for transfers).
    peer_addr: HostAddr,
    /// They accepted us as a child (we registered shares there).
    parent: bool,
    /// We accepted them as a child.
    child: bool,
    outbound: bool,
}

struct DlState {
    id: u64,
    md5: Md5Digest,
    reader: ResponseReader,
    connected: bool,
}

enum ConnKind {
    /// Inbound, protocol unknown; carries the observed remote address.
    Sniff(Vec<u8>, HostAddr),
    Peer(PeerState),
    Download(DlState),
    Upload(RequestReader),
    Dead,
}

/// An OpenFT node.
pub struct FtNode {
    config: FtConfig,
    world: SharedWorld,
    library: HostLibrary,
    conns: VecMap<ConnId, ConnKind>,
    /// Discovered nodes (SEARCH/INDEX classes are the useful ones).
    known: Vec<NodeEntry>,
    /// Child-registered shares (SEARCH nodes).
    index: Vec<IndexedShare>,
    next_search: u32,
    next_download: u64,
    events: Vec<FtEvent>,
    stats: FtStats,
}

impl FtNode {
    pub fn new(config: FtConfig, world: SharedWorld, mut library: HostLibrary) -> Self {
        library.set_interner(world.names.clone());
        FtNode {
            config,
            world,
            library,
            conns: VecMap::new(),
            known: Vec::new(),
            index: Vec::new(),
            next_search: 1,
            next_download: 1,
            events: Vec::new(),
            stats: FtStats::default(),
        }
    }

    pub fn config(&self) -> &FtConfig {
        &self.config
    }

    pub fn stats(&self) -> FtStats {
        self.stats
    }

    pub fn library(&self) -> &HostLibrary {
        &self.library
    }

    /// The shared content world this node lives in.
    pub fn world(&self) -> &SharedWorld {
        &self.world
    }

    /// Number of shares currently indexed for children (SEARCH nodes).
    pub fn indexed_shares(&self) -> usize {
        self.index.len()
    }

    /// Established sessions.
    pub fn session_count(&self) -> usize {
        self.conns
            .values()
            .filter(|k| matches!(k, ConnKind::Peer(p) if p.session))
            .count()
    }

    /// Parents that accepted our registration.
    pub fn parent_count(&self) -> usize {
        self.conns
            .values()
            .filter(|k| matches!(k, ConnKind::Peer(p) if p.parent))
            .count()
    }

    pub fn drain_events(&mut self) -> Vec<FtEvent> {
        std::mem::take(&mut self.events)
    }

    /// Deterministic deep-heap estimate (see `App::memory_estimate`):
    /// container storage plus the child-share index a SEARCH node carries.
    fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut b = size_of::<Self>() as u64;
        b += self.conns.heap_bytes();
        b += (self.known.capacity() * size_of::<NodeEntry>()) as u64;
        b += (self.index.capacity() * size_of::<IndexedShare>()) as u64;
        // config.bootstrap is Arc-shared across the population: not charged
        // per node.
        b += (self.events.capacity() * size_of::<FtEvent>()) as u64;
        b += self.library.heap_bytes();
        b
    }

    /// Issues a search to every connected SEARCH session; returns the id.
    pub fn search(&mut self, ctx: &mut Ctx<'_>, query: &str) -> u32 {
        let id = self.next_search;
        self.next_search += 1;
        // Trace root. OpenFT search ids are only unique per origin, so the
        // trace id mixes in our routable address — the same pair an
        // answering SEARCH node sees as (session peer, id).
        if ctx.telemetry_on(EventCategory::Query) {
            let origin = ctx.external_addr();
            let trace = span::trace_from_search(origin.ip, origin.port, id);
            ctx.emit_spanned(
                EventBody::QueryIssued {
                    text: query.to_string(),
                    seq: self.stats.searches_sent,
                },
                SpanCtx::root(trace, span::span_root(trace)),
            );
        }
        let pkt = Search::Request {
            id,
            query: query.to_string(),
        }
        .encode();
        let mut wire = Vec::new();
        encode_packet(Command::Search, &pkt, &mut wire);
        let mut targets: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, k)| {
                matches!(k, ConnKind::Peer(p) if p.session
                    && p.info.as_ref().is_some_and(|i| i.is_search()))
            })
            .map(|(&c, _)| c)
            .collect();
        // VecMap iteration is already key-sorted; the sort stays as a
        // zero-cost guard on the run-to-run sequencing invariant.
        targets.sort_unstable();
        for t in &targets {
            ctx.send(*t, &wire);
        }
        self.stats.searches_sent += 1;
        id
    }

    /// Fetches `md5` from `addr` over HTTP; completion arrives as
    /// [`FtEvent::DownloadDone`].
    pub fn begin_download(&mut self, ctx: &mut Ctx<'_>, addr: HostAddr, md5: Md5Digest) -> u64 {
        let id = self.next_download;
        self.next_download += 1;
        let conn = ctx.connect(addr);
        self.conns.insert(
            conn,
            ConnKind::Download(DlState {
                id,
                md5,
                reader: ResponseReader::new(self.config.max_download_bytes),
                connected: false,
            }),
        );
        ctx.set_timer(self.config.download_timeout, TIMER_DL_BASE | id);
        id
    }

    // -- internals -----------------------------------------------------------

    fn emit(&mut self, ev: FtEvent) {
        if self.config.collect_events {
            self.events.push(ev);
        }
    }

    fn node_info(&self) -> NodeInfo {
        NodeInfo {
            klass: self.config.klass,
            port: self.config.port,
            http_port: self.config.port,
            alias: self.config.alias.as_str().into(),
        }
    }

    fn add_known(&mut self, e: NodeEntry) {
        if e.klass & (CLASS_SEARCH | crate::packet::CLASS_INDEX) == 0 {
            return; // only supernodes are worth remembering
        }
        if !self.known.iter().any(|k| k.ip == e.ip && k.port == e.port) {
            self.known.push(e);
            if self.known.len() > 500 {
                self.known.remove(0);
            }
        }
    }

    fn maintain(&mut self, ctx: &mut Ctx<'_>) {
        let have = self
            .conns
            .values()
            .filter(|k| matches!(k, ConnKind::Peer(p) if p.outbound))
            .count();
        if have >= self.config.target_sessions {
            return;
        }
        let mut candidates: Vec<HostAddr> = self
            .known
            .iter()
            .map(|e| HostAddr::new(e.ip, e.port))
            .chain(self.config.bootstrap.iter().copied())
            .collect();
        let me = HostAddr::new(ctx.external_addr().ip, self.config.port);
        // Never dial ourselves or a node we already hold a connection to.
        let existing: std::collections::HashSet<HostAddr> = self
            .conns
            .values()
            .filter_map(|k| match k {
                ConnKind::Peer(p) if p.outbound => Some(p.peer_addr),
                _ => None,
            })
            .collect();
        candidates.retain(|&c| c != me && !existing.contains(&c));
        candidates.sort();
        candidates.dedup();
        let mut dialed = 0;
        while have + dialed < self.config.target_sessions && !candidates.is_empty() {
            let i = (ctx.rng().next_u64() % candidates.len() as u64) as usize;
            let target = candidates.swap_remove(i);
            let conn = ctx.connect(target);
            self.conns.insert(
                conn,
                ConnKind::Peer(PeerState {
                    reader: PacketReader::new(),
                    info: None,
                    session: false,
                    peer_addr: target,
                    parent: false,
                    child: false,
                    outbound: true,
                }),
            );
            dialed += 1;
        }
    }

    fn send_packet(&self, ctx: &mut Ctx<'_>, conn: ConnId, cmd: Command, payload: &[u8]) {
        let mut wire = Vec::new();
        encode_packet(cmd, payload, &mut wire);
        ctx.send(conn, &wire);
    }

    /// Registers our library with a freshly accepted parent.
    fn register_shares(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let mut wires = Vec::new();
        for f in self.library.files() {
            let md5 = self.world.store.declared_md5(f.content);
            let add = AddShare {
                md5,
                size: f.size.min(u32::MAX as u64) as u32,
                path: format!("/shared/{}", f.name),
            };
            let mut wire = Vec::new();
            encode_packet(Command::AddShare, &add.encode(), &mut wire);
            wires.push(wire);
            self.stats.shares_registered += 1;
        }
        for w in wires {
            ctx.send(conn, &w);
        }
    }

    fn pump_peer(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        loop {
            let (cmd, payload) = {
                let Some(ConnKind::Peer(p)) = self.conns.get_mut(&conn) else {
                    return;
                };
                match p.reader.next_packet() {
                    Ok(Some(pkt)) => pkt,
                    Ok(None) => return,
                    Err(_) => {
                        self.stats.bad_packets += 1;
                        self.drop_conn(ctx, conn);
                        return;
                    }
                }
            };
            self.handle_packet(ctx, conn, cmd, &payload);
        }
    }

    fn handle_packet(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, cmd: Command, payload: &[u8]) {
        match cmd {
            Command::Version => {
                if Version::parse(payload).is_err() {
                    self.stats.bad_packets += 1;
                    self.drop_conn(ctx, conn);
                }
            }
            Command::NodeInfo => {
                let Ok(info) = NodeInfo::parse(payload) else {
                    self.stats.bad_packets += 1;
                    return;
                };
                if let Some(ConnKind::Peer(p)) = self.conns.get_mut(&conn) {
                    let entry = NodeEntry {
                        ip: p.peer_addr.ip,
                        port: info.port,
                        klass: info.klass,
                    };
                    // Dedup the alias through the world interner: every
                    // session with the same node (and the stock "user" /
                    // "search" aliases network-wide) would otherwise hold
                    // its own copy in routing state.
                    let mut info = info;
                    info.alias = self.world.names.intern(&info.alias);
                    p.info = Some(info);
                    self.add_known(entry);
                }
            }
            Command::NodeList => {
                let Ok(list) = NodeList::parse(payload) else {
                    self.stats.bad_packets += 1;
                    return;
                };
                match list {
                    NodeList::Request => {
                        let entries: Vec<NodeEntry> =
                            self.known.iter().rev().take(16).copied().collect();
                        self.send_packet(
                            ctx,
                            conn,
                            Command::NodeList,
                            &NodeList::Response(entries).encode(),
                        );
                    }
                    NodeList::Response(entries) => {
                        for e in entries {
                            self.add_known(e);
                        }
                    }
                }
            }
            Command::NodeCap | Command::Stats | Command::ModShare | Command::Browse => {
                // Accepted and ignored: present for wire compatibility.
            }
            Command::Ping => {
                if payload.is_empty() {
                    self.send_packet(ctx, conn, Command::Ping, &[0, 1]);
                }
            }
            Command::Session => {
                let Ok(sess) = Session::parse(payload) else {
                    self.stats.bad_packets += 1;
                    return;
                };
                match sess {
                    Session::Request => {
                        self.send_packet(
                            ctx,
                            conn,
                            Command::Session,
                            &Session::Response { accepted: true }.encode(),
                        );
                        self.establish_session(ctx, conn);
                    }
                    Session::Response { accepted } => {
                        if accepted {
                            self.establish_session(ctx, conn);
                        } else {
                            self.drop_conn(ctx, conn);
                        }
                    }
                }
            }
            Command::Child => {
                let Ok(child) = Child::parse(payload) else {
                    self.stats.bad_packets += 1;
                    return;
                };
                match child {
                    Child::Request => {
                        let accept = self.config.klass & CLASS_SEARCH != 0
                            && self
                                .conns
                                .values()
                                .filter(|k| matches!(k, ConnKind::Peer(p) if p.child))
                                .count()
                                < self.config.max_children;
                        if accept {
                            if let Some(ConnKind::Peer(p)) = self.conns.get_mut(&conn) {
                                p.child = true;
                            }
                        }
                        self.send_packet(
                            ctx,
                            conn,
                            Command::Child,
                            &Child::Response { accepted: accept }.encode(),
                        );
                    }
                    Child::Response { accepted } => {
                        if accepted {
                            if let Some(ConnKind::Peer(p)) = self.conns.get_mut(&conn) {
                                p.parent = true;
                            }
                            self.register_shares(ctx, conn);
                        }
                    }
                }
            }
            Command::AddShare => {
                let Ok(add) = AddShare::parse(payload) else {
                    self.stats.bad_packets += 1;
                    return;
                };
                let share = {
                    let Some(ConnKind::Peer(p)) = self.conns.get(&conn) else {
                        return;
                    };
                    if !p.child {
                        return; // only accepted children may register
                    }
                    let (port, http_port) = p
                        .info
                        .as_ref()
                        .map(|i| (i.port, i.http_port))
                        .unwrap_or((p.peer_addr.port, p.peer_addr.port));
                    let rec = self
                        .world
                        .names
                        .intern_record(add.path.rsplit('/').next().unwrap_or(&add.path));
                    IndexedShare {
                        owner: conn,
                        host: HostAddr::new(p.peer_addr.ip, port),
                        http_port,
                        md5: add.md5,
                        size: add.size,
                        rec,
                    }
                };
                self.index.push(share);
                self.stats.shares_indexed += 1;
            }
            Command::RemShare => {
                let Ok(rem) = crate::packet::RemShare::parse(payload) else {
                    self.stats.bad_packets += 1;
                    return;
                };
                self.index
                    .retain(|s| !(s.owner == conn && s.md5 == rem.md5));
            }
            Command::Search => {
                let Ok(search) = Search::parse(payload) else {
                    self.stats.bad_packets += 1;
                    return;
                };
                match search {
                    Search::Request { id, query } => self.answer_search(ctx, conn, id, &query),
                    Search::Result(result) => {
                        self.stats.results_received += 1;
                        let at = ctx.now();
                        let from = match self.conns.get(&conn) {
                            Some(ConnKind::Peer(p)) => p.peer_addr,
                            _ => HostAddr::new(std::net::Ipv4Addr::UNSPECIFIED, 0),
                        };
                        self.emit(FtEvent::SearchResult { at, from, result });
                    }
                    Search::End { id } => {
                        let at = ctx.now();
                        self.emit(FtEvent::SearchEnd { at, id });
                    }
                }
            }
        }
    }

    fn establish_session(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let info = {
            let Some(ConnKind::Peer(p)) = self.conns.get_mut(&conn) else {
                return;
            };
            if p.session {
                return;
            }
            p.session = true;
            p.info.clone()
        };
        self.stats.sessions_up += 1;
        if let Some(info) = info.clone() {
            self.emit(FtEvent::SessionUp { conn, info });
        }
        // Discover more of the network.
        self.send_packet(ctx, conn, Command::NodeList, &NodeList::Request.encode());
        // Become a child of SEARCH-class peers until we have enough parents.
        let peer_is_search = info.as_ref().is_some_and(|i| i.is_search());
        if peer_is_search
            && !self.library.is_empty()
            && self.parent_count() < self.config.target_parents
        {
            self.send_packet(ctx, conn, Command::Child, &Child::Request.encode());
        }
    }

    /// Answers a search from the child-share index plus our own library.
    fn answer_search(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, id: u32, query: &str) {
        self.stats.searches_answered += 1;
        // Tokenized/fingerprinted once per distinct text, world-wide.
        let compiled = self.world.compile_query(query);
        let mut results = Vec::new();
        if !compiled.is_empty() {
            ctx.time(Subsystem::QueryMatch, || {
                for s in &self.index {
                    if results.len() >= self.config.max_results {
                        break;
                    }
                    if compiled.matches_meta(s.rec.lower(), s.rec.fp()) {
                        results.push(SearchResult {
                            id,
                            host: s.host.ip,
                            port: s.host.port,
                            http_port: s.http_port,
                            avail: 1,
                            md5: s.md5,
                            size: s.size,
                            filename: s.rec.name().to_string(),
                        });
                    }
                }
            });
            // Our own shares answer too (SEARCH nodes are also users).
            let own = ctx.time(Subsystem::QueryMatch, || {
                self.library
                    .respond_compiled(&compiled, self.config.max_results)
            });
            for f in own {
                if results.len() >= self.config.max_results {
                    break;
                }
                results.push(SearchResult {
                    id,
                    host: ctx.external_addr().ip,
                    port: self.config.port,
                    http_port: self.config.port,
                    avail: 1,
                    md5: self.world.store.declared_md5(f.content),
                    size: f.size.min(u32::MAX as u64) as u32,
                    filename: f.name.to_string(),
                });
            }
        }
        self.stats.results_sent += results.len() as u64;
        if !results.is_empty() && ctx.telemetry_on(EventCategory::Query) {
            // The session peer *is* the search origin (OpenFT does not
            // forward searches), so (peer addr, id) rebuilds the trace id
            // the origin rooted in `search`.
            let origin = match self.conns.get(&conn) {
                Some(ConnKind::Peer(p)) => p.peer_addr,
                _ => HostAddr::new(std::net::Ipv4Addr::UNSPECIFIED, 0),
            };
            let me = ctx.external_addr();
            let trace = span::trace_from_search(origin.ip, origin.port, id);
            ctx.emit_spanned(
                EventBody::QueryMatched {
                    text: query.to_string(),
                    results: results.len() as u64,
                    hops: 1,
                },
                SpanCtx::child(
                    trace,
                    span::span_match_addr(trace, me.ip, me.port),
                    span::span_root(trace),
                ),
            );
        }
        for r in results {
            self.send_packet(ctx, conn, Command::Search, &Search::Result(r).encode());
        }
        self.send_packet(ctx, conn, Command::Search, &Search::End { id }.encode());
    }

    /// Serves an upload request: resolve the MD5 against our library.
    fn serve_upload(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, md5: Md5Digest) {
        let content: Option<ContentRef> = self
            .library
            .files()
            .iter()
            .find(|f| self.world.store.declared_md5(f.content) == md5)
            .map(|f| f.content);
        match content {
            Some(r) => {
                self.stats.uploads_served += 1;
                let body = self
                    .world
                    .store
                    .payload(r, &self.world.catalog, &self.world.roster);
                let mut wire = encode_response_ok(body.len());
                wire.extend_from_slice(&body);
                ctx.send(conn, &wire);
            }
            None => ctx.send(conn, &encode_response_err(404, "Not Found")),
        }
    }

    fn finish_download(
        &mut self,
        ctx: &mut Ctx<'_>,
        conn: Option<ConnId>,
        id: u64,
        result: Result<Vec<u8>, FtDownloadError>,
    ) {
        if let Some(c) = conn {
            self.conns.insert(c, ConnKind::Dead);
            ctx.close(c);
        }
        match &result {
            Ok(_) => self.stats.downloads_ok += 1,
            Err(_) => self.stats.downloads_failed += 1,
        }
        let at = ctx.now();
        self.emit(FtEvent::DownloadDone { at, id, result });
    }

    fn drop_conn(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        match self.conns.insert(conn, ConnKind::Dead) {
            Some(ConnKind::Download(d)) => {
                self.finish_download(
                    ctx,
                    Some(conn),
                    d.id,
                    Err(FtDownloadError::Protocol("dropped".into())),
                );
            }
            Some(ConnKind::Peer(p)) => {
                if p.child {
                    self.index.retain(|s| s.owner != conn);
                }
                self.emit(FtEvent::SessionDown { conn });
                ctx.close(conn);
            }
            _ => {
                ctx.close(conn);
            }
        }
    }

    fn sniff(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let (buf, peer) = {
            let Some(ConnKind::Sniff(buf, peer)) = self.conns.get_mut(&conn) else {
                return;
            };
            buf.extend_from_slice(data);
            if buf.is_empty() {
                return;
            }
            (std::mem::take(buf), *peer)
        };
        if buf[0] == b'G' || buf[0] == b'H' {
            let mut reader = RequestReader::new();
            reader.push(&buf);
            self.conns.insert(conn, ConnKind::Upload(reader));
            self.pump_upload(ctx, conn);
        } else {
            let mut p = PeerState {
                reader: PacketReader::new(),
                info: None,
                session: false,
                peer_addr: peer,
                parent: false,
                child: false,
                outbound: false,
            };
            p.reader.push(&buf);
            self.conns.insert(conn, ConnKind::Peer(p));
            // Introduce ourselves (the dialer already did on connect).
            self.send_packet(ctx, conn, Command::Version, &Version::CURRENT.encode());
            let info = self.node_info();
            self.send_packet(ctx, conn, Command::NodeInfo, &info.encode());
            self.pump_peer(ctx, conn);
        }
    }

    fn pump_upload(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let md5 = {
            let Some(ConnKind::Upload(reader)) = self.conns.get_mut(&conn) else {
                return;
            };
            match reader.request() {
                Ok(Some(m)) => m,
                Ok(None) => return,
                Err(_) => {
                    self.drop_conn(ctx, conn);
                    return;
                }
            }
        };
        self.serve_upload(ctx, conn, md5);
    }
}

impl App for FtNode {
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn memory_estimate(&self) -> u64 {
        self.heap_bytes()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let boot = self.config.bootstrap.clone();
        for &b in boot.iter() {
            self.add_known(NodeEntry {
                ip: b.ip,
                port: b.port,
                klass: CLASS_SEARCH,
            });
        }
        self.maintain(ctx);
        ctx.set_timer(self.config.tick, TIMER_MAINTENANCE);
        if let Some(iv) = self.config.auto_query {
            let jitter = SimDuration::from_micros(ctx.rng().next_u64() % iv.as_micros().max(1));
            ctx.set_timer(jitter, TIMER_AUTO_QUERY);
        }
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, dir: Direction, peer: HostAddr) {
        match dir {
            Direction::Inbound => {
                self.conns.insert(conn, ConnKind::Sniff(Vec::new(), peer));
            }
            Direction::Outbound => match self.conns.get(&conn) {
                Some(ConnKind::Peer(_)) => {
                    self.send_packet(ctx, conn, Command::Version, &Version::CURRENT.encode());
                    let info = self.node_info();
                    self.send_packet(ctx, conn, Command::NodeInfo, &info.encode());
                    self.send_packet(ctx, conn, Command::Session, &Session::Request.encode());
                }
                Some(ConnKind::Download(d)) => {
                    let md5 = d.md5;
                    if let Some(ConnKind::Download(d)) = self.conns.get_mut(&conn) {
                        d.connected = true;
                    }
                    ctx.send(conn, &encode_request(&md5));
                }
                _ => {}
            },
        }
    }

    fn on_connect_failed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        match self.conns.remove(&conn) {
            Some(ConnKind::Download(d)) => {
                self.finish_download(ctx, None, d.id, Err(FtDownloadError::ConnectFailed));
            }
            Some(ConnKind::Peer(_)) => self.maintain(ctx),
            _ => {}
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        enum R {
            Sniff,
            Peer,
            Download,
            Upload,
            Dead,
        }
        let r = match self.conns.get(&conn) {
            Some(ConnKind::Sniff(..)) => R::Sniff,
            Some(ConnKind::Peer(_)) => R::Peer,
            Some(ConnKind::Download(_)) => R::Download,
            Some(ConnKind::Upload(_)) => R::Upload,
            Some(ConnKind::Dead) | None => R::Dead,
        };
        match r {
            R::Sniff => self.sniff(ctx, conn, data),
            R::Peer => {
                if let Some(ConnKind::Peer(p)) = self.conns.get_mut(&conn) {
                    p.reader.push(data);
                }
                self.pump_peer(ctx, conn);
            }
            R::Download => {
                let outcome = {
                    let Some(ConnKind::Download(d)) = self.conns.get_mut(&conn) else {
                        return;
                    };
                    d.reader.push(data);
                    match d.reader.response() {
                        Ok(Some((200, body))) => Some((d.id, Ok(body))),
                        Ok(Some((status, _))) => Some((d.id, Err(FtDownloadError::Http(status)))),
                        Ok(None) => None,
                        Err(e) => Some((d.id, Err(FtDownloadError::Protocol(e.to_string())))),
                    }
                };
                if let Some((id, result)) = outcome {
                    self.finish_download(ctx, Some(conn), id, result);
                }
            }
            R::Upload => {
                if let Some(ConnKind::Upload(reader)) = self.conns.get_mut(&conn) {
                    reader.push(data);
                }
                self.pump_upload(ctx, conn);
            }
            R::Dead => {}
        }
    }

    fn on_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        match self.conns.remove(&conn) {
            Some(ConnKind::Peer(p)) => {
                if p.child {
                    self.index.retain(|s| s.owner != conn);
                }
                self.emit(FtEvent::SessionDown { conn });
                self.maintain(ctx);
            }
            Some(ConnKind::Download(d)) => {
                self.finish_download(
                    ctx,
                    None,
                    d.id,
                    Err(FtDownloadError::Protocol("closed mid-transfer".into())),
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_MAINTENANCE {
            self.maintain(ctx);
            // Adaptive cadence: slow the idle tick 30x once sessions are
            // up (closures re-trigger maintenance directly).
            let stable = self.session_count() >= self.config.target_sessions / 2
                && self.session_count() >= 1;
            let next = if stable {
                SimDuration::from_micros(self.config.tick.as_micros() * 30)
            } else {
                self.config.tick
            };
            ctx.set_timer(next, TIMER_MAINTENANCE);
        } else if token == TIMER_AUTO_QUERY {
            if let Some(iv) = self.config.auto_query {
                let q = self.world.catalog.sample_query(ctx.rng());
                self.search(ctx, &q);
                ctx.set_timer(iv, TIMER_AUTO_QUERY);
            }
        } else if token & TIMER_DL_BASE != 0 {
            let id = token & (TIMER_DL_BASE - 1);
            let conn = self.conns.iter().find_map(|(&c, k)| match k {
                ConnKind::Download(d) if d.id == id => Some(c),
                _ => None,
            });
            if let Some(c) = conn {
                self.finish_download(ctx, Some(c), id, Err(FtDownloadError::Timeout));
            }
        }
    }
}

#[cfg(test)]
mod tests;
