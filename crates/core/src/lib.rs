//! End-to-end facade for the reproduction of *"A study of malware in
//! peer-to-peer networks"* (Kalafut, Acharya, Gupta — IMC 2006).
//!
//! The original study instrumented LimeWire (Gnutella) and giFT (OpenFT)
//! against the live 2006 networks. This workspace rebuilds everything from
//! scratch — protocol stacks, a deterministic network simulator, a content
//! ecosystem with era-accurate malware behaviours, a signature scanner and
//! the measurement pipeline — and this crate ties it together:
//!
//! * [`scenario`] — calibrated population presets
//!   ([`LimewireScenario`], [`OpenFtScenario`]) with `paper_scale()` and
//!   `quick()` variants;
//! * [`study`] — the [`Study`] builder and [`StudyReport`] with every
//!   reconstructed table/figure plus paper-vs-measured comparisons.
//!
//! # Quickstart
//!
//! ```no_run
//! use p2pmal_core::Study;
//!
//! let report = Study::quick(42).run();
//! println!("{}", report.render_markdown());
//! assert!(report.summaries()[0].responses > 0);
//! ```

pub mod mega;
pub mod scenario;
pub mod study;

/// The structured telemetry layer (event journal, metrics registry, trace
/// sinks), re-exported so harnesses depending on `p2pmal-core` can
/// configure sinks and read histograms without naming `p2pmal-netsim`.
pub use p2pmal_netsim::telemetry;

pub use mega::{MegaRun, MegaScenario};
pub use scenario::{fault_profile, InfectionSpec, LimewireScenario, NetworkRun, OpenFtScenario};
pub use study::{FilterRow, Study, StudyReport};
