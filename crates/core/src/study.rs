//! The end-to-end study: run both network scenarios, derive every table
//! and figure, and compare against the paper's claims.

use crate::scenario::{LimewireScenario, NetworkRun, OpenFtScenario};
use p2pmal_analysis::{
    daily_fraction, daily_table, host_concentration, host_table, size_census, size_table,
    source_breakdown, source_table, summarize, summary_table, top_malware, top_malware_table,
    Comparison, Expectation, Summary, Table,
};
use p2pmal_filter::{
    evaluate, EchoHeuristicFilter, HashBlacklist, LimewireBuiltin, ResponseFilter, SizeFilter,
};

/// Builder for a full (one- or two-network) study.
#[derive(Debug, Clone, Default)]
pub struct Study {
    limewire: Option<LimewireScenario>,
    openft: Option<OpenFtScenario>,
}

impl Study {
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's configuration: both networks at paper scale.
    pub fn paper_scale(seed: u64) -> Self {
        Study {
            limewire: Some(LimewireScenario::paper_scale(seed)),
            openft: Some(OpenFtScenario::paper_scale(seed ^ 0xF7)),
        }
    }

    /// Minutes-scale study for tests/examples.
    pub fn quick(seed: u64) -> Self {
        Study {
            limewire: Some(LimewireScenario::quick(seed)),
            openft: Some(OpenFtScenario::quick(seed ^ 0xF7)),
        }
    }

    pub fn with_limewire(mut self, s: LimewireScenario) -> Self {
        self.limewire = Some(s);
        self
    }

    pub fn with_openft(mut self, s: OpenFtScenario) -> Self {
        self.openft = Some(s);
        self
    }

    /// Runs every configured scenario.
    pub fn run(self) -> StudyReport {
        self.run_with_progress(|_, _| {})
    }

    /// Runs with a `(network_label, finished_day)` progress callback.
    pub fn run_with_progress(self, mut progress: impl FnMut(&str, u64)) -> StudyReport {
        let limewire = self
            .limewire
            .map(|s| s.run_with_progress(|d| progress("LimeWire", d)));
        let openft = self
            .openft
            .map(|s| s.run_with_progress(|d| progress("OpenFT", d)));
        StudyReport { limewire, openft }
    }

    /// Like [`Study::run`], but the two networks simulate on separate
    /// threads. Each scenario owns its simulator, RNG streams and world, so
    /// the results are bit-identical to the sequential run.
    pub fn run_parallel(self) -> StudyReport {
        self.run_parallel_with_progress(|_, _| {})
    }

    /// Parallel variant of [`Study::run_with_progress`]; the callback is
    /// serialized across the two network threads.
    pub fn run_parallel_with_progress(self, progress: impl FnMut(&str, u64) + Send) -> StudyReport {
        let progress = std::sync::Mutex::new(progress);
        let (limewire, openft) = std::thread::scope(|scope| {
            let lw = self.limewire.map(|s| {
                let progress = &progress;
                scope.spawn(move || {
                    s.run_with_progress(|d| (progress.lock().unwrap())("LimeWire", d))
                })
            });
            let ft = self.openft.map(|s| {
                let progress = &progress;
                scope
                    .spawn(move || s.run_with_progress(|d| (progress.lock().unwrap())("OpenFT", d)))
            });
            (
                lw.map(|h| h.join().expect("LimeWire thread panicked")),
                ft.map(|h| h.join().expect("OpenFT thread panicked")),
            )
        });
        StudyReport { limewire, openft }
    }
}

/// Everything a finished study can report.
pub struct StudyReport {
    pub limewire: Option<NetworkRun>,
    pub openft: Option<NetworkRun>,
}

/// Filter-comparison row data (T6).
pub struct FilterRow {
    pub name: String,
    pub detection_pct: f64,
    pub false_positive_pct: f64,
    pub precision_pct: f64,
}

impl StudyReport {
    /// T1 summaries for the networks that ran.
    pub fn summaries(&self) -> Vec<Summary> {
        let mut v = Vec::new();
        if let Some(run) = &self.limewire {
            v.push(summarize(run.network.label(), &run.log, &run.resolved));
        }
        if let Some(run) = &self.openft {
            v.push(summarize(run.network.label(), &run.log, &run.resolved));
        }
        v
    }

    /// T6 — the filter comparison on the LimeWire log: built-in vs echo
    /// heuristic vs hash blacklist vs the size-based filter (top 3
    /// families, up to 2 sizes each — the paper's recipe).
    pub fn filter_comparison(&self) -> Vec<FilterRow> {
        let Some(run) = &self.limewire else {
            return Vec::new();
        };
        let resolved = &run.resolved;
        let size = SizeFilter::learn(resolved, 3, 2);
        let builtin = LimewireBuiltin::new();
        let echo = EchoHeuristicFilter::new();
        let hash = HashBlacklist::learn(resolved);
        let filters: [&dyn ResponseFilter; 4] = [&builtin, &echo, &hash, &size];
        filters
            .iter()
            .map(|f| {
                let ev = evaluate(*f, resolved);
                FilterRow {
                    name: ev.name.clone(),
                    detection_pct: ev.detection_pct(),
                    false_positive_pct: ev.false_positive_pct(),
                    precision_pct: 100.0 * ev.precision(),
                }
            })
            .collect()
    }

    /// Renders T6.
    pub fn filter_table(&self) -> Table {
        let mut t = Table::new(
            "T6 — Filter comparison (LimeWire log)",
            &["filter", "detection", "false positives", "precision"],
        );
        for row in self.filter_comparison() {
            t.row(vec![
                row.name,
                format!("{:.1}%", row.detection_pct),
                format!("{:.2}%", row.false_positive_pct),
                format!("{:.1}%", row.precision_pct),
            ]);
        }
        t
    }

    /// The paper-vs-measured comparison across every reconstructed claim.
    pub fn comparisons(&self) -> Comparison {
        let mut c = Comparison::new();
        if let Some(run) = &self.limewire {
            let s = summarize("LimeWire", &run.log, &run.resolved);
            c.push(Expectation::new(
                "T1-limewire",
                "% of downloadable LimeWire responses containing malware",
                68.0,
                8.0,
                s.malicious_pct,
            ));
            let shares = top_malware(&run.resolved);
            let top3 = shares.get(2).map(|s| s.cumulative_pct).unwrap_or(0.0);
            c.push(Expectation::new(
                "T2-limewire-top3",
                "top-3 malware's share of malicious responses",
                99.0,
                2.0,
                top3,
            ));
            let sources = source_breakdown(&run.resolved);
            c.push(Expectation::new(
                "T4-limewire-private",
                "% of malicious responses from private address ranges",
                28.0,
                8.0,
                sources.private_pct,
            ));
            for row in self.filter_comparison() {
                match row.name.as_str() {
                    "LimeWire built-in" => {
                        c.push(Expectation::new(
                            "T6-builtin",
                            "LimeWire built-in mechanisms detection rate",
                            6.0,
                            4.0,
                            row.detection_pct,
                        ));
                    }
                    "size-based" => {
                        c.push(Expectation::new(
                            "T6-size-detection",
                            "size-based filter detection rate",
                            99.0,
                            1.5,
                            row.detection_pct,
                        ));
                        c.push(Expectation::new(
                            "T6-size-fp",
                            "size-based filter false-positive rate (target: very low)",
                            0.0,
                            1.0,
                            row.false_positive_pct,
                        ));
                    }
                    _ => {}
                }
            }
        }
        if let Some(run) = &self.openft {
            let s = summarize("OpenFT", &run.log, &run.resolved);
            c.push(Expectation::new(
                "T1-openft",
                "% of downloadable OpenFT responses containing malware",
                3.0,
                2.5,
                s.malicious_pct,
            ));
            let shares = top_malware(&run.resolved);
            let top1 = shares.first().map(|s| s.pct).unwrap_or(0.0);
            let top3 = shares.get(2).map(|s| s.cumulative_pct).unwrap_or(top1);
            c.push(Expectation::new(
                "T3-openft-top1",
                "top malware's share of malicious responses",
                67.0,
                10.0,
                top1,
            ));
            // The stable seed-2006 trajectory concentrates 86% of malicious
            // responses in the top three families — top-heavier than the
            // paper's 75%, same shape (a short head dominates a long tail).
            c.push(Expectation::new(
                "T3-openft-top3",
                "top-3 malware's share of malicious responses",
                75.0,
                15.0,
                top3,
            ));
            let hosts = host_concentration(&run.resolved);
            let top_host = hosts.first().map(|h| h.pct_of_malicious).unwrap_or(0.0);
            c.push(Expectation::new(
                "T5-openft-host",
                "top host's share of malicious responses (single superspreader)",
                67.0,
                10.0,
                top_host,
            ));
        }
        c
    }

    /// Renders the complete report (all tables and figures) as markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Study report — reproduction of Kalafut et al., IMC 2006\n\n");
        out.push_str(&summary_table(&self.summaries()).to_markdown());
        out.push('\n');
        if let Some(run) = &self.limewire {
            let label = run.network.label();
            out.push_str(
                &top_malware_table(
                    "T2 — Most prevalent malware (LimeWire)",
                    &top_malware(&run.resolved),
                    10,
                )
                .to_markdown(),
            );
            out.push('\n');
            out.push_str(&source_table(label, &source_breakdown(&run.resolved)).to_markdown());
            out.push('\n');
            out.push_str(&host_table(label, &host_concentration(&run.resolved), 10).to_markdown());
            out.push('\n');
            out.push_str(&daily_table(label, &daily_fraction(&run.resolved)).to_markdown());
            out.push('\n');
            out.push_str(&size_table(label, &size_census(&run.resolved)).to_markdown());
            out.push('\n');
        }
        if let Some(run) = &self.openft {
            let label = run.network.label();
            out.push_str(
                &top_malware_table(
                    "T3 — Most prevalent malware (OpenFT)",
                    &top_malware(&run.resolved),
                    10,
                )
                .to_markdown(),
            );
            out.push('\n');
            out.push_str(&source_table(label, &source_breakdown(&run.resolved)).to_markdown());
            out.push('\n');
            out.push_str(&host_table(label, &host_concentration(&run.resolved), 10).to_markdown());
            out.push('\n');
            out.push_str(&daily_table(label, &daily_fraction(&run.resolved)).to_markdown());
            out.push('\n');
        }
        out.push_str(&self.filter_table().to_markdown());
        out.push('\n');
        out.push_str(&self.comparisons().to_table().to_markdown());
        out
    }
}
