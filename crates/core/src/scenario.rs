//! Calibrated scenario presets: the populations whose measured behaviour
//! reproduces the paper's numbers.
//!
//! Calibration logic (per-number provenance lives in DESIGN.md §4):
//!
//! * **LimeWire 68% / top-3 = 99% / 28% private.** Malicious downloadable
//!   responses are dominated by query-echo worms, each infected host
//!   answering *every* crawler query. With per-query weighted echo volume
//!   `W = padobot_hosts + 2·alcra_hosts + bagle_hosts` (Alcra answers per
//!   extension), the family shares are `padobot/W`, `2·alcra/W`, `bagle/W`
//!   and the private-source share is the NATed fraction of `W`. The default
//!   spec (11 Padobot / 5 NAT, 3 Alcra, 1 Bagle) gives 61% / 33% / 5.6%
//!   shares, 27.8% private, top-3 ≈ 99% (the static tail barely responds).
//!   The 68% headline then fixes the benign side: clean leaves and their
//!   library sizes are set so benign archive/executable responses run at
//!   roughly half the echo volume.
//! * **OpenFT 3% / top-1 = 67% from one host.** No echo worms; the dominant
//!   family lives on a single always-on superspreader sharing it under many
//!   popular bait titles, with a handful of minor infected users supplying
//!   the remaining third of malicious responses.

use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::{ContentStore, FamilyId, HostLibrary, Roster};
use p2pmal_crawler::{
    CrawlLog, FtCrawler, FtCrawlerConfig, GnutellaCrawler, GnutellaCrawlerConfig, Network,
    ResolvedResponse, RetryPolicy, ScanStats, WorkloadConfig, DEFAULT_SCAN_CACHE_ENTRIES,
};
use p2pmal_gnutella::servent::{Servent, ServentConfig, SharedWorld};
use p2pmal_netsim::{
    FaultPlan, HostAddr, NodeSpec, SchedulerKind, SimConfig, SimDuration, SimMetrics, SimTime,
    Simulator, TelemetryConfig,
};
use p2pmal_openft::node::{FtConfig, FtNode};
use p2pmal_scanner::Scanner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// How many hosts carry one malware family, and how many of them sit
/// behind NAT (advertising RFC 1918 addresses).
#[derive(Debug, Clone, Copy)]
pub struct InfectionSpec {
    pub family: FamilyId,
    pub hosts: usize,
    pub nat_hosts: usize,
}

impl InfectionSpec {
    pub fn new(family: u16, hosts: usize, nat_hosts: usize) -> Self {
        assert!(nat_hosts <= hosts);
        InfectionSpec {
            family: FamilyId(family),
            hosts,
            nat_hosts,
        }
    }
}

/// Named fault/resilience profile: the netsim [`FaultPlan`] paired with the
/// crawler [`RetryPolicy`] calibrated for it. These are the values behind
/// the `P2PMAL_FAULTS=none|mild|harsh` knob.
pub fn fault_profile(name: &str) -> Option<(FaultPlan, RetryPolicy)> {
    match name {
        "none" => Some((FaultPlan::none(), RetryPolicy::legacy())),
        "mild" => Some((FaultPlan::mild(), RetryPolicy::backoff(3, 30))),
        "harsh" => Some((FaultPlan::harsh(), RetryPolicy::backoff(4, 15))),
        _ => None,
    }
}

/// The result of running one network scenario.
pub struct NetworkRun {
    pub network: Network,
    pub log: CrawlLog,
    pub resolved: Vec<ResolvedResponse>,
    pub world: SharedWorld,
    pub sim_metrics: SimMetrics,
    /// Wall-clock time the simulation loop took (sum over the per-day
    /// `run_until` calls; excludes population setup and log extraction).
    pub wall: std::time::Duration,
    /// Shards the simulator ran with (1 = the serial reference engine).
    pub shards: usize,
    /// Cross-shard exchange window (microseconds; meaningful when
    /// `shards > 1`).
    pub shard_window_us: u64,
}

/// `P2PMAL_TRACE=1`: per-day progress line with scheduler and buffer-pool
/// health (queue depth + peak, pool hit rate, bytes recycled), plus the
/// scan-pipeline counters (bodies, cache hits/misses/evictions, distinct
/// payloads, bytes hashed) when a crawler snapshot is available.
///
/// Accepted `P2PMAL_TRACE` values (parsed by
/// `p2pmal_netsim::telemetry::parse_trace_level`): unset, empty, `0`,
/// `off`, `false`, `no` → off; `2` → per-day lines *plus* per-event
/// records on stderr; anything else (the historical `1`) → per-day lines.
///
/// Per-day crawler-side counters a trace line reports alongside the
/// simulator metrics.
struct DayCrawlStats {
    scan: ScanStats,
    retries: u64,
    retry_successes: u64,
    failures: u64,
}

impl DayCrawlStats {
    fn of(log: &CrawlLog) -> Self {
        DayCrawlStats {
            scan: log.scan,
            retries: log.retries_scheduled,
            retry_successes: log.retry_successes,
            failures: log.failures.total(),
        }
    }
}

fn trace_day(
    net: &str,
    day: u64,
    events: u64,
    delta: u64,
    wall_secs: f64,
    sim: &Simulator,
    crawl: Option<&DayCrawlStats>,
) {
    let m = sim.metrics();
    let scan_part = match crawl {
        Some(c) => {
            let s = &c.scan;
            format!(
                ", scan {} bodies / {} hits / {} misses / {} evict / {} distinct / {} KiB hashed",
                s.bodies,
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
                s.distinct_payloads,
                s.bytes_hashed / 1024,
            )
        }
        None => String::new(),
    };
    let fault_events = m.faults_chunks_dropped
        + m.faults_chunks_corrupted
        + m.faults_resets
        + m.faults_latency_spikes
        + m.faults_churn_downs;
    let fault_part = if fault_events > 0 {
        format!(
            ", faults {} drop / {} corrupt / {} reset / {} spike / {} down / {} up",
            m.faults_chunks_dropped,
            m.faults_chunks_corrupted,
            m.faults_resets,
            m.faults_latency_spikes,
            m.faults_churn_downs,
            m.faults_churn_ups,
        )
    } else {
        String::new()
    };
    let resilience_part = match crawl {
        Some(c) if c.retries + c.failures > 0 => format!(
            ", retries {} scheduled / {} recovered / {} terminal failures",
            c.retries, c.retry_successes, c.failures,
        ),
        _ => String::new(),
    };
    let timing_part = if m.timing.is_empty() {
        String::new()
    } else {
        format!(", timing {}", m.timing.render_compact())
    };
    eprintln!(
        "[trace] {net} day {day}: {events} events (+{delta}), {wall_secs:.1}s wall, \
         queue {} pending (peak {}), pool {} hits / {} misses / {} KiB recycled (free peak {}){scan_part}{fault_part}{resilience_part}{timing_part}",
        sim.pending_events(),
        m.queue_high_water,
        m.pool_hits,
        m.pool_misses,
        m.pool_recycled_bytes / 1024,
        m.pool_high_water,
    );
}

/// Clones the simulator metrics and fills in the counters the harness
/// observed through the crawl log (scan pipeline, download retries).
fn metrics_with_log(sim: &Simulator, log: &CrawlLog) -> SimMetrics {
    let mut m = sim.metrics().clone();
    let scan = log.scan;
    m.scan_bodies = scan.bodies;
    m.scan_bytes_hashed = scan.bytes_hashed;
    m.scan_cache_hits = scan.cache_hits;
    m.scan_cache_misses = scan.cache_misses;
    m.scan_cache_evictions = scan.cache_evictions;
    m.scan_distinct_payloads = scan.distinct_payloads;
    m.dl_retries = log.retries_scheduled;
    m.dl_retry_successes = log.retry_successes;
    m
}

fn make_world(seed: u64, catalog_cfg: &CatalogConfig, roster: Roster) -> SharedWorld {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0CA7_A106);
    let catalog = Catalog::generate(catalog_cfg, &mut rng);
    SharedWorld::new(
        Arc::new(catalog),
        Arc::new(roster),
        Arc::new(ContentStore::new(seed)),
    )
}

fn make_scanner(world: &SharedWorld) -> Arc<Scanner> {
    Arc::new(Scanner::new(
        world
            .roster
            .signature_db()
            .expect("roster db")
            .build()
            .expect("db compiles"),
    ))
}

/// A clean host's library: `files` popularity-sampled titles, one random
/// variant each.
pub(crate) fn clean_library(world: &SharedWorld, files: usize, rng: &mut StdRng) -> HostLibrary {
    let mut lib = HostLibrary::new();
    let mut seen = HashSet::new();
    let mut attempts = 0;
    while lib.len() < files && attempts < files * 10 {
        attempts += 1;
        let item = world.catalog.sample(rng);
        if seen.insert(item.id) {
            let variant = rng.gen_range(0..item.variants.len());
            lib.add_benign(item, variant);
        }
    }
    lib
}

// ---------------------------------------------------------------------------
// LimeWire scenario
// ---------------------------------------------------------------------------

/// Population and workload for the Gnutella/LimeWire measurement.
#[derive(Debug, Clone)]
pub struct LimewireScenario {
    pub seed: u64,
    /// Simulated collection length in days ("over a month of data").
    pub days: u64,
    pub ultrapeers: usize,
    pub clean_leaves: usize,
    /// Fraction of clean leaves behind NAT.
    pub clean_nat_fraction: f64,
    /// Benign files shared per clean leaf.
    pub files_per_leaf: usize,
    /// Per-family infected host counts.
    pub infections: Vec<InfectionSpec>,
    /// Benign files an infected host also shares.
    pub infected_benign_files: usize,
    pub catalog: CatalogConfig,
    pub workload: WorkloadConfig,
    /// Ambient query interval for clean leaves (None = silent population).
    pub ambient_query: Option<SimDuration>,
    /// Event scheduler (the heap is kept around for benchmarking).
    pub scheduler: SchedulerKind,
    /// Verdict-cache capacity for the crawler's scan pipeline (0 disables;
    /// outcomes are identical either way, only wall time changes).
    pub scan_cache_entries: usize,
    /// Scan-service worker threads (1 = inline sequential scanning). The
    /// presets read `P2PMAL_SCAN_THREADS`; any value produces byte-identical
    /// reports, only wall time changes.
    pub scan_threads: usize,
    /// Network fault injection ([`FaultPlan::none()`] by default, which is
    /// byte-identical to a fault-free simulator).
    pub faults: FaultPlan,
    /// Crawler download retry policy ([`RetryPolicy::legacy()`] by
    /// default: the historical one-immediate-fallback behavior).
    pub retry: RetryPolicy,
    /// Telemetry sinks and trace level. The presets read the
    /// `P2PMAL_JOURNAL` / `P2PMAL_TRACE` / `P2PMAL_JOURNAL_SAMPLE` env
    /// knobs; tests set this field programmatically. With everything off
    /// (the default when no knob is set) runs are byte-identical to a
    /// build without the telemetry layer.
    pub telemetry: TelemetryConfig,
    /// Simulation shards (see [`SimConfig::shards`]): 1 runs the serial
    /// reference engine; N ≥ 2 runs the parallel sharded engine, whose
    /// trajectory is deterministic and identical for every N ≥ 2 but
    /// distinct from the serial one. The presets read `P2PMAL_SHARDS`.
    pub shards: usize,
    /// Cross-shard exchange window in microseconds
    /// (`P2PMAL_SHARD_WINDOW_MS`).
    pub shard_window_us: u64,
}

impl LimewireScenario {
    /// The paper-scale run behind EXPERIMENTS.md.
    pub fn paper_scale(seed: u64) -> Self {
        LimewireScenario {
            seed,
            days: 35,
            ultrapeers: 12,
            clean_leaves: 280,
            clean_nat_fraction: 0.3,
            files_per_leaf: 34,
            infections: Self::default_infections(),
            infected_benign_files: 5,
            catalog: CatalogConfig {
                titles: 2500,
                ..Default::default()
            },
            workload: WorkloadConfig {
                base_interval_secs: 60,
                ..Default::default()
            },
            ambient_query: Some(SimDuration::from_hours(1)),
            scheduler: SchedulerKind::Calendar,
            scan_cache_entries: DEFAULT_SCAN_CACHE_ENTRIES,
            scan_threads: p2pmal_crawler::scan_threads_from_env(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::legacy(),
            telemetry: TelemetryConfig::from_env(),
            shards: SimConfig::shards_from_env().0,
            shard_window_us: SimConfig::shards_from_env().1,
        }
    }

    /// Applies a fault/resilience profile (see [`fault_profile`]).
    pub fn with_faults(mut self, faults: FaultPlan, retry: RetryPolicy) -> Self {
        self.faults = faults;
        self.retry = retry;
        self
    }

    /// A minutes-scale configuration for tests and examples.
    pub fn quick(seed: u64) -> Self {
        LimewireScenario {
            days: 2,
            ultrapeers: 4,
            clean_leaves: 30,
            files_per_leaf: 10,
            catalog: CatalogConfig {
                titles: 400,
                ..Default::default()
            },
            workload: WorkloadConfig {
                base_interval_secs: 120,
                ..Default::default()
            },
            ambient_query: None,
            infections: vec![
                InfectionSpec::new(0, 4, 2),
                InfectionSpec::new(1, 1, 0),
                InfectionSpec::new(2, 1, 0),
            ],
            ..Self::paper_scale(seed)
        }
    }

    /// The calibrated default infection population (see module docs).
    pub fn default_infections() -> Vec<InfectionSpec> {
        vec![
            InfectionSpec::new(0, 11, 5), // W32.Padobot.P2P — echo, exe
            InfectionSpec::new(1, 3, 0),  // W32.Alcra.B — echo, exe+zip
            InfectionSpec::new(2, 1, 0),  // W32.Bagle.DL — verbatim echo
            // Static-naming tail, one host each.
            InfectionSpec::new(3, 1, 0),
            InfectionSpec::new(4, 1, 1),
            InfectionSpec::new(5, 1, 0),
            InfectionSpec::new(6, 1, 0),
            InfectionSpec::new(7, 1, 1),
            InfectionSpec::new(8, 1, 0),
            InfectionSpec::new(9, 1, 0),
        ]
    }

    /// Builds the population, runs the collection, returns the measurement.
    pub fn run(&self) -> NetworkRun {
        self.run_with_progress(|_| {})
    }

    /// Like [`LimewireScenario::run`], reporting each finished simulated
    /// day to `progress`.
    pub fn run_with_progress(&self, mut progress: impl FnMut(u64)) -> NetworkRun {
        let world = make_world(self.seed, &self.catalog, Roster::limewire_2006());
        let scanner = make_scanner(&world);
        let mut sim = Simulator::new(
            SimConfig {
                scheduler: self.scheduler,
                faults: self.faults,
                shards: self.shards,
                shard_window_us: self.shard_window_us,
                ..SimConfig::default()
            },
            self.seed,
        );
        sim.set_telemetry(self.telemetry.build("limewire"));
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x11FE);

        // Ultrapeer backbone. Leaf slots must cover the population
        // (every leaf holds `target_degree` ultrapeer connections) or the
        // overflow would churn through rejection/retry forever.
        let leaves = self.clean_leaves + self.infections.iter().map(|i| i.hosts).sum::<usize>() + 1; // the crawler
                                                                                                     // Saturating: at mega populations `leaves * degree * 13` would
                                                                                                     // overflow 32-bit-ish intermediate products on exotic targets.
        let slots_needed = leaves.saturating_mul(ServentConfig::leaf().target_degree);
        let slots_per_up = (slots_needed.saturating_mul(13) / 10 / self.ultrapeers.max(1)).max(30);
        let mut up_addrs = Vec::new();
        for _ in 0..self.ultrapeers {
            let mut cfg = ServentConfig::ultrapeer().with_bootstrap(up_addrs.clone());
            cfg.max_leaf_slots = slots_per_up;
            let id = sim.spawn(
                NodeSpec::public().listen(6346),
                Box::new(Servent::new(cfg, world.clone(), HostLibrary::new())),
            );
            up_addrs.push(sim.node_addr(id));
        }
        // One shared ultrapeer list for every leaf (and the crawler): spawning
        // N leaves used to copy the full list N times, an O(UPs x leaves)
        // setup cost that dominated at mega populations.
        let up_boot: Arc<[HostAddr]> = up_addrs.into();

        let spawn_leaf =
            |sim: &mut Simulator, lib: HostLibrary, nat: bool, ambient: Option<SimDuration>| {
                let mut cfg = ServentConfig::leaf().with_bootstrap(up_boot.clone());
                cfg.auto_query = ambient;
                let spec = if nat {
                    NodeSpec::nat()
                } else {
                    NodeSpec::public().listen(6346)
                };
                sim.spawn(spec, Box::new(Servent::new(cfg, world.clone(), lib)))
            };

        // Clean population.
        for i in 0..self.clean_leaves {
            let lib = clean_library(&world, self.files_per_leaf, &mut rng);
            let nat = (i as f64 + 0.5) / self.clean_leaves as f64 <= self.clean_nat_fraction;
            spawn_leaf(&mut sim, lib, nat, self.ambient_query);
        }

        // Infected population.
        for spec in &self.infections {
            for h in 0..spec.hosts {
                let mut lib = clean_library(&world, self.infected_benign_files, &mut rng);
                lib.infect(world.roster.get(spec.family), &world.catalog, &mut rng);
                spawn_leaf(&mut sim, lib, h < spec.nat_hosts, None);
            }
        }

        // The instrumented client. Durable: the measurement host never
        // churns, only the network around it does.
        let crawler = sim.spawn(
            NodeSpec::public().listen(6346).durable(),
            Box::new(GnutellaCrawler::new(
                ServentConfig::leaf().with_bootstrap(up_boot.clone()),
                world.clone(),
                scanner,
                GnutellaCrawlerConfig {
                    workload: self.workload.clone(),
                    scan_cache_entries: self.scan_cache_entries,
                    scan_threads: self.scan_threads,
                    retry: self.retry,
                    ..Default::default()
                },
            )),
        );

        let mut last_events = 0u64;
        let mut wall = std::time::Duration::ZERO;
        for day in 1..=self.days {
            let t0 = std::time::Instant::now();
            sim.run_until(SimTime::from_days(day));
            // Sim-time barrier: merge any batched scan verdicts before the
            // day's stats are read, so day lines match the inline path.
            sim.barrier(crawler);
            let day_wall = t0.elapsed();
            wall += day_wall;
            // Unconditional: every run samples queue depth identically, so
            // the registry stays deterministic whatever the trace level.
            sim.sample_queue_depth();
            let ev = sim.metrics().events_processed;
            if self.telemetry.trace >= 1 {
                let crawl = sim.with_node(crawler, |app, _| {
                    DayCrawlStats::of(
                        app.as_any_mut()
                            .expect("crawler downcasts")
                            .downcast_mut::<GnutellaCrawler>()
                            .expect("crawler node")
                            .log(),
                    )
                });
                trace_day(
                    "LW",
                    day,
                    ev,
                    ev - last_events,
                    day_wall.as_secs_f64(),
                    &sim,
                    crawl.as_ref(),
                );
            }
            last_events = ev;
            progress(day);
        }
        sim.flush_telemetry();
        sim.record_memory();
        let log = sim
            .with_node(crawler, |app, _| {
                app.as_any_mut()
                    .expect("crawler downcasts")
                    .downcast_mut::<GnutellaCrawler>()
                    .expect("crawler node")
                    .take_log()
            })
            .expect("crawler alive");
        let resolved = log.resolved();
        NetworkRun {
            network: Network::Limewire,
            sim_metrics: metrics_with_log(&sim, &log),
            log,
            resolved,
            world,
            wall,
            shards: sim.shard_count(),
            shard_window_us: sim.shard_window_us(),
        }
    }
}

// ---------------------------------------------------------------------------
// OpenFT scenario
// ---------------------------------------------------------------------------

/// Population and workload for the giFT/OpenFT measurement.
#[derive(Debug, Clone)]
pub struct OpenFtScenario {
    pub seed: u64,
    pub days: u64,
    pub search_nodes: usize,
    pub clean_users: usize,
    pub files_per_user: usize,
    /// Bait titles the superspreader shares (all one family), sampled
    /// uniformly over the catalog: its share of query mass is
    /// `baits / titles`.
    pub superspreader_baits: usize,
    /// Family served by the superspreader.
    pub superspreader_family: FamilyId,
    /// Minor infected users: (family, hosts, bait titles per host).
    pub minor_infections: Vec<(FamilyId, usize, usize)>,
    pub catalog: CatalogConfig,
    pub workload: WorkloadConfig,
    pub ambient_query: Option<SimDuration>,
    /// Event scheduler (the heap is kept around for benchmarking).
    pub scheduler: SchedulerKind,
    /// Verdict-cache capacity for the crawler's scan pipeline (0 disables;
    /// outcomes are identical either way, only wall time changes).
    pub scan_cache_entries: usize,
    /// Scan-service worker threads (1 = inline sequential scanning). The
    /// presets read `P2PMAL_SCAN_THREADS`; any value produces byte-identical
    /// reports, only wall time changes.
    pub scan_threads: usize,
    /// Network fault injection ([`FaultPlan::none()`] by default).
    pub faults: FaultPlan,
    /// Crawler download retry policy ([`RetryPolicy::legacy()`] default).
    pub retry: RetryPolicy,
    /// Telemetry sinks and trace level (see
    /// [`LimewireScenario::telemetry`]).
    pub telemetry: TelemetryConfig,
    /// Simulation shards (see [`LimewireScenario::shards`]).
    pub shards: usize,
    /// Cross-shard exchange window in microseconds.
    pub shard_window_us: u64,
}

impl OpenFtScenario {
    pub fn paper_scale(seed: u64) -> Self {
        OpenFtScenario {
            seed,
            days: 35,
            search_nodes: 6,
            clean_users: 120,
            files_per_user: 16,
            // Calibration (DESIGN.md §4, T3/T5): spreader mass 90/2500 =
            // 3.6% of queries; minors 7 x 7/2500 = 0.28% each, so the top
            // family/host takes ~67% of malicious responses, top-3 ~76%,
            // and the overall malicious share lands near 3% against the
            // benign downloadable volume.
            superspreader_baits: 90,
            superspreader_family: FamilyId(0),
            minor_infections: vec![
                (FamilyId(1), 1, 7),
                (FamilyId(2), 1, 7),
                (FamilyId(3), 1, 7),
                (FamilyId(4), 1, 7),
                (FamilyId(5), 1, 7),
                (FamilyId(6), 1, 7),
                (FamilyId(7), 1, 7),
            ],
            catalog: CatalogConfig {
                titles: 2500,
                ..Default::default()
            },
            workload: WorkloadConfig {
                base_interval_secs: 60,
                ..Default::default()
            },
            ambient_query: Some(SimDuration::from_hours(1)),
            scheduler: SchedulerKind::Calendar,
            scan_cache_entries: DEFAULT_SCAN_CACHE_ENTRIES,
            scan_threads: p2pmal_crawler::scan_threads_from_env(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::legacy(),
            telemetry: TelemetryConfig::from_env(),
            shards: SimConfig::shards_from_env().0,
            shard_window_us: SimConfig::shards_from_env().1,
        }
    }

    /// Applies a fault/resilience profile (see [`fault_profile`]).
    pub fn with_faults(mut self, faults: FaultPlan, retry: RetryPolicy) -> Self {
        self.faults = faults;
        self.retry = retry;
        self
    }

    pub fn quick(seed: u64) -> Self {
        OpenFtScenario {
            days: 2,
            search_nodes: 2,
            clean_users: 20,
            files_per_user: 10,
            superspreader_baits: 24,
            minor_infections: vec![
                (FamilyId(1), 1, 4),
                (FamilyId(2), 1, 4),
                (FamilyId(3), 1, 4),
            ],
            catalog: CatalogConfig {
                titles: 400,
                ..Default::default()
            },
            workload: WorkloadConfig {
                base_interval_secs: 120,
                ..Default::default()
            },
            ambient_query: None,
            ..Self::paper_scale(seed)
        }
    }

    pub fn run(&self) -> NetworkRun {
        self.run_with_progress(|_| {})
    }

    pub fn run_with_progress(&self, mut progress: impl FnMut(u64)) -> NetworkRun {
        let world = make_world(self.seed, &self.catalog, Roster::openft_2006());
        let scanner = make_scanner(&world);
        let mut sim = Simulator::new(
            SimConfig {
                scheduler: self.scheduler,
                faults: self.faults,
                shards: self.shards,
                shard_window_us: self.shard_window_us,
                ..SimConfig::default()
            },
            self.seed,
        );
        sim.set_telemetry(self.telemetry.build("openft"));
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0F7);

        let mut search_addrs = Vec::new();
        for _ in 0..self.search_nodes {
            let cfg = FtConfig::search_node().with_bootstrap(search_addrs.clone());
            let id = sim.spawn(
                NodeSpec::public().listen(1215),
                Box::new(FtNode::new(cfg, world.clone(), HostLibrary::new())),
            );
            search_addrs.push(sim.node_addr(id));
        }
        // Shared across every USER node and the crawler, as on the LW side.
        let search_boot: Arc<[HostAddr]> = search_addrs.into();

        let spawn_user = |sim: &mut Simulator,
                          lib: HostLibrary,
                          ambient: Option<SimDuration>,
                          upload: Option<u64>,
                          durable: bool| {
            let mut cfg = FtConfig::user().with_bootstrap(search_boot.clone());
            cfg.auto_query = ambient;
            let mut spec = NodeSpec::public().listen(1215);
            if let Some(bps) = upload {
                spec = spec.upload(bps);
            }
            if durable {
                spec = spec.durable();
            }
            sim.spawn(spec, Box::new(FtNode::new(cfg, world.clone(), lib)))
        };

        for _ in 0..self.clean_users {
            let lib = clean_library(&world, self.files_per_user, &mut rng);
            spawn_user(&mut sim, lib, self.ambient_query, None, false);
        }

        // The superspreader: one always-on, well-provisioned host sharing
        // the top family under many popular titles. Durable: "always-on"
        // is its defining property, so churn never takes it down.
        let mut spreader_lib = clean_library(&world, self.files_per_user, &mut rng);
        spreader_lib.infect_superspreader(
            world.roster.get(self.superspreader_family),
            &world.catalog,
            self.superspreader_baits,
            &mut rng,
        );
        spawn_user(&mut sim, spreader_lib, None, Some(512_000), true);

        // Minor infected users: each baits a few uniformly-chosen titles.
        for (family, hosts, baits) in &self.minor_infections {
            for _ in 0..*hosts {
                let mut lib = clean_library(&world, self.files_per_user / 2, &mut rng);
                lib.infect_superspreader(
                    world.roster.get(*family),
                    &world.catalog,
                    *baits,
                    &mut rng,
                );
                spawn_user(&mut sim, lib, None, None, false);
            }
        }

        // The instrumented client sessions with every SEARCH node so its
        // searches cover all registration indexes, as the study's
        // instrumented giFT did.
        let crawler_cfg = FtConfig {
            target_sessions: self.search_nodes.max(3),
            ..FtConfig::user().with_bootstrap(search_boot.clone())
        };
        let crawler = sim.spawn(
            NodeSpec::public().listen(1215).durable(),
            Box::new(FtCrawler::new(
                crawler_cfg,
                world.clone(),
                scanner,
                FtCrawlerConfig {
                    workload: self.workload.clone(),
                    scan_cache_entries: self.scan_cache_entries,
                    scan_threads: self.scan_threads,
                    retry: self.retry,
                    ..Default::default()
                },
            )),
        );

        let mut last_events = 0u64;
        let mut wall = std::time::Duration::ZERO;
        for day in 1..=self.days {
            let t0 = std::time::Instant::now();
            sim.run_until(SimTime::from_days(day));
            // Sim-time barrier: merge any batched scan verdicts before the
            // day's stats are read, so day lines match the inline path.
            sim.barrier(crawler);
            let day_wall = t0.elapsed();
            wall += day_wall;
            // Unconditional: every run samples queue depth identically, so
            // the registry stays deterministic whatever the trace level.
            sim.sample_queue_depth();
            let ev = sim.metrics().events_processed;
            if self.telemetry.trace >= 1 {
                let crawl = sim.with_node(crawler, |app, _| {
                    DayCrawlStats::of(
                        app.as_any_mut()
                            .expect("crawler downcasts")
                            .downcast_mut::<FtCrawler>()
                            .expect("crawler node")
                            .log(),
                    )
                });
                trace_day(
                    "FT",
                    day,
                    ev,
                    ev - last_events,
                    day_wall.as_secs_f64(),
                    &sim,
                    crawl.as_ref(),
                );
            }
            last_events = ev;
            progress(day);
        }
        sim.flush_telemetry();
        sim.record_memory();
        let log = sim
            .with_node(crawler, |app, _| {
                app.as_any_mut()
                    .expect("crawler downcasts")
                    .downcast_mut::<FtCrawler>()
                    .expect("crawler node")
                    .take_log()
            })
            .expect("crawler alive");
        let resolved = log.resolved();
        NetworkRun {
            network: Network::OpenFt,
            sim_metrics: metrics_with_log(&sim, &log),
            log,
            resolved,
            world,
            wall,
            shards: sim.shard_count(),
            shard_window_us: sim.shard_window_us(),
        }
    }
}
