//! The mega-scale population tier: a single Gnutella world of 50k–1M
//! servents, built for memory/setup-throughput measurement rather than
//! paper-number calibration.
//!
//! Differences from [`crate::LimewireScenario`]:
//!
//! * the population is parameterized by a single `nodes` count
//!   (`P2PMAL_MEGA_NODES`), with the ultrapeer backbone, leaf libraries and
//!   infection mix all derived proportionally;
//! * ultrapeers bootstrap off a bounded window of prior ultrapeers and
//!   leaves off shared bootstrap groups, so population setup is O(nodes),
//!   not O(ultrapeers × leaves);
//! * only a sampled fraction of leaves runs ambient hourly queries — at a
//!   million nodes an every-leaf workload would measure the query flood,
//!   not the per-node state this tier exists to size.
//!
//! The run still carries the full instrumented crawler (queries, downloads,
//! scan pipeline), so a "bounded study run" at 250k+ nodes exercises every
//! layer the paper-scale study does.

use crate::scenario::clean_library;
use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::{ContentStore, FamilyId, HostLibrary, Roster};
use p2pmal_crawler::{
    CrawlLog, GnutellaCrawler, GnutellaCrawlerConfig, RetryPolicy, WorkloadConfig,
    DEFAULT_SCAN_CACHE_ENTRIES,
};
use p2pmal_gnutella::servent::{Servent, ServentConfig, SharedWorld};
use p2pmal_netsim::{
    MemoryStats, NodeSpec, SchedulerKind, SimConfig, SimDuration, SimMetrics, SimTime, Simulator,
    TelemetryConfig,
};
use p2pmal_scanner::Scanner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Configuration for one mega-tier world.
#[derive(Debug, Clone)]
pub struct MegaScenario {
    pub seed: u64,
    /// Total servents (ultrapeers + leaves + the crawler).
    pub nodes: usize,
    /// Simulated days (bounded: the tier measures state, not longitudes).
    pub days: u64,
    /// Leaves per ultrapeer (sets the backbone size).
    pub leaves_per_up: usize,
    /// Ultrapeer addresses per bootstrap list (backbone window size and
    /// leaf bootstrap-group size).
    pub bootstrap_fanout: usize,
    /// Benign files shared per leaf.
    pub files_per_leaf: usize,
    /// Query-echo infected hosts per 10k leaves (family 0).
    pub echo_hosts_per_10k: usize,
    /// Static-naming trojan hosts per 10k leaves (family 3).
    pub trojan_hosts_per_10k: usize,
    /// Every Nth leaf runs ambient hourly queries (0 = silent population).
    pub ambient_every: usize,
    pub catalog: CatalogConfig,
    pub workload: WorkloadConfig,
    pub scheduler: SchedulerKind,
    pub telemetry: TelemetryConfig,
    pub shards: usize,
    pub shard_window_us: u64,
}

/// The result of one mega-tier run.
pub struct MegaRun {
    pub nodes: usize,
    pub ups: usize,
    pub leaves: usize,
    pub days: u64,
    /// Wall clock spent building the population (spawn + libraries).
    pub setup_wall: std::time::Duration,
    /// Wall clock spent in the simulation loop.
    pub wall: std::time::Duration,
    /// Memory snapshot right after setup, before any event ran.
    pub setup_memory: MemoryStats,
    /// Final metrics; `sim_metrics.memory` is the steady-state snapshot.
    pub sim_metrics: SimMetrics,
    pub log: CrawlLog,
    pub shards: usize,
    pub shard_window_us: u64,
}

impl MegaScenario {
    /// Defaults for a `nodes`-servent world; see field docs for the knobs.
    pub fn new(seed: u64, nodes: usize) -> Self {
        MegaScenario {
            seed,
            nodes,
            days: 2,
            leaves_per_up: 25,
            bootstrap_fanout: 8,
            files_per_leaf: 4,
            echo_hosts_per_10k: 20,
            trojan_hosts_per_10k: 5,
            ambient_every: 100,
            catalog: CatalogConfig {
                titles: 2500,
                ..Default::default()
            },
            workload: WorkloadConfig {
                base_interval_secs: 60,
                ..Default::default()
            },
            scheduler: SchedulerKind::Calendar,
            telemetry: TelemetryConfig::from_env(),
            shards: SimConfig::shards_from_env().0,
            shard_window_us: SimConfig::shards_from_env().1,
        }
    }

    /// Reads `P2PMAL_MEGA_NODES` (default 50_000) and `P2PMAL_DAYS`.
    pub fn from_env(seed: u64) -> Self {
        let nodes = std::env::var("P2PMAL_MEGA_NODES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50_000);
        let mut s = Self::new(seed, nodes);
        if let Some(days) = std::env::var("P2PMAL_DAYS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            s.days = days;
        }
        s
    }

    /// Builds the population, runs the bounded collection, returns the
    /// measurement. `progress(day)` fires after each simulated day.
    pub fn run_with_progress(&self, mut progress: impl FnMut(u64)) -> MegaRun {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x11FE);
        let world = {
            let mut wrng = StdRng::seed_from_u64(self.seed ^ 0x0CA7_A106);
            let catalog = Catalog::generate(&self.catalog, &mut wrng);
            SharedWorld::new(
                Arc::new(catalog),
                Arc::new(Roster::limewire_2006()),
                Arc::new(ContentStore::new(self.seed)),
            )
        };
        let scanner = Arc::new(Scanner::new(
            world
                .roster
                .signature_db()
                .expect("roster db")
                .build()
                .expect("db compiles"),
        ));
        let mut sim = Simulator::new(
            SimConfig {
                scheduler: self.scheduler,
                shards: self.shards,
                shard_window_us: self.shard_window_us,
                ..SimConfig::default()
            },
            self.seed,
        );
        sim.set_telemetry(self.telemetry.build("mega"));

        let setup_t0 = std::time::Instant::now();
        let ups = (self.nodes / (self.leaves_per_up + 1)).max(1);
        let leaves = self.nodes.saturating_sub(ups + 1);
        let fanout = self.bootstrap_fanout.max(1);

        // Backbone. Overflow-safe slot arithmetic: at 10^6 leaves the naive
        // `leaves * degree * 13` product is fine on 64-bit but saturate
        // anyway so 32-bit hosts degrade to "plenty" instead of wrapping.
        let slots_needed = leaves.saturating_mul(ServentConfig::leaf().target_degree);
        let slots_per_up = (slots_needed.saturating_mul(13) / 10 / ups).max(30);
        let mut up_addrs: Vec<p2pmal_netsim::HostAddr> = Vec::with_capacity(ups);
        for i in 0..ups {
            // Bounded bootstrap window: the previous `fanout` ultrapeers.
            let window = up_addrs[i.saturating_sub(fanout)..i].to_vec();
            let mut cfg = ServentConfig::ultrapeer().with_bootstrap(window);
            cfg.max_leaf_slots = slots_per_up;
            let id = sim.spawn(
                NodeSpec::public().listen(6346),
                Box::new(Servent::new(cfg, world.clone(), HostLibrary::new())),
            );
            up_addrs.push(sim.node_addr(id));
        }

        // Leaf bootstrap groups: `fanout` consecutive ultrapeers per group,
        // shared by every leaf assigned to that group. The final group is
        // pulled back so it keeps full width when `ups % fanout != 0`.
        let num_groups = ups.div_ceil(fanout);
        let groups: Vec<Arc<[p2pmal_netsim::HostAddr]>> = (0..num_groups)
            .map(|g| {
                let start = (g * fanout).min(ups.saturating_sub(fanout));
                let end = (start + fanout).min(ups);
                up_addrs[start..end].to_vec().into()
            })
            .collect();

        let echo_total = leaves * self.echo_hosts_per_10k / 10_000;
        let trojan_total = leaves * self.trojan_hosts_per_10k / 10_000;
        let echo_stride = leaves.checked_div(echo_total).unwrap_or(0);
        let trojan_stride = leaves.checked_div(trojan_total).unwrap_or(0);

        for i in 0..leaves {
            let mut lib = clean_library(&world, self.files_per_leaf, &mut rng);
            if echo_stride > 0 && i % echo_stride == 0 {
                lib.infect(world.roster.get(FamilyId(0)), &world.catalog, &mut rng);
            } else if trojan_stride > 0 && i % trojan_stride == 1 {
                lib.infect(world.roster.get(FamilyId(3)), &world.catalog, &mut rng);
            }
            let mut cfg = ServentConfig::leaf().with_bootstrap(groups[i % num_groups].clone());
            if self.ambient_every > 0 && i % self.ambient_every == 0 {
                cfg.auto_query = Some(SimDuration::from_hours(1));
            }
            let spec = if i % 10 < 3 {
                NodeSpec::nat()
            } else {
                NodeSpec::public().listen(6346)
            };
            sim.spawn(spec, Box::new(Servent::new(cfg, world.clone(), lib)));
        }

        let crawler = sim.spawn(
            NodeSpec::public().listen(6346).durable(),
            Box::new(GnutellaCrawler::new(
                ServentConfig::leaf().with_bootstrap(groups[0].clone()),
                world.clone(),
                scanner,
                GnutellaCrawlerConfig {
                    workload: self.workload.clone(),
                    scan_cache_entries: DEFAULT_SCAN_CACHE_ENTRIES,
                    scan_threads: p2pmal_crawler::scan_threads_from_env(),
                    retry: RetryPolicy::legacy(),
                    ..Default::default()
                },
            )),
        );
        let setup_wall = setup_t0.elapsed();
        sim.record_memory();
        let setup_memory = sim.metrics().memory;

        let mut wall = std::time::Duration::ZERO;
        let mut last_events = 0u64;
        for day in 1..=self.days {
            let t0 = std::time::Instant::now();
            sim.run_until(SimTime::from_days(day));
            sim.barrier(crawler);
            let day_wall = t0.elapsed();
            wall += day_wall;
            sim.sample_queue_depth();
            let ev = sim.metrics().events_processed;
            if self.telemetry.trace >= 1 {
                eprintln!(
                    "[trace] mega day {day}: {ev} events (+{}), {:.1}s wall, queue {} pending",
                    ev - last_events,
                    day_wall.as_secs_f64(),
                    sim.pending_events(),
                );
            }
            last_events = ev;
            progress(day);
        }
        sim.flush_telemetry();
        sim.record_memory();
        let log = sim
            .with_node(crawler, |app, _| {
                app.as_any_mut()
                    .expect("crawler downcasts")
                    .downcast_mut::<GnutellaCrawler>()
                    .expect("crawler node")
                    .take_log()
            })
            .expect("crawler alive");
        MegaRun {
            nodes: self.nodes,
            ups,
            leaves,
            days: self.days,
            setup_wall,
            wall,
            setup_memory,
            sim_metrics: sim.metrics().clone(),
            log,
            shards: sim.shard_count(),
            shard_window_us: sim.shard_window_us(),
        }
    }

    pub fn run(&self) -> MegaRun {
        self.run_with_progress(|_| {})
    }
}
