//! Telemetry-layer integration: the journal must *observe* the simulation
//! without perturbing it, and must itself be deterministic — the same seed
//! writes the same bytes, every line parses, and sim time never goes
//! backwards.

use p2pmal_core::telemetry::{journal_path_for, Counter, EventCategory, SimHist, TelemetryConfig};
use p2pmal_core::{LimewireScenario, NetworkRun};
use p2pmal_hashes::Sha1;
use p2pmal_json::Value;
use std::path::PathBuf;

/// Same canonical trajectory digest the golden-baseline guard uses:
/// every resolved response plus the log counters.
fn digest(run: &NetworkRun) -> String {
    let mut h = Sha1::new();
    let mut line = String::new();
    for r in &run.resolved {
        use std::fmt::Write;
        line.clear();
        let _ = writeln!(
            line,
            "{}|{}|{}|{}|{}|{}:{}|{}|{:?}|{}|{}|{}",
            r.record.at.as_micros(),
            r.record.day,
            r.record.query,
            r.record.filename,
            r.record.size,
            r.record.source_ip,
            r.record.source_port,
            r.record.needs_push,
            r.record.host,
            r.scanned,
            r.malware.as_deref().unwrap_or("-"),
            r.sha1.map(|d| d.to_hex()).unwrap_or_default(),
        );
        h.update(line.as_bytes());
    }
    let counters = format!(
        "queries={} attempted={} failed={} events={}",
        run.log.queries_issued,
        run.log.downloads_attempted,
        run.log.downloads_failed,
        run.sim_metrics.events_processed,
    );
    h.update(counters.as_bytes());
    h.finalize().to_hex()
}

/// A collision-free journal base path for one test run.
fn journal_base(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "p2pmal-telemetry-{}-{tag}.jsonl",
        std::process::id()
    ));
    p
}

/// Runs a one-day quick LimeWire study journaling to a temp file; returns
/// the run and the journal text (the file itself is cleaned up).
fn run_with_journal(seed: u64, tag: &str) -> (NetworkRun, String) {
    let base = journal_base(tag);
    let mut scenario = LimewireScenario::quick(seed);
    scenario.days = 1;
    scenario.telemetry = TelemetryConfig {
        journal: Some(base.clone()),
        ..TelemetryConfig::off()
    };
    let run = scenario.run();
    let path = journal_path_for(&base, "limewire");
    let text = std::fs::read_to_string(&path).expect("journal file written");
    let _ = std::fs::remove_file(&path);
    (run, text)
}

#[test]
fn same_seed_writes_byte_identical_journals() {
    let (run_a, journal_a) = run_with_journal(2006, "det-a");
    let (run_b, journal_b) = run_with_journal(2006, "det-b");
    assert!(!journal_a.is_empty(), "quick run should journal events");
    assert_eq!(
        journal_a, journal_b,
        "identical seeds must write byte-identical journals"
    );
    assert_eq!(digest(&run_a), digest(&run_b));

    // Every line is a parseable event record and sim time never rewinds.
    let mut last = 0u64;
    for (i, line) in journal_a.lines().enumerate() {
        let v = p2pmal_json::parse(line).unwrap_or_else(|e| panic!("journal line {}: {e}", i + 1));
        let t = v
            .get("t")
            .and_then(Value::as_u64)
            .expect("event carries a numeric `t`");
        assert!(v.get("day").and_then(Value::as_u64).is_some());
        let cat = v
            .get("cat")
            .and_then(Value::as_str)
            .expect("event carries a `cat`");
        assert!(
            EventCategory::from_label(cat).is_some(),
            "unknown category {cat:?}"
        );
        assert!(v.get("ev").and_then(Value::as_str).is_some());
        assert!(
            t >= last,
            "sim time went backwards at line {}: {t} < {last}",
            i + 1
        );
        last = t;
    }
}

#[test]
fn journaling_does_not_perturb_the_simulation() {
    let (journaled, _) = run_with_journal(2006, "perturb");
    let mut plain = LimewireScenario::quick(2006);
    plain.days = 1;
    let plain = plain.run();
    assert_eq!(
        digest(&plain),
        digest(&journaled),
        "journaling must not change the trajectory"
    );
    // SimMetrics equality covers the whole metrics registry: the
    // deterministic counters/histograms must not depend on sinks.
    assert_eq!(plain.sim_metrics, journaled.sim_metrics);
}

#[test]
fn registry_reflects_the_crawl_log() {
    let mut scenario = LimewireScenario::quick(2006);
    scenario.days = 1;
    let run = scenario.run();
    let reg = &run.sim_metrics.telemetry;
    assert_eq!(reg.counter(Counter::QueriesIssued), run.log.queries_issued);
    assert_eq!(
        reg.counter(Counter::DownloadsStarted),
        run.log.downloads_attempted
    );
    let lat = reg.hist(SimHist::DownloadLatencyUs).summary();
    assert!(lat.count > 0, "quick run should complete downloads");
    assert!(lat.min <= lat.p50 && lat.p50 <= lat.p90);
    assert!(lat.p90 <= lat.p99 && lat.p99 <= lat.max);
}

#[test]
fn sampling_drops_a_category_without_touching_others() {
    let base = journal_base("sampled");
    let mut scenario = LimewireScenario::quick(2006);
    scenario.days = 1;
    let mut cfg = TelemetryConfig::off();
    cfg.journal = Some(base.clone());
    cfg.sample[EventCategory::Query as usize] = 0;
    scenario.telemetry = cfg;
    scenario.run();
    let path = journal_path_for(&base, "limewire");
    let text = std::fs::read_to_string(&path).expect("journal file written");
    let _ = std::fs::remove_file(&path);
    assert!(!text.contains("\"cat\":\"query\""));
    assert!(text.contains("\"cat\":\"download\""));
}

/// OpenFT counterpart of [`run_with_journal`] (same seed derivation
/// `run_study` uses for the OpenFT half).
fn run_openft_with_journal(seed: u64, tag: &str) -> (NetworkRun, String) {
    let base = journal_base(tag);
    let mut scenario = p2pmal_core::OpenFtScenario::quick(seed ^ 0xF7);
    scenario.days = 1;
    scenario.telemetry = TelemetryConfig {
        journal: Some(base.clone()),
        ..TelemetryConfig::off()
    };
    let run = scenario.run();
    let path = journal_path_for(&base, "openft");
    let text = std::fs::read_to_string(&path).expect("journal file written");
    let _ = std::fs::remove_file(&path);
    (run, text)
}

/// The provenance acceptance bar: on both networks, every journaled scan
/// verdict must sit at the end of a complete, orphan-free causal chain
/// (`query_issued -> query_matched -> download_start -> download_complete
/// -> scan_verdict`), with sim-time monotone along every edge.
#[test]
fn provenance_chains_reconstruct_on_both_networks() {
    let journals = [
        ("limewire", run_with_journal(2006, "prov-lw").1),
        ("openft", run_openft_with_journal(2006, "prov-ft").1),
    ];
    for (network, journal) in &journals {
        let events =
            p2pmal_obs::parse_journal(journal).unwrap_or_else(|e| panic!("{network}: {e}"));
        let analysis = p2pmal_obs::analyze(network, &events, 3);
        assert_eq!(
            analysis.orphans.len(),
            0,
            "{network}: every parent span must resolve within the journal"
        );
        assert_eq!(
            analysis.monotone_violations, 0,
            "{network}: sim time must be monotone along causal chains"
        );
        assert!(
            analysis.complete_chains >= 1,
            "{network}: at least one full query->verdict chain expected"
        );
        assert_eq!(
            analysis.complete_chains, analysis.spanned_verdicts,
            "{network}: every journaled verdict must close a complete chain"
        );
        // The root of every download chain is a query, so trace ids in the
        // journal can never exceed the queries issued.
        let forest = p2pmal_obs::TraceForest::build(&events);
        assert!(
            forest.traces.len() as u64
                <= events.iter().filter(|e| e.ev == "query_issued").count() as u64
        );
    }
}
