//! Equivalence guard for the sharded parallel simulation engine.
//!
//! The determinism contract has two halves:
//!
//! * `shards = 1` runs the untouched serial engine, so its quick seed-2006
//!   trajectories must match the golden digests recorded in
//!   `fault_free_baseline.rs` bit-for-bit.
//! * `shards >= 2` runs the parallel engine, whose trajectory is
//!   *deliberately distinct* from the serial one (the serial engine threads
//!   all randomness through a single RNG in dispatch order, which no
//!   parallel schedule can reproduce) but must be bit-identical across
//!   every shard count and every thread interleaving. The sharded goldens
//!   below pin that second trajectory.
//!
//! `SimMetrics` must agree across shard counts too, except the buffer-pool
//! counters: each shard owns a private pool, so hit/miss/recycle totals
//! depend on how nodes partition. Those are zeroed before comparing.

use p2pmal_core::{LimewireScenario, NetworkRun, OpenFtScenario};
use p2pmal_hashes::Sha1;
use p2pmal_netsim::{shard_of, SimMetrics};

/// Same canonical trajectory digest as `fault_free_baseline.rs`.
fn digest(run: &NetworkRun) -> String {
    let mut h = Sha1::new();
    let mut line = String::new();
    for r in &run.resolved {
        use std::fmt::Write;
        line.clear();
        let _ = writeln!(
            line,
            "{}|{}|{}|{}|{}|{}:{}|{}|{:?}|{}|{}|{}",
            r.record.at.as_micros(),
            r.record.day,
            r.record.query,
            r.record.filename,
            r.record.size,
            r.record.source_ip,
            r.record.source_port,
            r.record.needs_push,
            r.record.host,
            r.scanned,
            r.malware.as_deref().unwrap_or("-"),
            r.sha1.map(|d| d.to_hex()).unwrap_or_default(),
        );
        h.update(line.as_bytes());
    }
    let counters = format!(
        "queries={} attempted={} failed={} events={}",
        run.log.queries_issued,
        run.log.downloads_attempted,
        run.log.downloads_failed,
        run.sim_metrics.events_processed,
    );
    h.update(counters.as_bytes());
    h.finalize().to_hex()
}

/// Metrics with the shard-partition-dependent parts masked out.
fn comparable_metrics(run: &NetworkRun) -> SimMetrics {
    let mut m = run.sim_metrics.clone();
    m.pool_hits = 0;
    m.pool_misses = 0;
    m.pool_recycled_bytes = 0;
    m.pool_high_water = 0;
    m
}

fn limewire_run(shards: usize) -> NetworkRun {
    let mut scenario = LimewireScenario::quick(2006);
    scenario.shards = shards;
    scenario.run()
}

fn openft_run(shards: usize) -> NetworkRun {
    // Same seed derivation run_study uses for the OpenFT half.
    let mut scenario = OpenFtScenario::quick(2006 ^ 0xF7);
    scenario.shards = shards;
    scenario.run()
}

#[test]
fn shard_assignment_is_a_pure_function_of_seed_node_and_count() {
    for seed in [0u64, 2006, u64::MAX] {
        for shards in [1usize, 2, 3, 8, 64] {
            for node in (0..200usize).chain([usize::MAX - 1, usize::MAX]) {
                let a = shard_of(seed, node, shards);
                assert!(a < shards, "assignment out of range");
                assert_eq!(
                    a,
                    shard_of(seed, node, shards),
                    "shard_of must be pure: seed={seed} node={node} shards={shards}"
                );
            }
        }
    }
    // Different seeds shuffle the partition (it is seed-keyed, not a plain
    // `node % shards`).
    let a: Vec<usize> = (0..64).map(|n| shard_of(1, n, 8)).collect();
    let b: Vec<usize> = (0..64).map(|n| shard_of(2, n, 8)).collect();
    assert_ne!(a, b, "partition should depend on the seed");
}

#[test]
fn limewire_serial_engine_matches_fault_free_golden() {
    // shards = 1 must be byte-identical to the engine before sharding
    // existed — the same golden `fault_free_baseline.rs` records.
    let run = limewire_run(1);
    assert_eq!(run.shards, 1);
    assert_eq!(
        digest(&run),
        "e23760a68ae66f482fe75fb625ea3782b0f42ea1",
        "shards=1 must reproduce the serial LimeWire golden"
    );
}

#[test]
fn openft_serial_engine_matches_fault_free_golden() {
    let run = openft_run(1);
    assert_eq!(run.shards, 1);
    assert_eq!(
        digest(&run),
        "76a3974f9eba95c5ea11bd8eed620f8144ede6a7",
        "shards=1 must reproduce the serial OpenFT golden"
    );
}

#[test]
fn limewire_sharded_trajectory_identical_at_2_4_8_shards() {
    let base = limewire_run(2);
    let base_digest = digest(&base);
    assert_eq!(
        base_digest, "f37ef52a057e0096ccb9f7e55383db93efacf571",
        "sharded LimeWire golden moved"
    );
    let base_metrics = comparable_metrics(&base);
    for shards in [4usize, 8] {
        let run = limewire_run(shards);
        assert_eq!(run.shards, shards);
        assert_eq!(
            digest(&run),
            base_digest,
            "shards={shards} diverged from the shards=2 LimeWire trajectory"
        );
        assert_eq!(
            comparable_metrics(&run),
            base_metrics,
            "shards={shards} changed the LimeWire SimMetrics"
        );
    }
}

#[test]
fn openft_sharded_trajectory_identical_at_2_4_8_shards() {
    let base = openft_run(2);
    let base_digest = digest(&base);
    assert_eq!(
        base_digest, "18f403bc244e4c8cbe0236ce7ce77a929ccd8c4f",
        "sharded OpenFT golden moved"
    );
    let base_metrics = comparable_metrics(&base);
    for shards in [4usize, 8] {
        let run = openft_run(shards);
        assert_eq!(run.shards, shards);
        assert_eq!(
            digest(&run),
            base_digest,
            "shards={shards} diverged from the shards=2 OpenFT trajectory"
        );
        assert_eq!(
            comparable_metrics(&run),
            base_metrics,
            "shards={shards} changed the OpenFT SimMetrics"
        );
    }
}

#[test]
fn sharded_mode_reports_exchange_bucket_and_window_depths() {
    let run = limewire_run(4);
    // The 7th profiler subsystem only accrues in sharded mode...
    assert!(
        run.sim_metrics
            .timing
            .calls(p2pmal_netsim::Subsystem::ShardExchange)
            > 0,
        "shard_exchange bucket should accrue at shards=4"
    );
    // ...and the queue-depth histogram samples the global depth at every
    // window boundary, so a multi-day run collects plenty of samples.
    assert!(
        run.sim_metrics
            .telemetry
            .hist(p2pmal_netsim::SimHist::QueueDepth)
            .count()
            > 0,
        "queue_depth histogram should be populated at shards=4"
    );
    assert!(run.sim_metrics.queue_high_water > 0);
}

/// A quick LimeWire run at `shards` with the journal on; returns the run
/// and the journal bytes.
fn limewire_journaled(shards: usize, tag: &str) -> (NetworkRun, String) {
    use p2pmal_core::telemetry::{journal_path_for, TelemetryConfig};
    let mut base = std::env::temp_dir();
    base.push(format!(
        "p2pmal-sharded-journal-{}-{tag}.jsonl",
        std::process::id()
    ));
    let mut scenario = LimewireScenario::quick(2006);
    scenario.shards = shards;
    scenario.telemetry = TelemetryConfig {
        journal: Some(base.clone()),
        ..TelemetryConfig::off()
    };
    let run = scenario.run();
    let path = journal_path_for(&base, "limewire");
    let text = std::fs::read_to_string(&path).expect("journal file written");
    let _ = std::fs::remove_file(&path);
    (run, text)
}

/// Sharded journals must be deterministic across shard counts: the
/// windowed barrier replays buffered per-shard events in a canonical
/// order, so shards=2 and shards=4 must write byte-identical span-complete
/// journals and reconstruct identical propagation trees.
///
/// (The issue asks for shards=1 vs shards=4 — but per the header comment
/// the serial trajectory is *deliberately distinct* from the sharded one,
/// so its journal cannot match byte-for-byte. The cross-shard-count
/// guarantee is pinned at 2 vs 4, and the serial journal's
/// span-completeness is guarded by `serial_journal_is_span_complete`.)
#[test]
fn sharded_journals_and_propagation_trees_match_across_shard_counts() {
    let (run2, journal2) = limewire_journaled(2, "s2");
    let (run4, journal4) = limewire_journaled(4, "s4");
    assert!(!journal2.is_empty());
    assert_eq!(
        journal2, journal4,
        "shards=2 and shards=4 must write byte-identical journals"
    );
    assert_eq!(digest(&run2), digest(&run4));

    // Reconstruct both forests independently and compare the full report:
    // identical trees, identical chain/latency/hop analyses.
    let ev2 = p2pmal_obs::parse_journal(&journal2).expect("journal parses");
    let ev4 = p2pmal_obs::parse_journal(&journal4).expect("journal parses");
    let a2 = p2pmal_obs::analyze("s2", &ev2, 5);
    let a4 = p2pmal_obs::analyze("s4", &ev4, 5);
    assert_eq!(
        a2.to_json().to_string_compact().replace("\"s2\"", "\"s\""),
        a4.to_json().to_string_compact().replace("\"s4\"", "\"s\""),
        "reconstructed propagation trees must be identical"
    );
    assert_eq!(
        a2.orphans.len(),
        0,
        "sharded journals must be span-complete"
    );
    assert_eq!(a2.monotone_violations, 0);
    assert!(a2.complete_chains >= 1);
}

/// The serial engine's journal must be span-complete too (its trajectory
/// differs from the sharded one by design, so it gets its own guard).
#[test]
fn serial_journal_is_span_complete() {
    let (_, journal) = limewire_journaled(1, "s1");
    let events = p2pmal_obs::parse_journal(&journal).expect("journal parses");
    let analysis = p2pmal_obs::analyze("s1", &events, 3);
    assert_eq!(analysis.orphans.len(), 0);
    assert_eq!(analysis.monotone_violations, 0);
    assert!(analysis.complete_chains >= 1);
    assert_eq!(analysis.complete_chains, analysis.spanned_verdicts);
}
