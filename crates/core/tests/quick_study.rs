//! A quick (days=2, small population) end-to-end study on both networks.
//! This is the integration test that exercises the complete pipeline; the
//! paper-scale numbers are checked by the bench binaries / EXPERIMENTS.md.

use p2pmal_analysis::{source_breakdown, summarize, top_malware};
use p2pmal_core::Study;

#[test]
fn quick_study_runs_and_has_paper_shape() {
    let report = Study::quick(42).run();

    // Both networks produced data.
    let lw = report.limewire.as_ref().expect("limewire ran");
    let ft = report.openft.as_ref().expect("openft ran");
    assert!(
        lw.log.queries_issued > 100,
        "lw queries {}",
        lw.log.queries_issued
    );
    assert!(
        ft.log.queries_issued > 100,
        "ft queries {}",
        ft.log.queries_issued
    );

    let lw_sum = summarize("LimeWire", &lw.log, &lw.resolved);
    let ft_sum = summarize("OpenFT", &ft.log, &ft.resolved);
    eprintln!("LimeWire: {lw_sum:#?}");
    eprintln!("OpenFT: {ft_sum:#?}");
    eprintln!(
        "LW top malware: {:#?}",
        top_malware(&lw.resolved).iter().take(4).collect::<Vec<_>>()
    );
    eprintln!(
        "FT top malware: {:#?}",
        top_malware(&ft.resolved).iter().take(4).collect::<Vec<_>>()
    );
    eprintln!("LW sources: {:#?}", source_breakdown(&lw.resolved));
    eprintln!("LW filters:");
    for f in report.filter_comparison() {
        eprintln!(
            "  {}: det {:.1}% fp {:.2}%",
            f.name, f.detection_pct, f.false_positive_pct
        );
    }

    // Shape checks (quick scale is noisy; bands are loose).
    assert!(lw_sum.malicious > 0, "LimeWire saw malware");
    assert!(
        lw_sum.malicious_pct > ft_sum.malicious_pct,
        "LimeWire ({:.1}%) must be far dirtier than OpenFT ({:.1}%)",
        lw_sum.malicious_pct,
        ft_sum.malicious_pct
    );
    assert!(
        lw_sum.malicious_pct > 30.0,
        "lw {:.1}%",
        lw_sum.malicious_pct
    );
    assert!(
        ft_sum.malicious_pct < 20.0,
        "ft {:.1}%",
        ft_sum.malicious_pct
    );

    // Top-3 dominance on LimeWire.
    let lw_top = top_malware(&lw.resolved);
    assert!(!lw_top.is_empty());
    let top3 = lw_top.iter().take(3).map(|s| s.pct).sum::<f64>();
    assert!(top3 > 90.0, "LimeWire top-3 share {top3:.1}%");

    // Private addresses appear among LimeWire malicious sources.
    let sources = source_breakdown(&lw.resolved);
    assert!(
        sources.private_pct > 5.0,
        "private share {:.1}%",
        sources.private_pct
    );

    // Filters: size-based beats the built-in by a wide margin.
    let rows = report.filter_comparison();
    let builtin = rows.iter().find(|r| r.name == "LimeWire built-in").unwrap();
    let size = rows.iter().find(|r| r.name == "size-based").unwrap();
    assert!(
        size.detection_pct > 90.0,
        "size filter detects {:.1}%",
        size.detection_pct
    );
    assert!(
        size.false_positive_pct < 2.0,
        "size filter FP {:.2}%",
        size.false_positive_pct
    );
    assert!(
        builtin.detection_pct < size.detection_pct / 2.0,
        "builtin {:.1}% vs size {:.1}%",
        builtin.detection_pct,
        size.detection_pct
    );

    // The report renders.
    let md = report.render_markdown();
    assert!(md.contains("T1 — Data collection summary"));
    assert!(md.contains("T6 — Filter comparison"));
    assert!(md.contains("Paper vs measured"));
}
