//! Determinism guard for the batched parallel scan service: the quick
//! seed-2006 studies must produce bit-identical trajectories at every
//! scan-thread count, matching the sequential golden digests recorded in
//! `fault_free_baseline.rs`. Worker threads only compute pure functions of
//! body bytes; all observable state mutates in submission-order replay, so
//! any divergence here means verdicts or stats leaked out of order.

use p2pmal_core::{LimewireScenario, NetworkRun, OpenFtScenario};
use p2pmal_crawler::ScanStats;
use p2pmal_hashes::Sha1;

/// Same canonical trajectory digest as `fault_free_baseline.rs`: every
/// resolved response (with verdict) plus the log counters.
fn digest(run: &NetworkRun) -> String {
    let mut h = Sha1::new();
    let mut line = String::new();
    for r in &run.resolved {
        use std::fmt::Write;
        line.clear();
        let _ = writeln!(
            line,
            "{}|{}|{}|{}|{}|{}:{}|{}|{:?}|{}|{}|{}",
            r.record.at.as_micros(),
            r.record.day,
            r.record.query,
            r.record.filename,
            r.record.size,
            r.record.source_ip,
            r.record.source_port,
            r.record.needs_push,
            r.record.host,
            r.scanned,
            r.malware.as_deref().unwrap_or("-"),
            r.sha1.map(|d| d.to_hex()).unwrap_or_default(),
        );
        h.update(line.as_bytes());
    }
    let counters = format!(
        "queries={} attempted={} failed={} events={}",
        run.log.queries_issued,
        run.log.downloads_attempted,
        run.log.downloads_failed,
        run.sim_metrics.events_processed,
    );
    h.update(counters.as_bytes());
    h.finalize().to_hex()
}

#[test]
fn limewire_quick_identical_across_scan_thread_counts() {
    let mut baseline_scan: Option<ScanStats> = None;
    for threads in [1usize, 2, 8] {
        let mut scenario = LimewireScenario::quick(2006);
        // Serial-engine golden (see sharded_sim.rs for the sharded one).
        scenario.shards = 1;
        scenario.scan_threads = threads;
        let run = scenario.run();
        assert_eq!(
            digest(&run),
            "e23760a68ae66f482fe75fb625ea3782b0f42ea1",
            "scan_threads={threads} changed the LimeWire quick trajectory"
        );
        match &baseline_scan {
            None => baseline_scan = Some(run.log.scan),
            Some(expected) => assert_eq!(
                run.log.scan, *expected,
                "scan_threads={threads} changed the LimeWire scan-pipeline counters"
            ),
        }
    }
}

#[test]
fn openft_quick_identical_across_scan_thread_counts() {
    let mut baseline_scan: Option<ScanStats> = None;
    for threads in [1usize, 2, 8] {
        // Same seed derivation run_study uses for the OpenFT half.
        let mut scenario = OpenFtScenario::quick(2006 ^ 0xF7);
        // Serial-engine golden (see sharded_sim.rs for the sharded one).
        scenario.shards = 1;
        scenario.scan_threads = threads;
        let run = scenario.run();
        assert_eq!(
            digest(&run),
            "76a3974f9eba95c5ea11bd8eed620f8144ede6a7",
            "scan_threads={threads} changed the OpenFT quick trajectory"
        );
        match &baseline_scan {
            None => baseline_scan = Some(run.log.scan),
            Some(expected) => assert_eq!(
                run.log.scan, *expected,
                "scan_threads={threads} changed the OpenFT scan-pipeline counters"
            ),
        }
    }
}
