//! Golden-baseline guard for the fault-injection layer: with the default
//! `FaultPlan::none()` the seed-2006 quick study must reproduce these
//! digests bit-for-bit, in every process. Any extra RNG draw, reordered
//! event or changed retry path on the fault-free code path will move them.
//!
//! Provenance: the pre-fault-injection tree computed the LimeWire digest
//! from a process-random trajectory — query fan-out and ping-target choice
//! leaked `HashMap` iteration order into event sequencing, so the "golden"
//! value silently varied between runs of the same binary. This PR sorts
//! those iteration sites; the digests below are the now-stable trajectories
//! (the OpenFT value is unchanged from the pre-fault build, whose OpenFT
//! path never hit the order leak).

use p2pmal_core::{LimewireScenario, NetworkRun, OpenFtScenario};
use p2pmal_crawler::RetryPolicy;
use p2pmal_hashes::Sha1;
use p2pmal_netsim::FaultPlan;

/// Canonical digest over everything the study reports: every resolved
/// response (with verdict) plus the log counters. Deliberately excludes
/// wall-time and scan-cache internals, which are allowed to vary.
fn digest(run: &NetworkRun) -> String {
    let mut h = Sha1::new();
    let mut line = String::new();
    for r in &run.resolved {
        use std::fmt::Write;
        line.clear();
        let _ = writeln!(
            line,
            "{}|{}|{}|{}|{}|{}:{}|{}|{:?}|{}|{}|{}",
            r.record.at.as_micros(),
            r.record.day,
            r.record.query,
            r.record.filename,
            r.record.size,
            r.record.source_ip,
            r.record.source_port,
            r.record.needs_push,
            r.record.host,
            r.scanned,
            r.malware.as_deref().unwrap_or("-"),
            r.sha1.map(|d| d.to_hex()).unwrap_or_default(),
        );
        h.update(line.as_bytes());
    }
    let counters = format!(
        "queries={} attempted={} failed={} events={}",
        run.log.queries_issued,
        run.log.downloads_attempted,
        run.log.downloads_failed,
        run.sim_metrics.events_processed,
    );
    h.update(counters.as_bytes());
    h.finalize().to_hex()
}

#[test]
fn limewire_quick_seed_2006_matches_fault_free_baseline() {
    // Pinned to the serial engine: these goldens record the serial
    // reference trajectory. The sharded engine's own goldens live in
    // `sharded_sim.rs` (its trajectory is deterministic but distinct).
    let mut scenario = LimewireScenario::quick(2006);
    scenario.shards = 1;
    let run = scenario.run();
    assert_eq!(
        digest(&run),
        "e23760a68ae66f482fe75fb625ea3782b0f42ea1",
        "fault-free LimeWire quick study diverged from the recorded baseline"
    );
    // An *explicit* empty fault plan must be indistinguishable from the
    // default: the fault layer performs zero RNG draws and schedules zero
    // events when every probability is zero.
    let mut explicit_scenario =
        LimewireScenario::quick(2006).with_faults(FaultPlan::none(), RetryPolicy::legacy());
    explicit_scenario.shards = 1;
    let explicit = explicit_scenario.run();
    assert_eq!(
        digest(&explicit),
        digest(&run),
        "FaultPlan::none() perturbed the fault-free LimeWire trajectory"
    );
}

#[test]
fn openft_quick_seed_2006_matches_fault_free_baseline() {
    // Same seed derivation run_study uses for the OpenFT half. Pinned to
    // the serial engine, like the LimeWire golden above.
    let mut scenario = OpenFtScenario::quick(2006 ^ 0xF7);
    scenario.shards = 1;
    let run = scenario.run();
    assert_eq!(
        digest(&run),
        "76a3974f9eba95c5ea11bd8eed620f8144ede6a7",
        "fault-free OpenFT quick study diverged from the pre-fault-injection baseline"
    );
    let mut explicit_scenario =
        OpenFtScenario::quick(2006 ^ 0xF7).with_faults(FaultPlan::none(), RetryPolicy::legacy());
    explicit_scenario.shards = 1;
    let explicit = explicit_scenario.run();
    assert_eq!(
        digest(&explicit),
        digest(&run),
        "FaultPlan::none() perturbed the fault-free OpenFT trajectory"
    );
}
