//! The verdict cache must be observationally pure: a run with the cache on
//! produces the same crawl log — every response, every scan outcome, every
//! counter — as a run with the cache disabled. Only wall time (and the scan
//! pipeline's own stats) may differ.

use p2pmal_core::{LimewireScenario, OpenFtScenario};
use p2pmal_crawler::CrawlLog;

fn assert_logs_identical(cached: &CrawlLog, uncached: &CrawlLog, net: &str) {
    assert_eq!(cached.responses, uncached.responses, "{net} responses");
    assert_eq!(
        cached.by_name_size, uncached.by_name_size,
        "{net} name+size outcomes"
    );
    assert_eq!(
        cached.by_host_size, uncached.by_host_size,
        "{net} host+size outcomes"
    );
    assert_eq!(
        cached.queries_issued, uncached.queries_issued,
        "{net} queries"
    );
    assert_eq!(
        cached.downloads_attempted, uncached.downloads_attempted,
        "{net} attempts"
    );
    assert_eq!(
        cached.downloads_failed, uncached.downloads_failed,
        "{net} failures"
    );
    // Hashing happens either way; the cache only skips scanner work.
    assert_eq!(cached.scan.bodies, uncached.scan.bodies, "{net} bodies");
    assert_eq!(
        cached.scan.bytes_hashed, uncached.scan.bytes_hashed,
        "{net} bytes hashed"
    );
    assert_eq!(
        cached.scan.distinct_payloads, uncached.scan.distinct_payloads,
        "{net} distinct payloads"
    );
}

#[test]
fn limewire_cache_on_and_off_agree_byte_for_byte() {
    let scenario = LimewireScenario::quick(1312);
    let cached = scenario.run();

    let mut no_cache = scenario.clone();
    no_cache.scan_cache_entries = 0;
    let uncached = no_cache.run();

    assert_logs_identical(&cached.log, &uncached.log, "LW");

    // The quick workload re-downloads shared payloads, so the cache must
    // actually fire — otherwise this test proves nothing.
    assert!(
        cached.log.scan.cache_hits > 0,
        "cache never hit: {:?}",
        cached.log.scan
    );
    assert_eq!(uncached.log.scan.cache_hits, 0, "disabled cache hit");
    assert_eq!(uncached.log.scan.cache_misses, 0, "disabled cache missed");
    assert_eq!(
        cached.log.scan.bodies,
        cached.log.scan.cache_hits + cached.log.scan.cache_misses,
        "every body is a hit or a miss"
    );
    // Cached run scans each distinct payload at most once (no evictions at
    // quick scale).
    assert_eq!(cached.log.scan.cache_evictions, 0);
    assert_eq!(
        cached.log.scan.bodies_scanned,
        cached.log.scan.distinct_payloads
    );
    // Metrics surface the same counters.
    assert_eq!(
        cached.sim_metrics.scan_cache_hits,
        cached.log.scan.cache_hits
    );
    assert_eq!(cached.sim_metrics.scan_bodies, cached.log.scan.bodies);
}

#[test]
fn openft_cache_on_and_off_agree_byte_for_byte() {
    let scenario = OpenFtScenario::quick(1312);
    let cached = scenario.run();

    let mut no_cache = scenario.clone();
    no_cache.scan_cache_entries = 0;
    let uncached = no_cache.run();

    assert_logs_identical(&cached.log, &uncached.log, "FT");
    assert_eq!(
        cached.log.scan.bodies,
        cached.log.scan.cache_hits + cached.log.scan.cache_misses
    );
}
