//! Chaos test: the quick study must survive the `harsh` fault profile on
//! both networks — no panics, every terminal failure classified by cause,
//! retries visibly recovering transfers, and the headline prevalence
//! staying in a sane band even while the network is actively hostile.

use p2pmal_core::{fault_profile, LimewireScenario, NetworkRun, OpenFtScenario};

/// Malicious share of downloadable responses, in percent.
fn prevalence_pct(run: &NetworkRun) -> f64 {
    let downloadable = run.resolved.iter().filter(|r| r.record.downloadable);
    let (mut total, mut malicious) = (0u64, 0u64);
    for r in downloadable {
        total += 1;
        if r.malware.is_some() {
            malicious += 1;
        }
    }
    assert!(
        total > 0,
        "{}: no downloadable responses",
        run.network.label()
    );
    malicious as f64 * 100.0 / total as f64
}

fn assert_chaos_invariants(run: &NetworkRun, prevalence_band: (f64, f64)) {
    let label = run.network.label();
    let log = &run.log;
    let m = &run.sim_metrics;
    eprintln!(
        "{label}: attempted {} failed {} retries {} recovered {} push_fallbacks {} \
         unscannable {} failures {:?} | faults: drop {} corrupt {} reset {} spike {} \
         down {} up {}",
        log.downloads_attempted,
        log.downloads_failed,
        log.retries_scheduled,
        log.retry_successes,
        log.push_fallbacks,
        log.unscannable,
        log.failures,
        m.faults_chunks_dropped,
        m.faults_chunks_corrupted,
        m.faults_resets,
        m.faults_latency_spikes,
        m.faults_churn_downs,
        m.faults_churn_ups,
    );

    // The network was actually hostile.
    assert!(
        m.faults_chunks_dropped > 0,
        "{label}: no chunk loss injected"
    );
    assert!(m.faults_resets > 0, "{label}: no resets injected");
    assert!(m.faults_churn_downs > 0, "{label}: no churn injected");

    // Attempts failed, and every failure carries a cause: each failed
    // attempt either scheduled a retry or went terminal, nothing else.
    assert!(
        log.failures.total() > 0,
        "{label}: harsh profile but no failed attempts"
    );
    assert_eq!(
        log.failures.total(),
        log.retries_scheduled + log.downloads_failed,
        "{label}: unclassified failures ({:?})",
        log.failures
    );
    let nonzero_causes = log.failures.parts().iter().filter(|(_, n)| *n > 0).count();
    assert!(
        nonzero_causes >= 2,
        "{label}: expected several failure causes, got {:?}",
        log.failures
    );

    // The retry pipeline ran and visibly recovered transfers.
    assert!(log.retries_scheduled > 0, "{label}: no retries scheduled");
    assert!(
        log.retry_successes > 0,
        "{label}: retries never recovered a transfer ({} scheduled)",
        log.retries_scheduled
    );
    assert_eq!(m.dl_retries, log.retries_scheduled);
    assert_eq!(m.dl_retry_successes, log.retry_successes);

    // The study still measures something sane.
    let prev = prevalence_pct(run);
    assert!(
        prev >= prevalence_band.0 && prev <= prevalence_band.1,
        "{label}: prevalence {prev:.1}% outside sane band {prevalence_band:?}"
    );
}

#[test]
fn limewire_quick_survives_harsh_faults() {
    let (faults, retry) = fault_profile("harsh").expect("harsh profile exists");
    // The stock quick profile only yields a handful of unique downloadable
    // objects — too little traffic for the fault classes to show up in the
    // per-cause breakdown. Give the chaos run extra days, more sharers with
    // bigger libraries, a downloadable-heavy media mix, and a faster query
    // clock so the retry pipeline actually gets exercised.
    let mut scenario = LimewireScenario::quick(2006).with_faults(faults, retry);
    // Pinned to the serial engine: the per-cause failure breakdown below
    // is calibrated against its traffic pattern.
    scenario.shards = 1;
    scenario.days = 5;
    scenario.clean_leaves = 60;
    scenario.files_per_leaf = 30;
    scenario.catalog.media_mix_permille = [300, 100, 300, 220, 50, 30];
    scenario.workload.base_interval_secs = 60;
    let run = scenario.run();
    // The downloadable-heavy catalog dilutes the echo worms' share well
    // below the calibrated 68%, and churn moves it further; the band only
    // guards against the degenerate ends (no malware seen at all, or
    // nothing but malware).
    assert_chaos_invariants(&run, (5.0, 98.0));
}

#[test]
fn openft_quick_survives_harsh_faults() {
    let (faults, retry) = fault_profile("harsh").expect("harsh profile exists");
    let mut scenario = OpenFtScenario::quick(2006 ^ 0xF7).with_faults(faults, retry);
    scenario.shards = 1;
    scenario.days = 5;
    // More downloadable titles and a faster query clock give the fault
    // classes real download traffic. The population itself stays stock:
    // flooding the index with extra clean shares would push the
    // superspreader past the SEARCH nodes' per-query result cap and
    // silently erase the malicious signal.
    scenario.catalog.media_mix_permille = [300, 100, 300, 220, 50, 30];
    scenario.workload.base_interval_secs = 60;
    let run = scenario.run();
    // Fault-free quick runs measure a few percent malicious; the durable
    // superspreader keeps answering while clean users churn, so the share
    // can drift upward under harsh faults.
    assert_chaos_invariants(&run, (0.1, 40.0));
}
