//! Cross-network golden guard on the query-matching pipeline itself:
//! the number of responses the crawler logs (and the malicious share of
//! them) is a direct function of per-library match decisions, so any
//! behavioural drift in the tokenize-once / fingerprint fast-reject path
//! moves these counts even if it would somehow preserve the trajectory
//! digests in `fault_free_baseline.rs`.

use p2pmal_core::{LimewireScenario, NetworkRun, OpenFtScenario};

fn counts(run: &NetworkRun) -> (usize, usize, usize) {
    let responses = run.log.responses.len();
    let downloadable = run
        .resolved
        .iter()
        .filter(|r| r.record.downloadable)
        .count();
    let malicious = run
        .resolved
        .iter()
        .filter(|r| r.record.downloadable && r.malware.is_some())
        .count();
    (responses, downloadable, malicious)
}

#[test]
fn limewire_quick_seed_2006_match_counts_unchanged() {
    // Serial-engine golden counts (the sharded engine's deterministic
    // trajectory is distinct; sharded_sim.rs guards it by digest).
    let mut scenario = LimewireScenario::quick(2006);
    scenario.shards = 1;
    let run = scenario.run();
    assert_eq!(
        counts(&run),
        (12670, 7661, 6979),
        "LimeWire quick-study match counts moved: the query-matching \
         overhaul must be observationally identical"
    );
}

#[test]
fn openft_quick_seed_2006_match_counts_unchanged() {
    let mut scenario = OpenFtScenario::quick(2006 ^ 0xF7);
    scenario.shards = 1;
    let run = scenario.run();
    assert_eq!(
        counts(&run),
        (7792, 970, 68),
        "OpenFT quick-study match counts moved: the query-matching \
         overhaul must be observationally identical"
    );
}
