//! The parallel runner must be an exact drop-in: every scenario owns its
//! simulator and RNG streams, so running the two networks on separate
//! threads (or several seeds at once) cannot change a single count.

use p2pmal_core::{LimewireScenario, OpenFtScenario, Study};

fn one_day_study(seed: u64) -> Study {
    let mut lw = LimewireScenario::quick(seed);
    lw.days = 1;
    let mut ft = OpenFtScenario::quick(seed ^ 0xF7);
    ft.days = 1;
    Study::new().with_limewire(lw).with_openft(ft)
}

#[test]
fn parallel_run_matches_sequential_exactly() {
    let sequential = one_day_study(7).run();
    let parallel = one_day_study(7).run_parallel();

    let seq_lw = sequential.limewire.as_ref().expect("limewire ran");
    let par_lw = parallel.limewire.as_ref().expect("limewire ran");
    assert_eq!(seq_lw.sim_metrics, par_lw.sim_metrics);
    assert_eq!(seq_lw.log.queries_issued, par_lw.log.queries_issued);
    assert_eq!(seq_lw.resolved.len(), par_lw.resolved.len());
    for (a, b) in seq_lw.resolved.iter().zip(&par_lw.resolved) {
        assert_eq!(a.record.filename, b.record.filename);
        assert_eq!(a.malware, b.malware);
        assert_eq!(a.sha1, b.sha1);
    }

    let seq_ft = sequential.openft.as_ref().expect("openft ran");
    let par_ft = parallel.openft.as_ref().expect("openft ran");
    assert_eq!(seq_ft.sim_metrics, par_ft.sim_metrics);
    assert_eq!(seq_ft.log.queries_issued, par_ft.log.queries_issued);
    assert_eq!(seq_ft.resolved.len(), par_ft.resolved.len());
}

#[test]
fn parallel_progress_reports_both_networks() {
    let mut seen = Vec::new();
    {
        let seen = std::sync::Mutex::new(&mut seen);
        one_day_study(9).run_parallel_with_progress(|net, day| {
            seen.lock().unwrap().push((net.to_string(), day));
        });
    }
    assert!(seen.contains(&("LimeWire".to_string(), 1)));
    assert!(seen.contains(&("OpenFT".to_string(), 1)));
}
