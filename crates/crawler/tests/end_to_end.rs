//! Miniature end-to-end studies: a small population on each network, a few
//! simulated hours of crawling, and a check that the measurement pipeline
//! (respond → log → download → scan → resolve) produces ground truth.

use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::{ContentStore, FamilyId, HostLibrary, Roster};
use p2pmal_crawler::{FtCrawler, FtCrawlerConfig, GnutellaCrawler, GnutellaCrawlerConfig};
use p2pmal_gnutella::servent::{Servent, ServentConfig, SharedWorld};
use p2pmal_netsim::{NodeSpec, SimConfig, SimDuration, SimTime, Simulator};
use p2pmal_openft::node::{FtConfig, FtNode};
use p2pmal_scanner::Scanner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn world(seed: u64, roster: Roster) -> SharedWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    // Small sizes keep the mini-study's transfers fast.
    let catalog = Catalog::generate(
        &CatalogConfig {
            titles: 200,
            ..Default::default()
        },
        &mut rng,
    );
    SharedWorld::new(
        Arc::new(catalog),
        Arc::new(roster),
        Arc::new(ContentStore::new(seed)),
    )
}

fn scanner(world: &SharedWorld) -> Arc<Scanner> {
    Arc::new(Scanner::new(
        world.roster.signature_db().unwrap().build().unwrap(),
    ))
}

#[test]
fn gnutella_mini_study_measures_ground_truth() {
    let w = world(11, Roster::limewire_2006());
    let mut sim = Simulator::new(SimConfig::default(), 11);
    let mut rng = StdRng::seed_from_u64(12);

    // Two ultrapeers.
    let mut up_addrs = Vec::new();
    for _ in 0..2 {
        let cfg = ServentConfig::ultrapeer().with_bootstrap(up_addrs.clone());
        let id = sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, w.clone(), HostLibrary::new())),
        );
        up_addrs.push(sim.node_addr(id));
    }
    // Three clean leaves sharing small benign applications, two echo-worm
    // leaves (one NATed).
    let mut small_apps: Vec<u32> = w
        .catalog
        .items()
        .iter()
        .filter(|it| {
            it.media == p2pmal_corpus::MediaType::Application && it.variants[0].size < 500_000
        })
        .map(|it| it.id)
        .collect();
    small_apps.truncate(3);
    assert!(
        !small_apps.is_empty(),
        "catalog needs small apps for this test"
    );
    for &id in &small_apps {
        let mut lib = HostLibrary::new();
        lib.add_benign(w.catalog.item(id), 0);
        let cfg = ServentConfig::leaf().with_bootstrap(up_addrs.clone());
        sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, w.clone(), lib)),
        );
    }
    for nat in [false, true] {
        let mut lib = HostLibrary::new();
        lib.infect(w.roster.get(FamilyId(0)), &w.catalog, &mut rng);
        let cfg = ServentConfig::leaf().with_bootstrap(up_addrs.clone());
        let spec = if nat {
            NodeSpec::nat()
        } else {
            NodeSpec::public().listen(6346)
        };
        sim.spawn(spec, Box::new(Servent::new(cfg, w.clone(), lib)));
    }

    // The instrumented client.
    let crawler_cfg = GnutellaCrawlerConfig {
        start_delay: SimDuration::from_secs(120),
        ..Default::default()
    };
    let crawler = sim.spawn(
        NodeSpec::public().listen(6346),
        Box::new(GnutellaCrawler::new(
            ServentConfig::leaf().with_bootstrap(up_addrs.clone()),
            w.clone(),
            scanner(&w),
            crawler_cfg,
        )),
    );

    sim.run_until(SimTime::from_secs(6 * 3600)); // six simulated hours

    let log = sim
        .with_node(crawler, |app, _| {
            app.as_any_mut()
                .unwrap()
                .downcast_mut::<GnutellaCrawler>()
                .unwrap()
                .take_log()
        })
        .unwrap();

    assert!(log.queries_issued > 50, "queries {}", log.queries_issued);
    assert!(!log.responses.is_empty());
    let resolved = log.resolved();
    let downloadable: Vec<_> = resolved.iter().filter(|r| r.record.downloadable).collect();
    assert!(!downloadable.is_empty());
    let scanned = downloadable.iter().filter(|r| r.scanned).count();
    assert!(scanned > 0, "some downloadable responses were scanned");
    let malicious = downloadable.iter().filter(|r| r.malware.is_some()).count();
    assert!(
        malicious > 0,
        "echo worms must show up as malicious responses"
    );
    // Every malicious verdict names the planted family.
    for r in downloadable.iter().filter(|r| r.malware.is_some()) {
        assert_eq!(
            r.malware.as_deref(),
            Some(w.roster.get(FamilyId(0)).name.as_str())
        );
        assert_eq!(r.record.size, w.roster.get(FamilyId(0)).sizes[0]);
    }
    // The NATed worm produced private-source responses.
    assert!(
        resolved.iter().any(|r| {
            r.malware.is_some()
                && p2pmal_netsim::HostAddr::new(r.record.source_ip, r.record.source_port)
                    .is_private()
        }),
        "expected malicious responses advertising private addresses"
    );
    // Dedup kept downloads far below response volume.
    assert!(log.downloads_attempted < log.responses.len() as u64);
}

#[test]
fn openft_mini_study_measures_ground_truth() {
    let w = world(21, Roster::openft_2006());
    let mut sim = Simulator::new(SimConfig::default(), 21);
    let mut rng = StdRng::seed_from_u64(22);

    let mut search_addrs = Vec::new();
    for _ in 0..2 {
        let cfg = FtConfig::search_node().with_bootstrap(search_addrs.clone());
        let id = sim.spawn(
            NodeSpec::public().listen(1215),
            Box::new(FtNode::new(cfg, w.clone(), HostLibrary::new())),
        );
        search_addrs.push(sim.node_addr(id));
    }
    // Benign sharers.
    let mut added = 0;
    for it in w.catalog.items() {
        if added >= 4 {
            break;
        }
        if it.variants[0].size < 400_000 {
            let mut lib = HostLibrary::new();
            lib.add_benign(it, 0);
            let cfg = FtConfig::user().with_bootstrap(search_addrs.clone());
            sim.spawn(
                NodeSpec::public().listen(1215),
                Box::new(FtNode::new(cfg, w.clone(), lib)),
            );
            added += 1;
        }
    }
    // The superspreader.
    let mut lib = HostLibrary::new();
    lib.infect_superspreader(w.roster.get(FamilyId(0)), &w.catalog, 60, &mut rng);
    let cfg = FtConfig::user().with_bootstrap(search_addrs.clone());
    let spreader = sim.spawn(
        NodeSpec::public().listen(1215),
        Box::new(FtNode::new(cfg, w.clone(), lib)),
    );
    let spreader_ip = sim.node_addr(spreader).ip;

    let crawler = sim.spawn(
        NodeSpec::public().listen(1215),
        Box::new(FtCrawler::new(
            FtConfig::user().with_bootstrap(search_addrs.clone()),
            w.clone(),
            scanner(&w),
            FtCrawlerConfig {
                start_delay: SimDuration::from_secs(120),
                ..Default::default()
            },
        )),
    );

    sim.run_until(SimTime::from_secs(6 * 3600));

    let log = sim
        .with_node(crawler, |app, _| {
            app.as_any_mut()
                .unwrap()
                .downcast_mut::<FtCrawler>()
                .unwrap()
                .take_log()
        })
        .unwrap();

    assert!(log.queries_issued > 50);
    assert!(!log.responses.is_empty());
    let resolved = log.resolved();
    let malicious: Vec<_> = resolved.iter().filter(|r| r.malware.is_some()).collect();
    assert!(!malicious.is_empty(), "superspreader baits must be caught");
    // All malicious responses trace back to the single spreader host.
    for r in &malicious {
        assert_eq!(r.record.source_ip, spreader_ip);
        assert_eq!(
            r.malware.as_deref(),
            Some(w.roster.get(FamilyId(0)).name.as_str())
        );
    }
}
