//! The instrumented giFT/OpenFT-side client: a USER node issuing the query
//! workload against every SEARCH node it discovers, logging results and
//! downloading the deduplicated archive/executable responses by MD5.

use crate::log::{CrawlLog, HostKey, HostSizeKey, NameSizeKey, ResponseRecord, ScanOutcome};
use crate::retry::{classify_openft, FailCause, RetryPolicy};
use crate::scan::{FlushResult, ScanPipeline, ScanService};
use crate::trace::DlTrace;
use crate::workload::{Workload, WorkloadConfig};
use p2pmal_gnutella::servent::SharedWorld;
use p2pmal_netsim::{
    telemetry_span as span, App, ConnId, Counter, Ctx, Direction, EventBody, EventCategory, Gauge,
    HostAddr, SimDuration, SimHist, Subsystem, WallHist,
};
use p2pmal_openft::node::{FtConfig, FtDownloadError, FtEvent, FtNode};
use p2pmal_openft::packet::SearchResult;
use p2pmal_scanner::Scanner;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

const CRAWLER_BASE: u64 = 1 << 48;
const TIMER_QUERY: u64 = CRAWLER_BASE | 1;
/// Retry timers: `TIMER_RETRY_BASE | seq` (bit 40 marks the namespace).
const TIMER_RETRY_BASE: u64 = CRAWLER_BASE | (1 << 40);

/// OpenFT crawler tunables.
#[derive(Clone)]
pub struct FtCrawlerConfig {
    pub workload: WorkloadConfig,
    pub max_concurrent_downloads: usize,
    pub start_delay: SimDuration,
    /// Per-object retry budget and pacing. The default
    /// [`RetryPolicy::legacy()`] reproduces the historical behavior: one
    /// immediate re-attempt, no backoff timers.
    pub retry: RetryPolicy,
    /// Verdict-cache capacity for the scan pipeline (0 disables caching).
    pub scan_cache_entries: usize,
    /// Scan-service worker threads. `1` (the default) scans every download
    /// inline; `>1` batches completed downloads and scans them on a
    /// work-stealing pool between sim-time barriers, merging verdicts back
    /// in submission order so all logged outcomes stay identical.
    pub scan_threads: usize,
}

impl Default for FtCrawlerConfig {
    fn default() -> Self {
        FtCrawlerConfig {
            workload: WorkloadConfig::default(),
            max_concurrent_downloads: 16,
            start_delay: SimDuration::from_secs(300),
            retry: RetryPolicy::legacy(),
            scan_cache_entries: crate::scan::DEFAULT_SCAN_CACHE_ENTRIES,
            scan_threads: 1,
        }
    }
}

/// A downloadable object somewhere in its attempt lifecycle.
struct InFlight {
    record: ResponseRecord,
    addr: HostAddr,
    md5: p2pmal_hashes::Md5Digest,
    /// 0 on the first try, incremented per retry.
    attempt: u8,
    /// Provenance of the chain this download descends from; captured at
    /// result-ingest time only while telemetry is live (None otherwise).
    trace: Option<DlTrace>,
}

/// The instrumented OpenFT client.
pub struct FtCrawler {
    node: FtNode,
    config: FtCrawlerConfig,
    workload: Workload,
    pipeline: ScanPipeline,
    service: ScanService,
    log: CrawlLog,
    /// Search id -> query text.
    queries: HashMap<u32, String>,
    query_order: VecDeque<u32>,
    pending: VecDeque<InFlight>,
    in_flight: HashMap<u64, InFlight>,
    /// Objects parked on a backoff timer, by timer token.
    retry_wait: HashMap<u64, InFlight>,
    retry_seq: u64,
    busy_name_size: HashSet<NameSizeKey>,
    busy_host_size: HashSet<HostSizeKey>,
    /// The most recent workload query and its response count so far; the
    /// fan-out histogram records it when the next query closes it out.
    last_query: Option<(u32, u64)>,
}

impl FtCrawler {
    pub fn new(
        mut node_config: FtConfig,
        world: SharedWorld,
        scanner: Arc<Scanner>,
        config: FtCrawlerConfig,
    ) -> Self {
        node_config.collect_events = true;
        node_config.auto_query = None;
        // Benign transfers are multi-megabyte on 2006 links; allow time.
        node_config.download_timeout = SimDuration::from_secs(1800);
        FtCrawler {
            node: FtNode::new(node_config, world, Default::default()),
            workload: Workload::new(config.workload.clone()),
            pipeline: ScanPipeline::new(scanner, config.scan_cache_entries),
            service: ScanService::new(config.scan_threads),
            config,
            log: CrawlLog::new(),
            queries: HashMap::new(),
            query_order: VecDeque::new(),
            pending: VecDeque::new(),
            in_flight: HashMap::new(),
            retry_wait: HashMap::new(),
            retry_seq: 0,
            busy_name_size: HashSet::new(),
            busy_host_size: HashSet::new(),
            last_query: None,
        }
    }

    pub fn log(&self) -> &CrawlLog {
        &self.log
    }

    /// Takes the log out of the crawler (end of the run). Any downloads
    /// still parked in the scan service are merged first so the log is
    /// complete even without a closing barrier.
    pub fn take_log(&mut self) -> CrawlLog {
        if self.service.pending_len() > 0 {
            let result = self.service.flush(&mut self.pipeline);
            self.merge_flush(result);
        }
        std::mem::take(&mut self.log)
    }

    pub fn session_count(&self) -> usize {
        self.node.session_count()
    }

    fn remember_query(&mut self, id: u32, text: String) {
        self.queries.insert(id, text);
        self.query_order.push_back(id);
        if self.query_order.len() > 8192 {
            if let Some(old) = self.query_order.pop_front() {
                self.queries.remove(&old);
            }
        }
    }

    fn ingest_result(&mut self, ctx: &mut Ctx<'_>, from: HostAddr, result: &SearchResult) {
        let Some(query) = self.queries.get(&result.id).cloned() else {
            return;
        };
        let at = ctx.now();
        if let Some((id, responses)) = &mut self.last_query {
            if *id == result.id {
                *responses += 1;
            }
        }
        let record = ResponseRecord {
            at,
            day: at.day(),
            query,
            filename: result.filename.clone(),
            size: result.size as u64,
            source_ip: result.host,
            source_port: result.port,
            needs_push: false,
            host: HostKey::Addr(result.host, result.port),
            downloadable: crate::log::is_downloadable_name(&result.filename),
        };
        let want_download = record.downloadable && self.log.outcome_of(&record).is_none() && {
            let (nk, hk) = CrawlLog::keys_of(&record);
            !self.busy_name_size.contains(&nk) && !self.busy_host_size.contains(&hk)
        };
        if want_download {
            let (nk, hk) = CrawlLog::keys_of(&record);
            self.busy_name_size.insert(nk);
            self.busy_host_size.insert(hk);
            let addr = HostAddr::new(result.host, result.http_port);
            // Provenance: we rooted the trace in `FtNode::search` from our
            // own routable address + search id; the answering SEARCH node
            // (`from`, the session peer) derived the same pair, so its
            // `query_matched` span reconstructs here without coordination.
            let trace = if ctx.telemetry_on(EventCategory::Download)
                || ctx.telemetry_on(EventCategory::Scan)
            {
                let origin = ctx.external_addr();
                let t = span::trace_from_search(origin.ip, origin.port, result.id);
                Some(DlTrace::new(
                    t,
                    span::span_match_addr(t, from.ip, from.port),
                    &record.filename,
                    record.size,
                    &addr.to_string(),
                ))
            } else {
                None
            };
            self.pending.push_back(InFlight {
                record: record.clone(),
                addr,
                md5: result.md5,
                attempt: 0,
                trace,
            });
        }
        self.log.responses.push(record);
        self.start_downloads(ctx);
    }

    fn start_downloads(&mut self, ctx: &mut Ctx<'_>) {
        while self.in_flight.len() < self.config.max_concurrent_downloads {
            let Some(fl) = self.pending.pop_front() else {
                break;
            };
            if fl.attempt == 0 {
                self.log.downloads_attempted += 1;
                ctx.registry().inc(Counter::DownloadsStarted);
            }
            if ctx.telemetry_on(EventCategory::Download) {
                let body = EventBody::DownloadStart {
                    name: fl.record.filename.clone(),
                    size: fl.record.size,
                    host: fl.addr.to_string(),
                    attempt: fl.attempt,
                };
                match &fl.trace {
                    Some(tr) => ctx.emit_spanned(body, tr.start(fl.attempt)),
                    None => ctx.emit(body),
                }
            }
            let id = self.node.begin_download(ctx, fl.addr, fl.md5);
            self.in_flight.insert(id, fl);
        }
        ctx.registry()
            .set_gauge(Gauge::InFlightDownloads, self.in_flight.len() as u64);
    }

    fn finish(&mut self, record: &ResponseRecord, outcome: ScanOutcome) {
        let (nk, hk) = CrawlLog::keys_of(record);
        self.busy_name_size.remove(&nk);
        self.busy_host_size.remove(&hk);
        self.log.record_outcome(record, outcome);
    }

    /// Record every merged verdict from a batch flush, releasing the busy
    /// keys the deferred downloads were holding.
    fn merge_flush(&mut self, result: FlushResult) {
        self.log.scan = self.pipeline.stats();
        for out in result.outcomes {
            let detections = out
                .verdict
                .detections
                .iter()
                .map(|d| d.name.clone())
                .collect();
            self.finish(
                &out.record,
                ScanOutcome::Scanned {
                    sha1: out.digest,
                    len: out.body_len,
                    detections,
                },
            );
        }
    }

    /// Drain the scan-service batch: parallel hash+scan, then in-order
    /// merge. Pool wall time lands in the `scan` profiler bucket, replay in
    /// `scan_merge`.
    fn flush_scans(&mut self, ctx: &mut Ctx<'_>) {
        if self.service.pending_len() == 0 {
            return;
        }
        let wall_start = std::time::Instant::now();
        let result = self.service.flush(&mut self.pipeline);
        ctx.record_profile(Subsystem::Scan, result.prepare_nanos);
        ctx.record_profile(Subsystem::ScanMerge, result.merge_nanos);
        ctx.registry().record_wall(
            WallHist::ScanWallUs,
            wall_start.elapsed().as_micros() as u64,
        );
        self.merge_flush(result);
        self.start_downloads(ctx);
    }

    /// Park a successfully downloaded body for the next batch flush. All
    /// verdict-independent accounting happens now, at the same sim instant
    /// the inline path would have done it; the busy keys stay held until
    /// the merged verdict lands, suppressing duplicate fetches exactly as
    /// the recorded outcome would.
    fn defer_scan(&mut self, ctx: &mut Ctx<'_>, fl: InFlight, body: Vec<u8>) {
        if fl.attempt > 0 {
            self.log.retry_successes += 1;
        }
        let latency_us = (ctx.now() - fl.record.at).as_micros();
        ctx.registry()
            .record(SimHist::DownloadLatencyUs, latency_us);
        ctx.registry()
            .record(SimHist::DownloadAttempts, fl.attempt as u64 + 1);
        ctx.registry().inc(Counter::ScanVerdicts);
        if ctx.telemetry_on(EventCategory::Download) {
            let ev = EventBody::DownloadComplete {
                name: fl.record.filename.clone(),
                ok: true,
                latency_us,
                attempts: fl.attempt + 1,
            };
            match &fl.trace {
                Some(tr) => ctx.emit_spanned(ev, tr.done(fl.attempt)),
                None => ctx.emit(ev),
            }
        }
        self.service.submit(fl.record, body, fl.trace);
        if self.service.should_flush() {
            self.flush_scans(ctx);
        }
        self.start_downloads(ctx);
    }

    fn on_download_done(
        &mut self,
        ctx: &mut Ctx<'_>,
        id: u64,
        result: Result<Vec<u8>, FtDownloadError>,
    ) {
        let Some(fl) = self.in_flight.remove(&id) else {
            return;
        };
        match result {
            Ok(body) => {
                // Defer to the batched scan service when it cannot change
                // observable behavior: backoff-mode retries need the verdict
                // synchronously (unscannable bodies re-fetch), and per-scan
                // telemetry must interleave exactly as the inline path does.
                if self.service.deferring()
                    && !self.config.retry.uses_backoff()
                    && !ctx.telemetry_on(EventCategory::Scan)
                {
                    self.defer_scan(ctx, fl, body);
                    return;
                }
                let scan_start = std::time::Instant::now();
                let (sha1, verdict) = ctx.time(Subsystem::Scan, || {
                    self.pipeline.scan(&fl.record.filename, &body)
                });
                ctx.registry().record_wall(
                    WallHist::ScanWallUs,
                    scan_start.elapsed().as_micros() as u64,
                );
                self.log.scan = self.pipeline.stats();
                if self.config.retry.uses_backoff() && verdict.unscannable() {
                    // Undecodable archive bytes: retry for a fresh copy
                    // rather than recording corruption as a clean verdict.
                    let reason = verdict.decode_errors.first().cloned().unwrap_or_default();
                    self.fail_or_retry(
                        ctx,
                        fl,
                        FailCause::Corrupt,
                        ScanOutcome::Unscannable { reason },
                    );
                    return;
                }
                if fl.attempt > 0 {
                    self.log.retry_successes += 1;
                }
                let latency_us = (ctx.now() - fl.record.at).as_micros();
                ctx.registry()
                    .record(SimHist::DownloadLatencyUs, latency_us);
                ctx.registry()
                    .record(SimHist::DownloadAttempts, fl.attempt as u64 + 1);
                ctx.registry().inc(Counter::ScanVerdicts);
                if ctx.telemetry_on(EventCategory::Download) {
                    let ev = EventBody::DownloadComplete {
                        name: fl.record.filename.clone(),
                        ok: true,
                        latency_us,
                        attempts: fl.attempt + 1,
                    };
                    match &fl.trace {
                        Some(tr) => ctx.emit_spanned(ev, tr.done(fl.attempt)),
                        None => ctx.emit(ev),
                    }
                }
                if ctx.telemetry_on(EventCategory::Scan) {
                    let ev = EventBody::ScanVerdict {
                        name: fl.record.filename.clone(),
                        sha1: sha1.to_hex(),
                        len: body.len() as u64,
                        detections: verdict.detections.len() as u64,
                    };
                    match &fl.trace {
                        Some(tr) => ctx.emit_spanned(ev, tr.scan()),
                        None => ctx.emit(ev),
                    }
                    for (i, d) in verdict.detections.iter().enumerate() {
                        let ev = EventBody::Infection {
                            name: fl.record.filename.clone(),
                            family: d.name.clone(),
                            sha1: sha1.to_hex(),
                        };
                        match &fl.trace {
                            Some(tr) => ctx.emit_spanned(ev, tr.infection(i as u64)),
                            None => ctx.emit(ev),
                        }
                    }
                }
                let detections = verdict.detections.iter().map(|d| d.name.clone()).collect();
                self.finish(
                    &fl.record.clone(),
                    ScanOutcome::Scanned {
                        sha1,
                        len: body.len() as u64,
                        detections,
                    },
                );
                self.start_downloads(ctx);
            }
            Err(e) => {
                let cause = classify_openft(&e);
                self.fail_or_retry(ctx, fl, cause, ScanOutcome::Unreachable);
            }
        }
    }

    /// One attempt failed: retry within budget (immediately in legacy mode,
    /// via a backoff timer otherwise), or record the terminal outcome.
    fn fail_or_retry(
        &mut self,
        ctx: &mut Ctx<'_>,
        mut fl: InFlight,
        cause: FailCause,
        terminal: ScanOutcome,
    ) {
        self.log.failures.record(cause);
        if fl.attempt < self.config.retry.max_retries {
            fl.attempt += 1;
            self.log.retries_scheduled += 1;
            ctx.registry().inc(Counter::DownloadRetries);
            if ctx.telemetry_on(EventCategory::Download) {
                let ev = EventBody::DownloadRetry {
                    name: fl.record.filename.clone(),
                    attempt: fl.attempt,
                    cause: cause.label().to_string(),
                };
                match &fl.trace {
                    Some(tr) => ctx.emit_spanned(ev, tr.retry(fl.attempt)),
                    None => ctx.emit(ev),
                }
            }
            if self.config.retry.uses_backoff() {
                let token = TIMER_RETRY_BASE | self.retry_seq;
                self.retry_seq += 1;
                let delay = self.config.retry.delay_for(fl.attempt, ctx.rng());
                self.retry_wait.insert(token, fl);
                ctx.set_timer(delay, token);
                self.start_downloads(ctx);
            } else {
                // Legacy: immediate in-line re-attempt (pre-fault-layer
                // path, preserved bit-for-bit).
                let new_id = self.node.begin_download(ctx, fl.addr, fl.md5);
                self.in_flight.insert(new_id, fl);
            }
            return;
        }
        self.log.downloads_failed += 1;
        if matches!(terminal, ScanOutcome::Unscannable { .. }) {
            self.log.unscannable += 1;
        }
        let latency_us = (ctx.now() - fl.record.at).as_micros();
        ctx.registry()
            .record(SimHist::DownloadLatencyUs, latency_us);
        ctx.registry()
            .record(SimHist::DownloadAttempts, fl.attempt as u64 + 1);
        if ctx.telemetry_on(EventCategory::Download) {
            let ev = EventBody::DownloadComplete {
                name: fl.record.filename.clone(),
                ok: false,
                latency_us,
                attempts: fl.attempt + 1,
            };
            match &fl.trace {
                Some(tr) => ctx.emit_spanned(ev, tr.done(fl.attempt)),
                None => ctx.emit(ev),
            }
        }
        self.finish(&fl.record.clone(), terminal);
        self.start_downloads(ctx);
    }

    /// A backoff timer fired: put the object back at the head of the queue.
    fn on_retry_fire(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some(fl) = self.retry_wait.remove(&token) {
            self.pending.push_front(fl);
            self.start_downloads(ctx);
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        for ev in self.node.drain_events() {
            match ev {
                FtEvent::SearchResult { from, result, .. } => {
                    self.ingest_result(ctx, from, &result)
                }
                FtEvent::DownloadDone { id, result, .. } => self.on_download_done(ctx, id, result),
                _ => {}
            }
        }
    }

    fn issue_query(&mut self, ctx: &mut Ctx<'_>) {
        let catalog = self.node.world().catalog.clone();
        let q = self.workload.sample_query(&catalog, ctx.rng());
        let id = self.node.search(ctx, &q);
        // Close out the previous query's fan-out count (the final in-flight
        // query is never recorded — deterministic either way).
        if let Some((_, responses)) = self.last_query.replace((id, 0)) {
            ctx.registry().record(SimHist::ResponsesPerQuery, responses);
        }
        ctx.registry().inc(Counter::QueriesIssued);
        // `query_issued` is emitted (span-rooted) inside `FtNode::search`,
        // so ambient auto-queries and crawler workload queries share one
        // emission point and every trace has a root.
        self.remember_query(id, q);
        self.log.queries_issued += 1;
        let next = self.workload.next_interval_secs(ctx.now(), ctx.rng());
        ctx.set_timer(SimDuration::from_secs(next), TIMER_QUERY);
    }
}

impl App for FtCrawler {
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn memory_estimate(&self) -> u64 {
        // Crawler-side queues are unbounded-but-small; the embedded node
        // carries the protocol state worth accounting.
        self.node.memory_estimate()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.node.on_start(ctx);
        ctx.set_timer(self.config.start_delay, TIMER_QUERY);
    }

    fn on_barrier(&mut self, ctx: &mut Ctx<'_>) {
        self.flush_scans(ctx);
    }

    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, dir: Direction, peer: HostAddr) {
        self.node.on_connected(ctx, conn, dir, peer);
        self.pump(ctx);
    }

    fn on_connect_failed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.node.on_connect_failed(ctx, conn);
        self.pump(ctx);
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        self.node.on_data(ctx, conn, data);
        self.pump(ctx);
    }

    fn on_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.node.on_closed(ctx, conn);
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_QUERY {
            self.issue_query(ctx);
        } else if token & TIMER_RETRY_BASE == TIMER_RETRY_BASE {
            self.on_retry_fire(ctx, token);
        } else if token & CRAWLER_BASE == 0 {
            self.node.on_timer(ctx, token);
        }
        self.pump(ctx);
    }
}
