//! The measurement log: what the instrumented clients record.
//!
//! The study's unit of measurement is the *query response*. Every response
//! row carries the query that elicited it, the advertised file name/size,
//! and the advertised source. Downloadable responses (archives and
//! executables, judged by extension exactly as the paper did) are fetched,
//! hashed, and scanned; the resulting verdict is attached to every response
//! that resolves to the same content.
//!
//! Download deduplication mirrors the study's practicality constraint: the
//! same (filename, size) pair is fetched once, and the same (host, size)
//! pair is fetched once — the second rule is what keeps query-echo worms
//! (fresh filename per query, constant payload) from forcing one download
//! per response.

use p2pmal_hashes::Sha1Digest;
use p2pmal_netsim::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Which instrumented network produced a log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Network {
    Limewire,
    OpenFt,
}

impl Network {
    pub fn label(self) -> &'static str {
        match self {
            Network::Limewire => "LimeWire",
            Network::OpenFt => "OpenFT",
        }
    }
}

/// Extensions the study counted as the "archives and executables" class.
pub const DOWNLOADABLE_EXTENSIONS: [&str; 7] = ["exe", "zip", "rar", "com", "scr", "bat", "msi"];

/// True when `name`'s extension puts it in the downloadable class.
pub fn is_downloadable_name(name: &str) -> bool {
    match name.rsplit_once('.') {
        Some((_, ext)) => {
            let ext = ext.to_ascii_lowercase();
            DOWNLOADABLE_EXTENSIONS.contains(&ext.as_str())
        }
        None => false,
    }
}

/// Identity of a responding host, as well as the crawler can observe it.
/// Gnutella hits carry a stable servent GUID; OpenFT results carry the
/// serving host's address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HostKey {
    Guid([u8; 16]),
    Addr(Ipv4Addr, u16),
}

/// One logged query response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseRecord {
    pub at: SimTime,
    /// Simulated-day index, the time-series bucket.
    pub day: u64,
    pub query: String,
    pub filename: String,
    pub size: u64,
    /// Address the responder *advertised* (RFC 1918 leaks live here).
    pub source_ip: Ipv4Addr,
    pub source_port: u16,
    /// The responder declared it needs a PUSH (Gnutella only).
    pub needs_push: bool,
    pub host: HostKey,
    /// Extension-classified downloadable (archive/executable) response.
    pub downloadable: bool,
}

/// Content-level result of downloading + scanning one deduplicated object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanOutcome {
    /// Downloaded and scanned.
    Scanned {
        sha1: Sha1Digest,
        len: u64,
        /// Detected malware names (empty = clean).
        detections: Vec<String>,
    },
    /// All download attempts failed.
    Unreachable,
    /// The body was downloaded but its content could not be decoded for
    /// scanning (truncated or bit-flipped archive). Distinct from a silent
    /// clean verdict: the study must not count garbage as benign.
    Unscannable {
        /// First decode error, e.g. `corrupt archive (truncated)`.
        reason: String,
    },
}

impl ScanOutcome {
    pub fn is_malicious(&self) -> bool {
        matches!(self, ScanOutcome::Scanned { detections, .. } if !detections.is_empty())
    }

    /// The primary (first) detection, the paper's attribution rule.
    pub fn primary(&self) -> Option<&str> {
        match self {
            ScanOutcome::Scanned { detections, .. } => detections.first().map(|s| s.as_str()),
            ScanOutcome::Unreachable | ScanOutcome::Unscannable { .. } => None,
        }
    }
}

/// Dedup keys a response resolves through.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NameSizeKey(pub String, pub u64);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HostSizeKey(pub HostKey, pub u64);

/// A response joined with its scan verdict (produced by
/// [`CrawlLog::resolved`]).
#[derive(Debug, Clone)]
pub struct ResolvedResponse {
    pub record: ResponseRecord,
    /// `None` when the content was never successfully scanned.
    pub malware: Option<String>,
    /// Whether the content was scanned at all (clean or dirty).
    pub scanned: bool,
    /// SHA-1 of the downloaded content, when scanned.
    pub sha1: Option<Sha1Digest>,
}

/// The full measurement log for one network over one collection run.
#[derive(Debug, Default)]
pub struct CrawlLog {
    pub responses: Vec<ResponseRecord>,
    /// Scan outcomes by dedup key.
    pub by_name_size: HashMap<NameSizeKey, ScanOutcome>,
    pub by_host_size: HashMap<HostSizeKey, ScanOutcome>,
    /// Diagnostics.
    pub queries_issued: u64,
    pub downloads_attempted: u64,
    pub downloads_failed: u64,
    /// Failed download *attempts* bucketed by cause (including attempts
    /// that a later retry recovered). Invariant:
    /// `failures.total() == retries_scheduled + downloads_failed`.
    pub failures: crate::retry::FailureBreakdown,
    /// Retry attempts scheduled (backoff mode) or taken in-line (legacy
    /// fallback), beyond each object's first attempt.
    pub retries_scheduled: u64,
    /// Retried objects that ultimately downloaded successfully.
    pub retry_successes: u64,
    /// Gnutella Direct→PUSH fallbacks (a subset of the retries above);
    /// previously these were invisible in the log.
    pub push_fallbacks: u64,
    /// Downloaded bodies recorded [`ScanOutcome::Unscannable`].
    pub unscannable: u64,
    /// Download→hash→scan pipeline counters (mirrored from the crawler's
    /// [`crate::scan::ScanPipeline`] after every scan).
    pub scan: crate::scan::ScanStats,
}

impl CrawlLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Dedup keys for a response.
    pub fn keys_of(r: &ResponseRecord) -> (NameSizeKey, HostSizeKey) {
        (
            NameSizeKey(r.filename.to_ascii_lowercase(), r.size),
            HostSizeKey(r.host.clone(), r.size),
        )
    }

    /// Whether this response's content already has (or is known to never
    /// get) a verdict.
    pub fn outcome_of(&self, r: &ResponseRecord) -> Option<&ScanOutcome> {
        let (nk, hk) = Self::keys_of(r);
        self.by_name_size
            .get(&nk)
            .or_else(|| self.by_host_size.get(&hk))
    }

    /// Records a scan outcome under both dedup keys.
    pub fn record_outcome(&mut self, r: &ResponseRecord, outcome: ScanOutcome) {
        let (nk, hk) = Self::keys_of(r);
        self.by_name_size.insert(nk, outcome.clone());
        self.by_host_size.insert(hk, outcome);
    }

    /// Joins every response with its verdict.
    pub fn resolved(&self) -> Vec<ResolvedResponse> {
        self.responses
            .iter()
            .map(|r| {
                let outcome = self.outcome_of(r);
                let scanned = matches!(outcome, Some(ScanOutcome::Scanned { .. }));
                let malware = outcome.and_then(|o| o.primary()).map(|s| s.to_string());
                let sha1 = match outcome {
                    Some(ScanOutcome::Scanned { sha1, .. }) => Some(*sha1),
                    _ => None,
                };
                ResolvedResponse {
                    record: r.clone(),
                    malware,
                    scanned,
                    sha1,
                }
            })
            .collect()
    }

    /// Downloadable responses (the paper's denominators).
    pub fn downloadable_count(&self) -> usize {
        self.responses.iter().filter(|r| r.downloadable).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, size: u64, host: HostKey) -> ResponseRecord {
        ResponseRecord {
            at: SimTime::ZERO,
            day: 0,
            query: "q".into(),
            filename: name.into(),
            size,
            source_ip: Ipv4Addr::new(1, 2, 3, 4),
            source_port: 6346,
            needs_push: false,
            host,
            downloadable: is_downloadable_name(name),
        }
    }

    #[test]
    fn extension_classification() {
        assert!(is_downloadable_name("setup.exe"));
        assert!(is_downloadable_name("pack.ZIP"));
        assert!(is_downloadable_name("archive.rar"));
        assert!(is_downloadable_name("installer.msi"));
        assert!(!is_downloadable_name("song.mp3"));
        assert!(!is_downloadable_name("movie.avi"));
        assert!(!is_downloadable_name("noextension"));
    }

    #[test]
    fn dedup_by_name_size_spans_hosts() {
        let mut log = CrawlLog::new();
        let a = record(
            "tool.exe",
            1000,
            HostKey::Addr(Ipv4Addr::new(1, 1, 1, 1), 80),
        );
        let b = record(
            "tool.exe",
            1000,
            HostKey::Addr(Ipv4Addr::new(2, 2, 2, 2), 80),
        );
        log.record_outcome(
            &a,
            ScanOutcome::Scanned {
                sha1: p2pmal_hashes::sha1(b"x"),
                len: 1000,
                detections: vec!["W32.Test".into()],
            },
        );
        assert!(
            log.outcome_of(&b).is_some(),
            "same name+size resolves across hosts"
        );
        assert!(log.outcome_of(&b).unwrap().is_malicious());
    }

    #[test]
    fn dedup_by_host_size_spans_names() {
        let mut log = CrawlLog::new();
        let host = HostKey::Guid([7; 16]);
        let a = record("query_one.exe", 58_368, host.clone());
        let b = record("query_two.exe", 58_368, host.clone());
        let c = record("query_two.exe", 1111, host); // different size: miss
        log.record_outcome(
            &a,
            ScanOutcome::Scanned {
                sha1: p2pmal_hashes::sha1(b"worm"),
                len: 58_368,
                detections: vec![],
            },
        );
        assert!(
            log.outcome_of(&b).is_some(),
            "echo worm resolves by host+size"
        );
        assert!(log.outcome_of(&c).is_none());
    }

    #[test]
    fn resolved_joins_verdicts() {
        let mut log = CrawlLog::new();
        let host = HostKey::Guid([1; 16]);
        let a = record("bad.exe", 10, host.clone());
        let b = record("unfetched.exe", 20, host.clone());
        let c = record("dead.exe", 30, host);
        log.responses.extend([a.clone(), b, c.clone()]);
        log.record_outcome(
            &a,
            ScanOutcome::Scanned {
                sha1: p2pmal_hashes::sha1(b"m"),
                len: 10,
                detections: vec!["W32.X".into(), "W32.Y".into()],
            },
        );
        log.record_outcome(&c, ScanOutcome::Unreachable);
        let resolved = log.resolved();
        assert_eq!(
            resolved[0].malware.as_deref(),
            Some("W32.X"),
            "primary detection"
        );
        assert!(resolved[0].scanned);
        assert!(!resolved[1].scanned);
        assert_eq!(resolved[1].malware, None);
        assert!(!resolved[2].scanned, "unreachable is not scanned");
        assert_eq!(log.downloadable_count(), 3);
    }
}
