//! Download retry policy and per-cause failure accounting.
//!
//! The study's crawlers ran against a hostile network: dead hosts, NAT
//! timeouts, transfers reset mid-body. With netsim's fault injection those
//! pathologies now reach the crawlers, and this module decides what they do
//! about them: a bounded retry budget with exponential backoff + jitter
//! (over sim-time timers), and a [`FailureBreakdown`] classifying every
//! terminal failure by cause in the [`crate::log::CrawlLog`].
//!
//! The default [`RetryPolicy::legacy()`] (`backoff_base == 0`) reproduces
//! the historical behavior — one immediate fallback attempt, no timers —
//! exactly, which is what keeps the fault-free seed-2006 study
//! byte-identical to the pre-fault-injection build.

use p2pmal_gnutella::servent::DownloadError;
use p2pmal_netsim::SimDuration;
use p2pmal_openft::node::FtDownloadError;
use rand::rngs::StdRng;
use rand::Rng;

/// Why a download attempt (or a whole object) terminally failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailCause {
    /// The transfer stalled past the download timeout (lost chunks, dead
    /// host mid-transfer, PUSH never answered).
    Timeout,
    /// The connection reset or closed mid-transfer.
    Reset,
    /// The byte stream was garbled or cut short (framing/protocol errors).
    Truncated,
    /// The peer was never reachable (dead, NATed, no PUSH route).
    PeerGone,
    /// The body arrived but its archive content could not be decoded.
    Corrupt,
    /// Everything else (HTTP-level refusals and the like).
    Other,
}

impl FailCause {
    /// Stable snake_case label (telemetry journal `cause` field).
    pub fn label(self) -> &'static str {
        match self {
            FailCause::Timeout => "timeout",
            FailCause::Reset => "reset",
            FailCause::Truncated => "truncated",
            FailCause::PeerGone => "peer_gone",
            FailCause::Corrupt => "corrupt",
            FailCause::Other => "other",
        }
    }
}

/// Terminal download failures bucketed by [`FailCause`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FailureBreakdown {
    pub timeout: u64,
    pub reset: u64,
    pub truncated: u64,
    pub peer_gone: u64,
    pub corrupt: u64,
    pub other: u64,
}

impl FailureBreakdown {
    pub fn record(&mut self, cause: FailCause) {
        match cause {
            FailCause::Timeout => self.timeout += 1,
            FailCause::Reset => self.reset += 1,
            FailCause::Truncated => self.truncated += 1,
            FailCause::PeerGone => self.peer_gone += 1,
            FailCause::Corrupt => self.corrupt += 1,
            FailCause::Other => self.other += 1,
        }
    }

    pub fn total(&self) -> u64 {
        self.timeout + self.reset + self.truncated + self.peer_gone + self.corrupt + self.other
    }

    /// Labelled parts for rendering (summary lines, trace output).
    pub fn parts(&self) -> [(&'static str, u64); 6] {
        [
            ("timeout", self.timeout),
            ("reset", self.reset),
            ("truncated", self.truncated),
            ("peer_gone", self.peer_gone),
            ("corrupt", self.corrupt),
            ("other", self.other),
        ]
    }
}

/// Classifies a Gnutella download error.
pub fn classify_gnutella(err: &DownloadError) -> FailCause {
    match err {
        DownloadError::ConnectFailed | DownloadError::NoPushRoute => FailCause::PeerGone,
        DownloadError::Timeout => FailCause::Timeout,
        DownloadError::Protocol(msg) if msg.contains("closed") || msg.contains("dropped") => {
            FailCause::Reset
        }
        DownloadError::Protocol(_) => FailCause::Truncated,
        DownloadError::Http(_) => FailCause::Other,
    }
}

/// Classifies an OpenFT download error.
pub fn classify_openft(err: &FtDownloadError) -> FailCause {
    match err {
        FtDownloadError::ConnectFailed => FailCause::PeerGone,
        FtDownloadError::Timeout => FailCause::Timeout,
        FtDownloadError::Protocol(msg) if msg.contains("closed") || msg.contains("dropped") => {
            FailCause::Reset
        }
        FtDownloadError::Protocol(_) => FailCause::Truncated,
        FtDownloadError::Http(_) => FailCause::Other,
    }
}

/// Bounded retry with exponential backoff + jitter, over sim-time timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts allowed after the first try.
    pub max_retries: u8,
    /// Backoff before retry `n` is `base * 2^n` (plus jitter), capped at
    /// [`RetryPolicy::backoff_cap`]. **Zero selects legacy mode**: one
    /// immediate in-line fallback, no timers — the pre-fault-layer code
    /// path, bit-for-bit.
    pub backoff_base: SimDuration,
    /// Upper bound on a single backoff delay (before jitter).
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::legacy()
    }
}

impl RetryPolicy {
    /// Historical behavior: one immediate fallback attempt, no backoff.
    pub const fn legacy() -> Self {
        RetryPolicy {
            max_retries: 1,
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
        }
    }

    /// Backoff mode: up to `max_retries` re-attempts, delayed by
    /// `base_secs * 2^attempt` (capped at 16× base) plus up to 50% jitter.
    pub fn backoff(max_retries: u8, base_secs: u64) -> Self {
        RetryPolicy {
            max_retries,
            backoff_base: SimDuration::from_secs(base_secs),
            backoff_cap: SimDuration::from_secs(base_secs.saturating_mul(16)),
        }
    }

    /// True when failures reschedule through timers rather than retrying
    /// in-line.
    pub fn uses_backoff(&self) -> bool {
        self.backoff_base > SimDuration::ZERO
    }

    /// Delay before retry number `attempt` (1-based): exponential backoff
    /// with uniform jitter in `[0, delay/2]`.
    pub fn delay_for(&self, attempt: u8, rng: &mut StdRng) -> SimDuration {
        let shift = u32::from(attempt.saturating_sub(1)).min(16);
        let base = self
            .backoff_base
            .as_micros()
            .saturating_mul(1u64 << shift)
            .min(
                self.backoff_cap
                    .as_micros()
                    .max(self.backoff_base.as_micros()),
            );
        let jitter = if base > 1 {
            rng.gen_range(0..=base / 2)
        } else {
            0
        };
        SimDuration::from_micros(base + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn legacy_is_immediate() {
        let p = RetryPolicy::legacy();
        assert!(!p.uses_backoff());
        assert_eq!(p.max_retries, 1);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::backoff(4, 10);
        assert!(p.uses_backoff());
        let mut rng = StdRng::seed_from_u64(1);
        let d1 = p.delay_for(1, &mut rng);
        let d4 = p.delay_for(4, &mut rng);
        assert!(d1 >= SimDuration::from_secs(10));
        assert!(d1 <= SimDuration::from_secs(15));
        // attempt 4 → 80s base, within the 160s cap, ≤ 120s with jitter
        assert!(d4 >= SimDuration::from_secs(80));
        assert!(d4 <= SimDuration::from_secs(120));
        // far attempts stay at the cap
        let d9 = p.delay_for(9, &mut rng);
        assert!(d9 <= SimDuration::from_secs(240));
    }

    #[test]
    fn breakdown_records_every_cause() {
        let mut b = FailureBreakdown::default();
        for c in [
            FailCause::Timeout,
            FailCause::Reset,
            FailCause::Truncated,
            FailCause::PeerGone,
            FailCause::Corrupt,
            FailCause::Other,
        ] {
            b.record(c);
        }
        assert_eq!(b.total(), 6);
        assert!(b.parts().iter().all(|(_, n)| *n == 1));
    }

    #[test]
    fn gnutella_classification() {
        assert_eq!(
            classify_gnutella(&DownloadError::ConnectFailed),
            FailCause::PeerGone
        );
        assert_eq!(
            classify_gnutella(&DownloadError::NoPushRoute),
            FailCause::PeerGone
        );
        assert_eq!(
            classify_gnutella(&DownloadError::Timeout),
            FailCause::Timeout
        );
        assert_eq!(
            classify_gnutella(&DownloadError::Protocol(
                "connection closed mid-transfer".into()
            )),
            FailCause::Reset
        );
        assert_eq!(
            classify_gnutella(&DownloadError::Protocol("dropped".into())),
            FailCause::Reset
        );
        assert_eq!(
            classify_gnutella(&DownloadError::Protocol("bad chunk header".into())),
            FailCause::Truncated
        );
        assert_eq!(
            classify_gnutella(&DownloadError::Http(503)),
            FailCause::Other
        );
    }

    #[test]
    fn openft_classification() {
        assert_eq!(
            classify_openft(&FtDownloadError::ConnectFailed),
            FailCause::PeerGone
        );
        assert_eq!(
            classify_openft(&FtDownloadError::Protocol("closed mid-transfer".into())),
            FailCause::Reset
        );
        assert_eq!(
            classify_openft(&FtDownloadError::Http(404)),
            FailCause::Other
        );
    }
}
