//! The study's instrumentation layer.
//!
//! Kalafut et al. instrumented two clients — LimeWire on Gnutella and giFT
//! on OpenFT — to log every query response for over a month, download the
//! responses whose names marked them as archives or executables, and scan
//! the downloads with an AV engine. This crate is that instrumentation:
//!
//! * [`workload`] — the continuous query workload (catalog popularity plus
//!   generic 2006-era search strings, diurnally modulated);
//! * [`log`] — response records, download dedup (by filename+size and by
//!   host+size), scan outcomes, and the response↔verdict join;
//! * [`gnutella`] — [`gnutella::GnutellaCrawler`], the instrumented leaf
//!   servent (queries, hit logging, direct + PUSH downloads, scanning);
//! * [`openft`] — [`openft::FtCrawler`], the instrumented USER node
//!   (searches against every discovered SEARCH node, MD5 downloads,
//!   scanning).
//!
//! Both crawlers are [`p2pmal_netsim::App`]s; a harness (see
//! `p2pmal-core`) spawns them into a simulated network, runs simulated
//! weeks, and takes the [`log::CrawlLog`] out for analysis.

pub mod gnutella;
pub mod log;
pub mod openft;
pub mod retry;
pub mod scan;
pub mod trace;
pub mod workload;

pub use gnutella::{GnutellaCrawler, GnutellaCrawlerConfig};
pub use log::{
    is_downloadable_name, CrawlLog, HostKey, Network, ResolvedResponse, ResponseRecord, ScanOutcome,
};
pub use openft::{FtCrawler, FtCrawlerConfig};
pub use retry::{FailCause, FailureBreakdown, RetryPolicy};
pub use scan::{
    scan_threads_from_env, FlushOutcome, FlushResult, ScanPipeline, ScanService, ScanStats,
    DEFAULT_SCAN_CACHE_ENTRIES,
};
pub use trace::DlTrace;
pub use workload::{Workload, WorkloadConfig, GENERIC_TERMS};
