//! The query workload the instrumented clients issue.
//!
//! The study ran its clients for over a month, continuously searching. Our
//! workload mixes two realistic sources:
//!
//! * popularity-sampled keywords from the benign catalog (what users type
//!   when they want actual content), and
//! * a static list of generic 2006-era search strings (celebrity names,
//!   "free" + product queries) that often match nothing benign — the
//!   queries on which *every* downloadable response tends to be a
//!   query-echo worm.
//!
//! A diurnal modulation scales the query rate over the simulated day, so
//! daily time-series plots have realistic shape rather than a flat line.

use p2pmal_corpus::Catalog;
use p2pmal_netsim::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

/// Generic search strings with no catalog counterpart.
pub const GENERIC_TERMS: &[&str] = &[
    "free music",
    "top hits 2006",
    "dvd ripper",
    "windows xp key",
    "screensaver pack",
    "funny video",
    "best of collection",
    "full album",
    "game demo",
    "free ringtones",
    "antivirus download",
    "photo editor",
];

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Probability that a query is drawn from the generic list instead of
    /// the catalog.
    pub generic_fraction: f64,
    /// Mean seconds between queries at the daily peak.
    pub base_interval_secs: u64,
    /// Ratio of trough to peak query rate over the diurnal cycle (0..1].
    pub diurnal_floor: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            generic_fraction: 0.25,
            base_interval_secs: 60,
            diurnal_floor: 0.4,
        }
    }
}

/// A deterministic query generator.
#[derive(Debug, Clone)]
pub struct Workload {
    config: WorkloadConfig,
}

impl Workload {
    pub fn new(config: WorkloadConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.generic_fraction));
        assert!(config.diurnal_floor > 0.0 && config.diurnal_floor <= 1.0);
        assert!(config.base_interval_secs > 0);
        Workload { config }
    }

    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Draws the next query string.
    pub fn sample_query(&self, catalog: &Catalog, rng: &mut StdRng) -> String {
        if rng.gen_bool(self.config.generic_fraction) {
            GENERIC_TERMS[rng.gen_range(0..GENERIC_TERMS.len())].to_string()
        } else {
            catalog.sample_query(rng)
        }
    }

    /// The diurnal rate multiplier at `now` (1.0 at peak, `diurnal_floor`
    /// at trough), a smooth cosine over the 24h simulated day.
    pub fn diurnal_factor(&self, now: SimTime) -> f64 {
        let day_fraction = (now.as_micros() % (86_400 * 1_000_000)) as f64 / (86_400.0 * 1e6);
        let floor = self.config.diurnal_floor;
        // Peak at 20:00, trough at 08:00 simulated time.
        let phase = (day_fraction - 20.0 / 24.0) * std::f64::consts::TAU;
        let wave = (phase.cos() + 1.0) / 2.0; // 1 at peak, 0 at trough
        floor + (1.0 - floor) * wave
    }

    /// Seconds until the next query: exponential around the diurnally
    /// modulated mean.
    pub fn next_interval_secs(&self, now: SimTime, rng: &mut StdRng) -> u64 {
        let mean = self.config.base_interval_secs as f64 / self.diurnal_factor(now);
        let u: f64 = rng.gen_range(1e-9..1.0);
        let gap = -mean * u.ln();
        gap.clamp(1.0, mean * 8.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmal_corpus::catalog::CatalogConfig;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(1);
        Catalog::generate(
            &CatalogConfig {
                titles: 100,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn queries_mix_generic_and_catalog() {
        let w = Workload::new(WorkloadConfig {
            generic_fraction: 0.5,
            ..Default::default()
        });
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(2);
        let mut generic = 0;
        let n = 2000;
        for _ in 0..n {
            let q = w.sample_query(&cat, &mut rng);
            assert!(!q.is_empty());
            if GENERIC_TERMS.contains(&q.as_str()) {
                generic += 1;
            }
        }
        let frac = generic as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "generic fraction {frac}");
    }

    #[test]
    fn diurnal_factor_peaks_in_evening() {
        let w = Workload::new(WorkloadConfig::default());
        let peak = w.diurnal_factor(SimTime::from_secs(20 * 3600));
        let trough = w.diurnal_factor(SimTime::from_secs(8 * 3600));
        assert!((peak - 1.0).abs() < 1e-6, "peak {peak}");
        assert!((trough - 0.4).abs() < 1e-6, "trough {trough}");
        // And repeats daily.
        let next_day = w.diurnal_factor(SimTime::from_secs(44 * 3600));
        assert!((next_day - peak).abs() < 1e-6);
    }

    #[test]
    fn intervals_follow_the_mean() {
        let w = Workload::new(WorkloadConfig {
            base_interval_secs: 60,
            diurnal_floor: 1.0, // flat: mean stays 60
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| w.next_interval_secs(SimTime::ZERO, &mut rng))
            .sum();
        let mean = total as f64 / n as f64;
        // Exponential clipped to [1, 8*mean]: mean lands near 60.
        assert!((mean - 60.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn intervals_are_never_zero() {
        let w = Workload::new(WorkloadConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(w.next_interval_secs(SimTime::from_secs(3600), &mut rng) >= 1);
        }
    }
}
