//! The content-addressed download→scan pipeline shared by both crawlers.
//!
//! Every completed download is SHA-1 hashed (the study's content identity);
//! the digest then consults a bounded [`VerdictCache`] before the signature
//! engine runs. The P2P workload is extremely payload-redundant — a handful
//! of distinct bodies (one characteristic size per malware family,
//! EXPERIMENTS.md F2) are served hundreds of thousands of times — so almost
//! every body after the first few resolves from the cache, skipping
//! signature matching and recursive ZIP traversal entirely.
//!
//! Scanning is a pure function of content bytes, and eviction is
//! deterministic FIFO, so enabling the cache cannot change any logged
//! outcome: the crawlers persist only the detection *names* from the
//! verdict, which depend on the body alone.

use crate::log::ResponseRecord;
use crate::trace::DlTrace;
use p2pmal_hashes::Sha1Digest;
use p2pmal_scanner::{ScanJob, ScanPool, ScanScratch, Scanner, Verdict, VerdictCache};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default verdict-cache capacity for crawler configs. The full study sees
/// only dozens of distinct payloads, so this never evicts in practice while
/// still bounding memory against adversarial payload floods.
pub const DEFAULT_SCAN_CACHE_ENTRIES: usize = 4096;

/// Counters for the download→hash→scan pipeline, carried in the crawl log
/// and mirrored into `SimMetrics` / `P2PMAL_TRACE` day lines.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Bodies that completed download and entered the pipeline.
    pub bodies: u64,
    /// Bytes SHA-1 hashed (every body, hit or miss).
    pub bytes_hashed: u64,
    /// Bodies handed to the signature engine (cache misses, or everything
    /// when the cache is disabled).
    pub bodies_scanned: u64,
    /// Bytes handed to the signature engine (outer bodies; archive members
    /// found during traversal are not re-counted here).
    pub bytes_scanned: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    /// Distinct payload digests observed over the whole run.
    pub distinct_payloads: u64,
}

impl ScanStats {
    /// Cache hit rate in percent (0 when nothing was looked up).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 * 100.0 / total as f64
        }
    }
}

/// A scanner fronted by the content-addressed verdict cache.
pub struct ScanPipeline {
    scanner: Arc<Scanner>,
    cache: VerdictCache,
    /// All digests ever seen, for the distinct-payload census. Payloads are
    /// few and digests 20 bytes, so this stays tiny even on month runs.
    seen: HashSet<Sha1Digest>,
    stats: ScanStats,
    /// Reused inflate/traversal buffers for inline (non-batched) scans.
    scratch: ScanScratch,
}

impl ScanPipeline {
    /// `cache_entries` of 0 disables caching (every body is fully scanned).
    pub fn new(scanner: Arc<Scanner>, cache_entries: usize) -> Self {
        ScanPipeline {
            scanner,
            cache: VerdictCache::new(cache_entries),
            seen: HashSet::new(),
            stats: ScanStats::default(),
            scratch: ScanScratch::new(),
        }
    }

    /// Access to the wrapped scanner (e.g. for listing signature names).
    pub fn scanner(&self) -> &Scanner {
        &self.scanner
    }

    /// Shared handle to the wrapped scanner, for batched off-thread scans.
    pub fn scanner_arc(&self) -> Arc<Scanner> {
        Arc::clone(&self.scanner)
    }

    /// Whether the verdict cache is active (capacity > 0).
    pub fn cache_enabled(&self) -> bool {
        self.cache.enabled()
    }

    /// Non-counting cache probe, used by [`ScanService::flush`] to plan
    /// which bodies actually need the signature engine.
    pub fn cache_contains(&self, digest: &Sha1Digest) -> bool {
        self.cache.contains(digest)
    }

    /// Snapshot of the pipeline counters.
    pub fn stats(&self) -> ScanStats {
        self.stats
    }

    /// Hashes `body`, resolves its verdict (cached or freshly scanned), and
    /// returns both. `name` only decorates detection locations inside the
    /// verdict; outcomes depend on the bytes alone.
    pub fn scan(&mut self, name: &str, body: &[u8]) -> (Sha1Digest, Arc<Verdict>) {
        let digest = p2pmal_hashes::sha1(body);
        self.scan_prepared(name, body, digest, None)
    }

    /// The bookkeeping half of [`Self::scan`], for callers that already hold
    /// the body's digest (and possibly an off-thread verdict).
    ///
    /// Counter-for-counter identical to the sequential path: the digest is
    /// censused, the cache consulted (hits return immediately), and on a
    /// miss the `precomputed` verdict — produced by the batch workers from
    /// the same `(name, body)` pair — stands in for an engine run. Without
    /// one (sequential callers, or a planned slot that lost a race with FIFO
    /// eviction during replay) the engine runs inline, exactly as before.
    pub fn scan_prepared(
        &mut self,
        name: &str,
        body: &[u8],
        digest: Sha1Digest,
        precomputed: Option<&Arc<Verdict>>,
    ) -> (Sha1Digest, Arc<Verdict>) {
        self.stats.bodies += 1;
        self.stats.bytes_hashed += body.len() as u64;
        if self.seen.insert(digest) {
            self.stats.distinct_payloads += 1;
        }
        if self.cache.enabled() {
            if let Some(verdict) = self.cache.get(&digest) {
                self.stats.cache_hits += 1;
                return (digest, verdict);
            }
            self.stats.cache_misses += 1;
        }
        let verdict = match precomputed {
            Some(v) => Arc::clone(v),
            None => Arc::new(
                self.scanner
                    .scan_with_scratch(name, body, &mut self.scratch),
            ),
        };
        self.stats.bodies_scanned += 1;
        self.stats.bytes_scanned += body.len() as u64;
        self.cache.insert(digest, Arc::clone(&verdict));
        self.stats.cache_evictions = self.cache.stats().evictions;
        (digest, verdict)
    }
}

/// Flush the batch once it holds this many bodies...
pub const SCAN_BATCH_MAX_BODIES: usize = 32;
/// ...or this many buffered payload bytes, whichever comes first.
pub const SCAN_BATCH_MAX_BYTES: u64 = 64 << 20;

/// A completed download parked until the next batch flush.
struct DeferredScan {
    record: ResponseRecord,
    body: Arc<Vec<u8>>,
    trace: Option<DlTrace>,
}

/// One merged verdict from a batch flush, in submission order.
pub struct FlushOutcome {
    pub record: ResponseRecord,
    pub body_len: u64,
    pub digest: Sha1Digest,
    pub verdict: Arc<Verdict>,
    /// Provenance of the download, carried through the batch untouched.
    /// Note the crawlers only defer when per-scan telemetry is off (the
    /// inline path is the one that emits `scan_verdict`), so today this
    /// rides along for log consumers rather than event emission.
    pub trace: Option<DlTrace>,
}

/// Everything a flush produced, plus how long the two phases took. The
/// caller attributes `prepare_nanos` (parallel hash + engine work) to the
/// `scan` profiler bucket and `merge_nanos` (sequential replay) to
/// `scan_merge`.
pub struct FlushResult {
    pub outcomes: Vec<FlushOutcome>,
    pub prepare_nanos: u64,
    pub merge_nanos: u64,
}

/// The batched, deterministic parallel front half of the scan pipeline.
///
/// Completed downloads accumulate here instead of being scanned inline;
/// between sim-time barriers the service hashes and scans the batch on a
/// work-stealing [`ScanPool`], then replays every body through
/// [`ScanPipeline::scan_prepared`] **in submission order**. The replay does
/// all stat/cache bookkeeping on one thread, so logs, counters and
/// trajectory digests are byte-identical to the sequential path — worker
/// threads only ever compute pure functions of the body bytes.
///
/// With one thread ([`Self::deferring`] == false) the service is inert and
/// callers scan inline, reproducing today's behavior exactly.
pub struct ScanService {
    pool: ScanPool,
    pending: Vec<DeferredScan>,
    pending_bytes: u64,
}

impl ScanService {
    pub fn new(threads: usize) -> Self {
        ScanService {
            pool: ScanPool::new(threads),
            pending: Vec::new(),
            pending_bytes: 0,
        }
    }

    /// True when downloads should be parked for batch scanning rather than
    /// scanned inline.
    pub fn deferring(&self) -> bool {
        self.pool.threads() > 1
    }

    /// Number of bodies waiting for the next flush.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Park a completed download for the next flush.
    pub fn submit(&mut self, record: ResponseRecord, body: Vec<u8>, trace: Option<DlTrace>) {
        self.pending_bytes += body.len() as u64;
        self.pending.push(DeferredScan {
            record,
            body: Arc::new(body),
            trace,
        });
    }

    /// Whether the batch has hit its size thresholds and should be flushed
    /// without waiting for the next barrier.
    pub fn should_flush(&self) -> bool {
        self.pending.len() >= SCAN_BATCH_MAX_BODIES || self.pending_bytes >= SCAN_BATCH_MAX_BYTES
    }

    /// Hash + scan the batch on the pool, then merge verdicts back through
    /// `pipeline` in submission order.
    ///
    /// Parallel work is planned so the engine runs exactly as often as the
    /// sequential path would have: with the cache enabled, one scan per
    /// first-occurrence digest not already cached; with it disabled, one
    /// scan per body (each under its own filename, keeping verdict location
    /// strings identical). The replay itself trusts only the cache — a
    /// planned verdict is consumed solely when the replay sees the same
    /// miss the planner predicted, and a miss with no planned verdict (FIFO
    /// eviction between plan and replay) falls back to an inline scan.
    pub fn flush(&mut self, pipeline: &mut ScanPipeline) -> FlushResult {
        if self.pending.is_empty() {
            return FlushResult {
                outcomes: Vec::new(),
                prepare_nanos: 0,
                merge_nanos: 0,
            };
        }
        let items = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        let prepare_start = Instant::now();

        // Phase A: hash every body in parallel into index-keyed slots.
        let digest_slots = Arc::new(Mutex::new(vec![None::<Sha1Digest>; items.len()]));
        let jobs: Vec<ScanJob> = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let body = Arc::clone(&item.body);
                let slots = Arc::clone(&digest_slots);
                let job: ScanJob = Box::new(move |_scratch| {
                    let digest = p2pmal_hashes::sha1(&body);
                    slots.lock().unwrap()[i] = Some(digest);
                });
                job
            })
            .collect();
        self.pool.run(jobs);
        let digests: Vec<Sha1Digest> = digest_slots
            .lock()
            .unwrap()
            .iter()
            .map(|d| d.expect("hash job ran"))
            .collect();

        // Phase B: plan which bodies need the engine. `planned` maps a
        // replay key to a verdict slot; cache-enabled keys are digests
        // (first occurrence wins, matching sequential verdict reuse),
        // cache-disabled keys are item indices (every body scans).
        let cache_enabled = pipeline.cache_enabled();
        let mut planned: HashMap<PlanKey, usize> = HashMap::new();
        // Verdict slot -> the item whose `(name, body)` feeds that engine run
        // (the first occurrence, matching sequential verdict reuse).
        let mut plan: Vec<usize> = Vec::new();
        for (i, digest) in digests.iter().enumerate() {
            let key = if cache_enabled {
                if pipeline.cache_contains(digest) {
                    continue;
                }
                PlanKey::Digest(*digest)
            } else {
                PlanKey::Index(i)
            };
            planned.entry(key).or_insert_with(|| {
                plan.push(i);
                plan.len() - 1
            });
        }

        // Phase C: run the planned scans in parallel, each on a worker's
        // reusable scratch buffers.
        let scanner = pipeline.scanner_arc();
        let verdict_slots = Arc::new(Mutex::new(vec![None::<Arc<Verdict>>; plan.len()]));
        let jobs: Vec<ScanJob> = plan
            .iter()
            .enumerate()
            .map(|(slot, &item_idx)| {
                let scanner = Arc::clone(&scanner);
                let body = Arc::clone(&items[item_idx].body);
                let name = items[item_idx].record.filename.clone();
                let slots = Arc::clone(&verdict_slots);
                let job: ScanJob = Box::new(move |scratch| {
                    let verdict = Arc::new(scanner.scan_with_scratch(&name, &body, scratch));
                    slots.lock().unwrap()[slot] = Some(verdict);
                });
                job
            })
            .collect();
        self.pool.run(jobs);
        let verdicts: Vec<Arc<Verdict>> = verdict_slots
            .lock()
            .unwrap()
            .iter()
            .map(|v| Arc::clone(v.as_ref().expect("scan job ran")))
            .collect();
        let prepare_nanos = prepare_start.elapsed().as_nanos() as u64;

        // Phase D: sequential replay in submission order. Every stat and
        // cache transition happens here, exactly as the inline path would
        // have performed it.
        let merge_start = Instant::now();
        let outcomes: Vec<FlushOutcome> = items
            .into_iter()
            .zip(digests)
            .enumerate()
            .map(|(i, (item, digest))| {
                let key = if cache_enabled {
                    PlanKey::Digest(digest)
                } else {
                    PlanKey::Index(i)
                };
                let precomputed = planned.get(&key).map(|&slot| &verdicts[slot]);
                let (digest, verdict) =
                    pipeline.scan_prepared(&item.record.filename, &item.body, digest, precomputed);
                FlushOutcome {
                    record: item.record,
                    body_len: item.body.len() as u64,
                    digest,
                    verdict,
                    trace: item.trace,
                }
            })
            .collect();
        let merge_nanos = merge_start.elapsed().as_nanos() as u64;

        FlushResult {
            outcomes,
            prepare_nanos,
            merge_nanos,
        }
    }
}

/// Replay key for planned engine runs: content identity when the cache can
/// share verdicts, item identity when every body scans on its own.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum PlanKey {
    Digest(Sha1Digest),
    Index(usize),
}

/// Scan-service worker count from `P2PMAL_SCAN_THREADS`.
///
/// `0` or `1` force the sequential inline path; `N` caps at 8 (batches are
/// small, more workers just contend); unset picks the host's available
/// parallelism, likewise capped.
pub fn scan_threads_from_env() -> usize {
    match std::env::var("P2PMAL_SCAN_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Ok(1) | Err(_) => 1,
            Ok(n) => n.min(8),
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmal_scanner::SignatureDb;

    fn pipeline(cache_entries: usize) -> ScanPipeline {
        let mut db = SignatureDb::new();
        db.add_literal("W32.Test", b"EVILBYTES").unwrap();
        ScanPipeline::new(Arc::new(Scanner::new(db.build().unwrap())), cache_entries)
    }

    #[test]
    fn cached_and_uncached_verdicts_agree() {
        let mut cached = pipeline(64);
        let mut uncached = pipeline(0);
        let bodies: [&[u8]; 3] = [b"clean body", b"has EVILBYTES inside", b"clean body"];
        for body in bodies {
            let (dc, vc) = cached.scan("f.exe", body);
            let (du, vu) = uncached.scan("f.exe", body);
            assert_eq!(dc, du);
            assert_eq!(vc.infected(), vu.infected());
            assert_eq!(vc.primary(), vu.primary());
        }
        assert_eq!(cached.stats().cache_hits, 1);
        assert_eq!(cached.stats().cache_misses, 2);
        assert_eq!(cached.stats().distinct_payloads, 2);
        assert_eq!(cached.stats().bodies_scanned, 2);
        let u = uncached.stats();
        assert_eq!((u.cache_hits, u.cache_misses), (0, 0));
        assert_eq!(u.bodies_scanned, 3);
        assert_eq!(u.distinct_payloads, 2);
    }

    #[test]
    fn bytes_accounting() {
        let mut p = pipeline(64);
        p.scan("a.exe", b"0123456789");
        p.scan("b.exe", b"0123456789");
        let s = p.stats();
        assert_eq!(s.bodies, 2);
        assert_eq!(s.bytes_hashed, 20);
        assert_eq!(s.bytes_scanned, 10, "second body resolved from cache");
        assert!((s.hit_rate_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_summaries_survive_zero_lookups() {
        // A fresh pipeline (and a cache-disabled one that never counts
        // lookups) must report a finite 0% hit rate, not NaN.
        assert_eq!(ScanStats::default().hit_rate_pct(), 0.0);
        let mut uncached = pipeline(0);
        uncached.scan("f.exe", b"body");
        let s = uncached.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (0, 0));
        assert!(s.hit_rate_pct().is_finite());
        assert_eq!(s.hit_rate_pct(), 0.0);
    }

    use crate::log::HostKey;
    use p2pmal_netsim::SimTime;
    use std::net::Ipv4Addr;

    fn record(name: &str) -> ResponseRecord {
        ResponseRecord {
            at: SimTime::ZERO,
            day: 0,
            query: "q".into(),
            filename: name.into(),
            size: 0,
            source_ip: Ipv4Addr::new(10, 0, 0, 1),
            source_port: 6346,
            needs_push: false,
            host: HostKey::Addr(Ipv4Addr::new(10, 0, 0, 1), 6346),
            downloadable: true,
        }
    }

    /// Submit `bodies` through a `threads`-wide service and assert every
    /// digest, verdict and pipeline counter matches the sequential path.
    fn assert_batched_matches_sequential(cache_entries: usize, threads: usize) {
        let bodies: [(&str, &[u8]); 6] = [
            ("a.exe", b"clean body one padding padding"),
            ("b.exe", b"has EVILBYTES inside it"),
            ("c.exe", b"clean body one padding padding"),
            ("d.zip", b"another clean body entirely"),
            ("e.exe", b"has EVILBYTES inside it"),
            ("f.exe", b"clean body one padding padding"),
        ];
        let mut sequential = pipeline(cache_entries);
        let expected: Vec<_> = bodies
            .iter()
            .map(|(name, body)| sequential.scan(name, body))
            .collect();

        let mut batched = pipeline(cache_entries);
        let mut service = ScanService::new(threads);
        for (name, body) in bodies {
            service.submit(record(name), body.to_vec(), None);
        }
        let result = service.flush(&mut batched);

        assert_eq!(result.outcomes.len(), bodies.len());
        for (out, (digest, verdict)) in result.outcomes.iter().zip(&expected) {
            assert_eq!(out.digest, *digest);
            assert_eq!(*out.verdict, **verdict);
        }
        assert_eq!(batched.stats(), sequential.stats());
        assert_eq!(service.pending_len(), 0);
    }

    #[test]
    fn batched_flush_matches_sequential() {
        for threads in [1, 2, 8] {
            assert_batched_matches_sequential(64, threads);
        }
    }

    #[test]
    fn batched_flush_matches_sequential_without_cache() {
        for threads in [1, 2, 8] {
            assert_batched_matches_sequential(0, threads);
        }
    }

    #[test]
    fn eviction_between_plan_and_replay_falls_back_to_inline() {
        // Capacity-1 cache: body A is cached when the batch is planned (so
        // no engine run is scheduled for it), then B's replay insertion
        // evicts it before A replays — forcing the inline-scan fallback.
        let mut db = SignatureDb::new();
        db.add_literal("W32.Test", b"EVILBYTES").unwrap();
        let scanner = Arc::new(Scanner::new(db.build().unwrap()));
        let mut sequential = ScanPipeline::new(Arc::clone(&scanner), 1);
        let mut batched = ScanPipeline::new(scanner, 1);

        let a: &[u8] = b"body A with EVILBYTES";
        let b: &[u8] = b"body B clean";
        let expected = [
            sequential.scan("a.exe", a),
            sequential.scan("b.exe", b),
            sequential.scan("a2.exe", a),
        ];

        let mut service = ScanService::new(2);
        batched.scan("a.exe", a);
        service.submit(record("b.exe"), b.to_vec(), None);
        service.submit(record("a2.exe"), a.to_vec(), None);
        let result = service.flush(&mut batched);

        for (out, (digest, verdict)) in result.outcomes.iter().zip(&expected[1..]) {
            assert_eq!(out.digest, *digest);
            assert_eq!(*out.verdict, **verdict);
        }
        let stats = batched.stats();
        assert_eq!(stats, sequential.stats());
        assert!(stats.cache_evictions > 0, "test must exercise eviction");
        assert_eq!(
            stats.bodies_scanned, 3,
            "evicted digest must re-scan, as the sequential path does"
        );
    }

    #[test]
    fn flush_thresholds_and_empty_flush() {
        let mut p = pipeline(64);
        let mut service = ScanService::new(2);
        assert!(service.deferring());
        assert!(!ScanService::new(1).deferring());
        let empty = service.flush(&mut p);
        assert!(empty.outcomes.is_empty());
        for i in 0..SCAN_BATCH_MAX_BODIES {
            assert!(!service.should_flush());
            service.submit(record(&format!("f{i}.exe")), vec![0u8; 8], None);
        }
        assert!(service.should_flush());
        service.flush(&mut p);
        assert!(!service.should_flush());
    }
}
