//! The content-addressed download→scan pipeline shared by both crawlers.
//!
//! Every completed download is SHA-1 hashed (the study's content identity);
//! the digest then consults a bounded [`VerdictCache`] before the signature
//! engine runs. The P2P workload is extremely payload-redundant — a handful
//! of distinct bodies (one characteristic size per malware family,
//! EXPERIMENTS.md F2) are served hundreds of thousands of times — so almost
//! every body after the first few resolves from the cache, skipping
//! signature matching and recursive ZIP traversal entirely.
//!
//! Scanning is a pure function of content bytes, and eviction is
//! deterministic FIFO, so enabling the cache cannot change any logged
//! outcome: the crawlers persist only the detection *names* from the
//! verdict, which depend on the body alone.

use p2pmal_hashes::Sha1Digest;
use p2pmal_scanner::{Scanner, Verdict, VerdictCache};
use std::collections::HashSet;
use std::sync::Arc;

/// Default verdict-cache capacity for crawler configs. The full study sees
/// only dozens of distinct payloads, so this never evicts in practice while
/// still bounding memory against adversarial payload floods.
pub const DEFAULT_SCAN_CACHE_ENTRIES: usize = 4096;

/// Counters for the download→hash→scan pipeline, carried in the crawl log
/// and mirrored into `SimMetrics` / `P2PMAL_TRACE` day lines.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Bodies that completed download and entered the pipeline.
    pub bodies: u64,
    /// Bytes SHA-1 hashed (every body, hit or miss).
    pub bytes_hashed: u64,
    /// Bodies handed to the signature engine (cache misses, or everything
    /// when the cache is disabled).
    pub bodies_scanned: u64,
    /// Bytes handed to the signature engine (outer bodies; archive members
    /// found during traversal are not re-counted here).
    pub bytes_scanned: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    /// Distinct payload digests observed over the whole run.
    pub distinct_payloads: u64,
}

impl ScanStats {
    /// Cache hit rate in percent (0 when nothing was looked up).
    pub fn hit_rate_pct(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 * 100.0 / total as f64
        }
    }
}

/// A scanner fronted by the content-addressed verdict cache.
pub struct ScanPipeline {
    scanner: Arc<Scanner>,
    cache: VerdictCache,
    /// All digests ever seen, for the distinct-payload census. Payloads are
    /// few and digests 20 bytes, so this stays tiny even on month runs.
    seen: HashSet<Sha1Digest>,
    stats: ScanStats,
}

impl ScanPipeline {
    /// `cache_entries` of 0 disables caching (every body is fully scanned).
    pub fn new(scanner: Arc<Scanner>, cache_entries: usize) -> Self {
        ScanPipeline {
            scanner,
            cache: VerdictCache::new(cache_entries),
            seen: HashSet::new(),
            stats: ScanStats::default(),
        }
    }

    /// Access to the wrapped scanner (e.g. for listing signature names).
    pub fn scanner(&self) -> &Scanner {
        &self.scanner
    }

    /// Snapshot of the pipeline counters.
    pub fn stats(&self) -> ScanStats {
        self.stats
    }

    /// Hashes `body`, resolves its verdict (cached or freshly scanned), and
    /// returns both. `name` only decorates detection locations inside the
    /// verdict; outcomes depend on the bytes alone.
    pub fn scan(&mut self, name: &str, body: &[u8]) -> (Sha1Digest, Arc<Verdict>) {
        let digest = p2pmal_hashes::sha1(body);
        self.stats.bodies += 1;
        self.stats.bytes_hashed += body.len() as u64;
        if self.seen.insert(digest) {
            self.stats.distinct_payloads += 1;
        }
        if self.cache.enabled() {
            if let Some(verdict) = self.cache.get(&digest) {
                self.stats.cache_hits += 1;
                return (digest, verdict);
            }
            self.stats.cache_misses += 1;
        }
        let verdict = Arc::new(self.scanner.scan(name, body));
        self.stats.bodies_scanned += 1;
        self.stats.bytes_scanned += body.len() as u64;
        self.cache.insert(digest, Arc::clone(&verdict));
        self.stats.cache_evictions = self.cache.stats().evictions;
        (digest, verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmal_scanner::SignatureDb;

    fn pipeline(cache_entries: usize) -> ScanPipeline {
        let mut db = SignatureDb::new();
        db.add_literal("W32.Test", b"EVILBYTES").unwrap();
        ScanPipeline::new(Arc::new(Scanner::new(db.build().unwrap())), cache_entries)
    }

    #[test]
    fn cached_and_uncached_verdicts_agree() {
        let mut cached = pipeline(64);
        let mut uncached = pipeline(0);
        let bodies: [&[u8]; 3] = [b"clean body", b"has EVILBYTES inside", b"clean body"];
        for body in bodies {
            let (dc, vc) = cached.scan("f.exe", body);
            let (du, vu) = uncached.scan("f.exe", body);
            assert_eq!(dc, du);
            assert_eq!(vc.infected(), vu.infected());
            assert_eq!(vc.primary(), vu.primary());
        }
        assert_eq!(cached.stats().cache_hits, 1);
        assert_eq!(cached.stats().cache_misses, 2);
        assert_eq!(cached.stats().distinct_payloads, 2);
        assert_eq!(cached.stats().bodies_scanned, 2);
        let u = uncached.stats();
        assert_eq!((u.cache_hits, u.cache_misses), (0, 0));
        assert_eq!(u.bodies_scanned, 3);
        assert_eq!(u.distinct_payloads, 2);
    }

    #[test]
    fn bytes_accounting() {
        let mut p = pipeline(64);
        p.scan("a.exe", b"0123456789");
        p.scan("b.exe", b"0123456789");
        let s = p.stats();
        assert_eq!(s.bodies, 2);
        assert_eq!(s.bytes_hashed, 20);
        assert_eq!(s.bytes_scanned, 10, "second body resolved from cache");
        assert!((s.hit_rate_pct() - 50.0).abs() < 1e-9);
    }
}
