//! Provenance for the crawler's download chain.
//!
//! When a hit is ingested with telemetry live, the crawler captures a
//! [`DlTrace`]: the trace id of the originating query, the span of the
//! `query_matched` event that advertised the file, and the download object
//! key. Every later lifecycle event of that download — each attempt, retry,
//! the terminal completion, the scan verdict and any infections — derives
//! its span from the same three values, so the whole chain reconstructs
//! from the journal without the crawler storing any per-event state.
//!
//! The chain shape (parent → child):
//!
//! ```text
//! query_issued ─ query_matched ─ download_start#0 ─┬─ download_complete
//!                                                  └─ download_retry#1 ─ download_start#1 ─ …
//! download_complete ─ scan_verdict ─ infection×N
//! ```
//!
//! All ids come from [`p2pmal_netsim::telemetry_span`]; deriving them is
//! pure hashing, so carrying a `DlTrace` never perturbs the trajectory.

use p2pmal_netsim::{telemetry_span as span, SpanCtx};

/// Causal identity of one in-flight download, copied through retries and
/// into the batched scan service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlTrace {
    /// Trace id of the query this download descends from.
    pub trace: u64,
    /// Span of the `query_matched` that returned this file.
    pub matched: u64,
    /// Download object key (filename, size, source host).
    pub obj: u64,
}

impl DlTrace {
    pub fn new(trace: u64, matched: u64, name: &str, size: u64, host: &str) -> Self {
        DlTrace {
            trace,
            matched,
            obj: span::download_obj(name, size, host),
        }
    }

    /// Span of `download_start` attempt `attempt`: child of the match for
    /// the first try, of the scheduling retry afterwards.
    pub fn start(&self, attempt: u8) -> SpanCtx {
        let parent = if attempt == 0 {
            self.matched
        } else {
            span::span_retry(self.trace, self.obj, attempt)
        };
        SpanCtx::child(
            self.trace,
            span::span_download(self.trace, self.obj, attempt),
            parent,
        )
    }

    /// Span of the `download_retry` scheduling attempt `attempt` (≥ 1),
    /// child of the attempt that just failed.
    pub fn retry(&self, attempt: u8) -> SpanCtx {
        SpanCtx::child(
            self.trace,
            span::span_retry(self.trace, self.obj, attempt),
            span::span_download(self.trace, self.obj, attempt.saturating_sub(1)),
        )
    }

    /// Span of the terminal `download_complete`, child of the last attempt.
    pub fn done(&self, last_attempt: u8) -> SpanCtx {
        SpanCtx::child(
            self.trace,
            span::span_done(self.trace, self.obj),
            span::span_download(self.trace, self.obj, last_attempt),
        )
    }

    /// Span of the `scan_verdict`, child of the completion.
    pub fn scan(&self) -> SpanCtx {
        SpanCtx::child(
            self.trace,
            span::span_scan(self.trace, self.obj),
            span::span_done(self.trace, self.obj),
        )
    }

    /// Span of the `idx`-th `infection` under the verdict.
    pub fn infection(&self, idx: u64) -> SpanCtx {
        SpanCtx::child(
            self.trace,
            span::span_infection(self.trace, self.obj, idx),
            span::span_scan(self.trace, self.obj),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_links_are_consistent() {
        let t = DlTrace::new(7, 99, "setup.exe", 4096, "10.0.0.1:6346");
        // First attempt hangs off the match; retries hang off the retry
        // event that scheduled them, which hangs off the failed attempt.
        assert_eq!(t.start(0).parent, Some(99));
        assert_eq!(t.retry(1).parent, Some(t.start(0).span));
        assert_eq!(t.start(1).parent, Some(t.retry(1).span));
        assert_eq!(t.done(1).parent, Some(t.start(1).span));
        assert_eq!(t.scan().parent, Some(t.done(1).span));
        assert_eq!(t.infection(0).parent, Some(t.scan().span));
        assert_ne!(t.infection(0).span, t.infection(1).span);
        // Everything shares the trace id.
        for ctx in [t.start(0), t.retry(1), t.done(1), t.scan(), t.infection(0)] {
            assert_eq!(ctx.trace, 7);
        }
    }
}
