//! The signature database: parse, compile, match.
//!
//! Compilation indexes the *anchor* (longest literal run) of each
//! signature's first part in one Aho–Corasick automaton. Scanning runs the
//! automaton once over the input; each anchor hit is verified against the
//! full wildcard pattern. This mirrors how production engines layer exact
//! multi-pattern search under wildcard verification.

use crate::aho::AhoCorasick;
use crate::sig::{ParseError, Signature};
use std::collections::BTreeSet;

/// Errors from building a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignatureError {
    /// A pattern failed to parse; carries the signature name.
    Parse { name: String, error: ParseError },
    /// Two signatures share a name.
    DuplicateName(String),
    /// Text-format line without a `name:pattern` separator.
    BadLine(usize),
}

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignatureError::Parse { name, error } => write!(f, "signature {name}: {error}"),
            SignatureError::DuplicateName(n) => write!(f, "duplicate signature name {n}"),
            SignatureError::BadLine(n) => write!(f, "line {n}: expected name:pattern"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// A mutable collection of signatures; [`SignatureDb::build`] compiles it.
#[derive(Default)]
pub struct SignatureDb {
    sigs: Vec<Signature>,
}

impl SignatureDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a signature from a hex/wildcard body.
    pub fn add_hex(&mut self, name: &str, pattern: &str) -> Result<(), SignatureError> {
        let sig = Signature::parse(name, pattern).map_err(|error| SignatureError::Parse {
            name: name.to_string(),
            error,
        })?;
        self.sigs.push(sig);
        Ok(())
    }

    /// Adds a signature matching a literal byte string.
    pub fn add_literal(&mut self, name: &str, bytes: &[u8]) -> Result<(), SignatureError> {
        let hex = p2pmal_hashes::to_hex(bytes);
        self.add_hex(name, &hex)
    }

    /// Parses the text format: one `Name:hexpattern` per line, `#` comments.
    pub fn parse_text(text: &str) -> Result<Self, SignatureError> {
        let mut db = SignatureDb::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, pattern) = line.split_once(':').ok_or(SignatureError::BadLine(i + 1))?;
            db.add_hex(name.trim(), pattern.trim())?;
        }
        Ok(db)
    }

    /// Renders back to the text format.
    pub fn to_text(&self) -> String {
        use crate::sig::Token;
        let mut out = String::new();
        for sig in &self.sigs {
            out.push_str(&sig.name);
            out.push(':');
            for (pi, part) in sig.parts.iter().enumerate() {
                if pi > 0 {
                    out.push('*');
                }
                for t in &part.tokens {
                    match t {
                        Token::Byte(b) => out.push_str(&format!("{b:02x}")),
                        Token::Any => out.push_str("??"),
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Number of signatures added so far.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Compiles into a matchable database.
    pub fn build(self) -> Result<CompiledDb, SignatureError> {
        let mut names = BTreeSet::new();
        for s in &self.sigs {
            if !names.insert(s.name.clone()) {
                return Err(SignatureError::DuplicateName(s.name.clone()));
            }
        }
        let anchors: Vec<Vec<u8>> = self
            .sigs
            .iter()
            .map(|s| s.parts[0].anchor.clone())
            .collect();
        let ac = AhoCorasick::new(anchors);
        Ok(CompiledDb {
            sigs: self.sigs,
            ac,
        })
    }
}

/// An immutable, compiled signature database.
pub struct CompiledDb {
    sigs: Vec<Signature>,
    ac: AhoCorasick,
}

impl CompiledDb {
    /// All signature names, in database order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sigs.iter().map(|s| s.name.as_str())
    }

    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The compiled anchor automaton (e.g. for prefilter diagnostics and
    /// head-to-head benches).
    pub fn automaton(&self) -> &AhoCorasick {
        &self.ac
    }

    /// Verifies one anchor hit against its full wildcard signature.
    #[inline]
    fn verify(&self, data: &[u8], m: crate::aho::AcMatch) -> bool {
        let sig = &self.sigs[m.pattern];
        let part0 = &sig.parts[0];
        let anchor_start = m.end - part0.anchor.len();
        // The anchor sits `anchor_offset` bytes into part 0.
        match anchor_start.checked_sub(part0.anchor_offset) {
            Some(part_start) => sig.matches_with_first_at(data, part_start),
            None => false,
        }
    }

    /// Visits the name of every signature matching `data`, deduplicated, in
    /// database order. Allocation-free up to [`Self::INLINE_SIGS`] signatures
    /// (a stack bitset tracks verified hits), so a clean scan costs nothing
    /// beyond the automaton walk.
    pub fn matches_each<'a, F: FnMut(&'a str)>(&'a self, data: &[u8], mut f: F) {
        if self.sigs.is_empty() {
            return;
        }
        let words = self.sigs.len().div_ceil(64);
        let mut inline = [0u64; Self::INLINE_SIGS / 64];
        let mut spill: Vec<u64>;
        let hit: &mut [u64] = if words <= inline.len() {
            &mut inline[..words]
        } else {
            spill = vec![0u64; words];
            &mut spill
        };
        let mut n_hits = 0u32;
        self.ac.find_each(data, |m| {
            let si = m.pattern;
            if hit[si / 64] & (1u64 << (si % 64)) == 0 && self.verify(data, m) {
                hit[si / 64] |= 1u64 << (si % 64);
                n_hits += 1;
            }
            true
        });
        if n_hits == 0 {
            return;
        }
        for (i, s) in self.sigs.iter().enumerate() {
            if hit[i / 64] & (1u64 << (i % 64)) != 0 {
                f(s.name.as_str());
            }
        }
    }

    /// Signature count covered by the stack bitset in [`Self::matches_each`].
    pub const INLINE_SIGS: usize = 256;

    /// Returns the names of all signatures matching `data`, deduplicated,
    /// in database order.
    pub fn matches(&self, data: &[u8]) -> Vec<&str> {
        let mut out = Vec::new();
        self.matches_each(data, |name| out.push(name));
        out
    }

    /// Returns the name of the first signature verified in stream order, or
    /// `None`. Stops the automaton walk at the first verified hit, so a
    /// "clean?" question on infected data is cheaper than a full census.
    pub fn first_match(&self, data: &[u8]) -> Option<&str> {
        let mut found = None;
        self.ac.find_each(data, |m| {
            if self.verify(data, m) {
                found = Some(m.pattern);
                return false;
            }
            true
        });
        found.map(|si| self.sigs[si].name.as_str())
    }

    /// True if any signature matches.
    pub fn is_infected(&self, data: &[u8]) -> bool {
        self.first_match(data).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(entries: &[(&str, &str)]) -> CompiledDb {
        let mut db = SignatureDb::new();
        for (n, p) in entries {
            db.add_hex(n, p).unwrap();
        }
        db.build().unwrap()
    }

    #[test]
    fn single_signature_hit_and_miss() {
        let db = build(&[("Worm.A", "6576696c20636f6465")]); // "evil code"
        assert_eq!(db.matches(b"here is evil code !"), vec!["Worm.A"]);
        assert!(db.matches(b"here is good code").is_empty());
    }

    #[test]
    fn multiple_signatures_same_file() {
        let db = build(&[
            ("Worm.A", "6161616161"),
            ("Trojan.B", "6262626262"),
            ("Virus.C", "6363636363"),
        ]);
        let got = db.matches(b"xx aaaaa yy bbbbb zz");
        assert_eq!(got, vec!["Worm.A", "Trojan.B"]);
    }

    #[test]
    fn wildcard_signature_through_prefilter() {
        // Anchor is the tail run; the hole must still verify.
        let db = build(&[(
            "Poly.X",
            "4d5a??????${}".replace("${}", "90904c4f4144").as_str(),
        )]);
        let mut data = vec![0u8; 64];
        data[10..12].copy_from_slice(&[0x4d, 0x5a]);
        data[12..15].copy_from_slice(&[1, 2, 3]);
        data[15..21].copy_from_slice(&[0x90, 0x90, 0x4c, 0x4f, 0x41, 0x44]);
        assert_eq!(db.matches(&data), vec!["Poly.X"]);
        // Break a literal byte before the anchor: no match.
        let mut bad = data.clone();
        bad[10] = 0;
        assert!(db.matches(&bad).is_empty());
    }

    #[test]
    fn gap_signature_through_prefilter() {
        let db = build(&[("Gap.Y", "48454144*5441494c")]); // HEAD*TAIL
        assert_eq!(db.matches(b"xx HEAD filler TAIL yy"), vec!["Gap.Y"]);
        assert!(db.matches(b"xx TAIL filler HEAD yy").is_empty());
    }

    #[test]
    fn dedup_multiple_occurrences() {
        let db = build(&[("Rep.Z", "7265706561746564")]); // "repeated"
        let hay = b"repeated and repeated and repeated".to_vec();
        assert_eq!(db.matches(&hay).len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = SignatureDb::new();
        db.add_hex("Same", "11223344").unwrap();
        db.add_hex("Same", "55667788").unwrap();
        assert_eq!(
            db.build().err(),
            Some(SignatureError::DuplicateName("Same".into()))
        );
    }

    #[test]
    fn text_format_roundtrip() {
        let text = "# test db\nWorm.A:deadbeef\nTrojan.B:11223344??55667788*aabbccdd\n";
        let db = SignatureDb::parse_text(text).unwrap();
        assert_eq!(db.len(), 2);
        let rendered = db.to_text();
        let db2 = SignatureDb::parse_text(&rendered).unwrap();
        assert_eq!(db2.to_text(), rendered);
    }

    #[test]
    fn text_format_bad_line() {
        assert_eq!(
            SignatureDb::parse_text("no separator here").err(),
            Some(SignatureError::BadLine(1))
        );
    }

    #[test]
    fn empty_db_matches_nothing() {
        let db = SignatureDb::new().build().unwrap();
        assert!(db.matches(b"anything").is_empty());
        assert!(!db.is_infected(b"anything"));
    }

    #[test]
    fn add_literal_convenience() {
        let mut db = SignatureDb::new();
        db.add_literal("Lit.A", b"MAGIC-MARKER-BYTES").unwrap();
        let db = db.build().unwrap();
        assert!(db.is_infected(b"xxx MAGIC-MARKER-BYTES xxx"));
    }

    #[test]
    fn first_match_agrees_with_matches() {
        let db = build(&[("Worm.A", "6161616161"), ("Trojan.B", "6262626262")]);
        assert_eq!(db.first_match(b"xx aaaaa yy"), Some("Worm.A"));
        assert_eq!(db.first_match(b"xx bbbbb yy"), Some("Trojan.B"));
        assert_eq!(db.first_match(b"clean bytes"), None);
        // Stream order, not db order: whichever verifies first wins.
        assert_eq!(db.first_match(b"bbbbb then aaaaa"), Some("Trojan.B"));
        assert!(db.is_infected(b"aaaaa"));
        assert!(!db.is_infected(b"aaaa"));
    }

    #[test]
    fn matches_each_spills_past_inline_bitset() {
        // More signatures than the stack bitset holds: the heap spill path
        // must behave identically.
        let mut db = SignatureDb::new();
        let n = CompiledDb::INLINE_SIGS + 20;
        for i in 0..n {
            db.add_literal(
                &format!("Sig.{i:04}"),
                format!("needle-{i:04}-x").as_bytes(),
            )
            .unwrap();
        }
        let db = db.build().unwrap();
        let hay = b"xx needle-0001-x yy needle-0270-x zz".to_vec();
        assert_eq!(db.matches(&hay), vec!["Sig.0001", "Sig.0270"]);
    }

    proptest! {
        /// The compiled (prefiltered) matcher agrees with the slow
        /// Signature::matches path on random inputs.
        #[test]
        fn compiled_agrees_with_slow_path(
            hay in proptest::collection::vec(any::<u8>(), 0..512),
            needle in proptest::collection::vec(any::<u8>(), 4..12),
        ) {
            let hex = p2pmal_hashes::to_hex(&needle);
            let sig = Signature::parse("P", &hex).unwrap();
            let db = build(&[("P", &hex)]);
            prop_assert_eq!(db.is_infected(&hay), sig.matches(&hay));
            // And a haystack with the needle embedded always matches.
            let mut with = hay.clone();
            with.extend_from_slice(&needle);
            prop_assert!(db.is_infected(&with));
        }
    }
}
