//! Malware signatures: hex byte patterns with wildcards.
//!
//! The format follows the spirit of ClamAV body signatures:
//!
//! * pairs of hex digits are literal bytes (`deadbeef`),
//! * `??` matches any single byte,
//! * `*` matches any gap (zero or more bytes), splitting the signature into
//!   parts that must occur in order.
//!
//! Every `*`-separated part must contain at least [`MIN_ANCHOR`] consecutive
//! literal bytes; the longest such run is the part's *anchor*, which the
//! database indexes in the Aho–Corasick prefilter so scanning stays linear.

/// Minimum length of a literal run required in every signature part.
pub const MIN_ANCHOR: usize = 4;

/// One element of a fixed-length pattern part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    Byte(u8),
    /// `??` — any single byte.
    Any,
}

/// A `*`-separated part: fixed length, may contain `??` holes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    pub tokens: Vec<Token>,
    /// Byte offset of the anchor run within the part.
    pub anchor_offset: usize,
    /// The literal anchor bytes (longest literal run).
    pub anchor: Vec<u8>,
}

impl Part {
    /// Does this part match `data` starting exactly at `pos`?
    pub fn matches_at(&self, data: &[u8], pos: usize) -> bool {
        if pos + self.tokens.len() > data.len() {
            return false;
        }
        self.tokens.iter().enumerate().all(|(i, t)| match t {
            Token::Byte(b) => data[pos + i] == *b,
            Token::Any => true,
        })
    }

    /// Finds the first match of this part at or after `from`, returning the
    /// start offset. Linear scan; the engine normally uses the anchor
    /// prefilter instead and only falls back to this for trailing parts.
    pub fn find_from(&self, data: &[u8], from: usize) -> Option<usize> {
        if self.tokens.len() > data.len() {
            return None;
        }
        (from..=data.len() - self.tokens.len()).find(|&pos| self.matches_at(data, pos))
    }

    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// A compiled signature: named pattern of one or more parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    pub name: String,
    pub parts: Vec<Part>,
}

/// Signature parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Character outside `[0-9a-fA-F?*]`.
    BadCharacter(char),
    /// Hex digits must come in pairs; `?` must come as `??`.
    UnpairedDigit,
    /// Empty pattern or empty `*`-separated part.
    EmptyPart,
    /// A part lacks a literal run of [`MIN_ANCHOR`] bytes to anchor on.
    NoAnchor,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadCharacter(c) => write!(f, "bad signature character {c:?}"),
            ParseError::UnpairedDigit => write!(f, "unpaired hex digit"),
            ParseError::EmptyPart => write!(f, "empty signature part"),
            ParseError::NoAnchor => {
                write!(f, "signature part needs {MIN_ANCHOR}+ literal bytes")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses the hex/wildcard body of a signature into parts.
pub fn parse_pattern(s: &str) -> Result<Vec<Part>, ParseError> {
    let mut parts = Vec::new();
    for chunk in s.split('*') {
        let chunk = chunk.trim();
        if chunk.is_empty() {
            return Err(ParseError::EmptyPart);
        }
        let mut tokens = Vec::new();
        let mut chars = chunk.chars().filter(|c| !c.is_whitespace()).peekable();
        while let Some(c) = chars.next() {
            match c {
                '?' => match chars.next() {
                    Some('?') => tokens.push(Token::Any),
                    _ => return Err(ParseError::UnpairedDigit),
                },
                c if c.is_ascii_hexdigit() => {
                    let d1 = c.to_digit(16).expect("hexdigit");
                    let c2 = chars.next().ok_or(ParseError::UnpairedDigit)?;
                    if !c2.is_ascii_hexdigit() {
                        return Err(if c2 == '?' {
                            ParseError::UnpairedDigit
                        } else {
                            ParseError::BadCharacter(c2)
                        });
                    }
                    let d2 = c2.to_digit(16).expect("hexdigit");
                    tokens.push(Token::Byte(((d1 << 4) | d2) as u8));
                }
                c => return Err(ParseError::BadCharacter(c)),
            }
        }
        if tokens.is_empty() {
            return Err(ParseError::EmptyPart);
        }
        let (anchor_offset, anchor) = longest_literal_run(&tokens);
        if anchor.len() < MIN_ANCHOR {
            return Err(ParseError::NoAnchor);
        }
        parts.push(Part {
            tokens,
            anchor_offset,
            anchor,
        });
    }
    if parts.is_empty() {
        return Err(ParseError::EmptyPart);
    }
    Ok(parts)
}

fn longest_literal_run(tokens: &[Token]) -> (usize, Vec<u8>) {
    let mut best: (usize, Vec<u8>) = (0, Vec::new());
    let mut cur_start = 0usize;
    let mut cur: Vec<u8> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t {
            Token::Byte(b) => {
                if cur.is_empty() {
                    cur_start = i;
                }
                cur.push(*b);
            }
            Token::Any => {
                if cur.len() > best.1.len() {
                    best = (cur_start, cur.clone());
                }
                cur.clear();
            }
        }
    }
    if cur.len() > best.1.len() {
        best = (cur_start, cur);
    }
    best
}

impl Signature {
    /// Parses `name` + hex body into a signature.
    pub fn parse(name: &str, pattern: &str) -> Result<Self, ParseError> {
        Ok(Signature {
            name: name.to_string(),
            parts: parse_pattern(pattern)?,
        })
    }

    /// Full match check given the *start* position of part 0. Later parts
    /// (after `*` gaps) are located with a forward scan.
    pub fn matches_with_first_at(&self, data: &[u8], first_start: usize) -> bool {
        if !self.parts[0].matches_at(data, first_start) {
            return false;
        }
        let mut cursor = first_start + self.parts[0].len();
        for part in &self.parts[1..] {
            match part.find_from(data, cursor) {
                Some(pos) => cursor = pos + part.len(),
                None => return false,
            }
        }
        true
    }

    /// Slow-path scan used by tests and as a fallback: does the signature
    /// occur anywhere in `data`?
    pub fn matches(&self, data: &[u8]) -> bool {
        let first = &self.parts[0];
        let mut from = 0;
        while let Some(pos) = first.find_from(data, from) {
            if self.matches_with_first_at(data, pos) {
                return true;
            }
            from = pos + 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_hex() {
        let sig = Signature::parse("X", "deadbeef").unwrap();
        assert_eq!(sig.parts.len(), 1);
        assert_eq!(sig.parts[0].tokens.len(), 4);
        assert_eq!(sig.parts[0].anchor, vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(sig.parts[0].anchor_offset, 0);
    }

    #[test]
    fn parse_with_wildcard_byte() {
        let sig = Signature::parse("X", "deadbeef??c0dec0de").unwrap();
        let p = &sig.parts[0];
        assert_eq!(p.tokens.len(), 9);
        assert_eq!(p.tokens[4], Token::Any);
        // Longest run is the 4 leading bytes (first wins ties of length 4).
        assert_eq!(p.anchor, vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn parse_with_gap() {
        let sig = Signature::parse("X", "11223344*aabbccdd").unwrap();
        assert_eq!(sig.parts.len(), 2);
    }

    #[test]
    fn parse_uppercase_and_whitespace() {
        let sig = Signature::parse("X", "DE AD BE EF").unwrap();
        assert_eq!(sig.parts[0].anchor, vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            Signature::parse("X", "").unwrap_err(),
            ParseError::EmptyPart
        );
        assert_eq!(
            Signature::parse("X", "abc").unwrap_err(),
            ParseError::UnpairedDigit
        );
        assert_eq!(
            Signature::parse("X", "zz").unwrap_err(),
            ParseError::BadCharacter('z')
        );
        assert_eq!(
            Signature::parse("X", "a?").unwrap_err(),
            ParseError::UnpairedDigit
        );
        assert_eq!(
            Signature::parse("X", "????aabb").unwrap_err(),
            ParseError::NoAnchor
        );
        assert_eq!(
            Signature::parse("X", "11223344*").unwrap_err(),
            ParseError::EmptyPart
        );
    }

    #[test]
    fn plain_match() {
        let sig = Signature::parse("X", "6d616c77617265").unwrap(); // "malware"
        assert!(sig.matches(b"this contains malware somewhere"));
        assert!(!sig.matches(b"this is clean"));
    }

    #[test]
    fn wildcard_byte_match() {
        let sig = Signature::parse("X", "6d616c77??7265").unwrap(); // malw?re
        assert!(sig.matches(b"xx malware yy"));
        assert!(sig.matches(b"xx malwXre yy"));
        assert!(!sig.matches(b"xx malw"));
    }

    #[test]
    fn gap_match_in_order_only() {
        let sig = Signature::parse("X", "6669727374*7365636f6e64").unwrap(); // first*second
        assert!(sig.matches(b"first then second"));
        assert!(sig.matches(b"firstsecond"));
        assert!(!sig.matches(b"second then first"));
    }

    #[test]
    fn gap_with_repeated_first_part() {
        // The first part occurs twice; only the second occurrence is
        // followed by part two. matches() must backtrack over candidates.
        let sig = Signature::parse("X", "61626364*31323334").unwrap(); // abcd*1234
        assert!(sig.matches(b"abcd nope abcd yes 1234"));
        assert!(sig.matches(b"zzz abcd1234"));
        assert!(!sig.matches(b"abcd 12 34"));
    }

    #[test]
    fn match_at_boundaries() {
        let sig = Signature::parse("X", "61616161").unwrap();
        assert!(sig.matches(b"aaaa"));
        assert!(sig.matches(b"aaaab"));
        assert!(sig.matches(b"baaaa"));
        assert!(!sig.matches(b"aaa"));
    }

    #[test]
    fn anchor_picks_longest_run() {
        let sig = Signature::parse("X", "aabb??ccddeeff00??1122").unwrap();
        // Runs: [aa bb](2), [cc dd ee ff 00](5), [11 22](2).
        assert_eq!(sig.parts[0].anchor, vec![0xcc, 0xdd, 0xee, 0xff, 0x00]);
        assert_eq!(sig.parts[0].anchor_offset, 3);
    }
}
