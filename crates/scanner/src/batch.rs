//! A small work-stealing thread pool for batched scanning.
//!
//! The batched scan service accumulates unique download bodies between
//! sim-time barriers and hands them here as one batch of jobs. Each worker
//! owns a deque and a [`ScanScratch`]; idle workers steal from their
//! neighbours so a batch with one huge archive and many small bodies still
//! keeps every thread busy. The pool is *only* an execution engine — job
//! results flow through whatever shared state the closures capture, and the
//! deterministic merge order is imposed by the caller, never by thread
//! scheduling.
//!
//! `ScanPool::new(0 | 1)` builds an inline pool that runs jobs on the
//! calling thread with no threads spawned, which is bit-for-bit the
//! sequential behavior.

use crate::engine::ScanScratch;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of batch work: runs on some worker with that worker's scratch.
pub type ScanJob = Box<dyn FnOnce(&mut ScanScratch) + Send + 'static>;

struct Shared {
    /// One deque per worker; workers pop their own back and steal others'
    /// front. A single mutex over all of them keeps the implementation
    /// simple — contention is bounded by job granularity (whole bodies),
    /// not by byte throughput.
    queues: Mutex<PoolState>,
    /// Signals workers: new jobs or shutdown.
    work: Condvar,
    /// Signals the submitter: batch finished.
    done: Condvar,
}

struct PoolState {
    queues: Vec<VecDeque<ScanJob>>,
    /// Jobs submitted but not yet finished (across all queues + running).
    outstanding: usize,
    shutdown: bool,
}

/// Work-stealing scan pool; see the module docs.
pub struct ScanPool {
    threads: usize,
    shared: Option<Arc<Shared>>,
    workers: Vec<JoinHandle<()>>,
}

impl ScanPool {
    /// `threads <= 1` builds the inline (sequential, thread-free) pool.
    pub fn new(threads: usize) -> Self {
        if threads <= 1 {
            return ScanPool {
                threads: 1,
                shared: None,
                workers: Vec::new(),
            };
        }
        let shared = Arc::new(Shared {
            queues: Mutex::new(PoolState {
                queues: (0..threads).map(|_| VecDeque::new()).collect(),
                outstanding: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scan-worker-{idx}"))
                    .spawn(move || worker_loop(idx, &shared))
                    .expect("spawn scan worker")
            })
            .collect();
        ScanPool {
            threads,
            shared: Some(shared),
            workers,
        }
    }

    /// Number of scanning threads (1 for the inline pool).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a batch of jobs to completion. Jobs are distributed round-robin
    /// over the worker deques; the call returns only after every job has
    /// finished. With the inline pool the jobs run here, in order.
    pub fn run(&self, jobs: Vec<ScanJob>) {
        let Some(shared) = &self.shared else {
            let mut scratch = ScanScratch::new();
            for job in jobs {
                job(&mut scratch);
            }
            return;
        };
        if jobs.is_empty() {
            return;
        }
        {
            let mut state = shared.queues.lock().expect("pool lock");
            state.outstanding += jobs.len();
            for (i, job) in jobs.into_iter().enumerate() {
                let q = i % state.queues.len();
                state.queues[q].push_back(job);
            }
        }
        shared.work.notify_all();
        let mut state = shared.queues.lock().expect("pool lock");
        while state.outstanding > 0 {
            state = shared.done.wait(state).expect("pool lock");
        }
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.queues.lock().expect("pool lock").shutdown = true;
            shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(idx: usize, shared: &Shared) {
    let mut scratch = ScanScratch::new();
    let mut state = shared.queues.lock().expect("pool lock");
    loop {
        // Own queue first, then steal round-robin from the others.
        let n = state.queues.len();
        let job = (0..n)
            .map(|k| (idx + k) % n)
            .find_map(|q| state.queues[q].pop_front());
        match job {
            Some(job) => {
                drop(state);
                job(&mut scratch);
                state = shared.queues.lock().expect("pool lock");
                state.outstanding -= 1;
                if state.outstanding == 0 {
                    shared.done.notify_all();
                }
            }
            None => {
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).expect("pool lock");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn run_counted(pool: &ScanPool, jobs: usize) -> usize {
        let counter = Arc::new(AtomicUsize::new(0));
        let batch: Vec<ScanJob> = (0..jobs)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move |_: &mut ScanScratch| {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as ScanJob
            })
            .collect();
        pool.run(batch);
        counter.load(Ordering::SeqCst)
    }

    #[test]
    fn inline_pool_runs_everything_in_order() {
        let pool = ScanPool::new(1);
        assert_eq!(pool.threads(), 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let batch: Vec<ScanJob> = (0..10usize)
            .map(|i| {
                let order = Arc::clone(&order);
                Box::new(move |_: &mut ScanScratch| order.lock().unwrap().push(i)) as ScanJob
            })
            .collect();
        pool.run(batch);
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_pool_completes_all_jobs() {
        let pool = ScanPool::new(4);
        assert_eq!(pool.threads(), 4);
        for batch in [0usize, 1, 3, 64, 257] {
            assert_eq!(run_counted(&pool, batch), batch);
        }
    }

    #[test]
    fn results_can_flow_through_shared_slots() {
        let pool = ScanPool::new(2);
        let slots: Arc<Mutex<Vec<Option<usize>>>> = Arc::new(Mutex::new(vec![None; 100]));
        let batch: Vec<ScanJob> = (0..100usize)
            .map(|i| {
                let slots = Arc::clone(&slots);
                Box::new(move |_: &mut ScanScratch| {
                    slots.lock().unwrap()[i] = Some(i * i);
                }) as ScanJob
            })
            .collect();
        pool.run(batch);
        let got = slots.lock().unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, Some(i * i));
        }
    }

    #[test]
    fn sequential_batches_reuse_the_pool() {
        let pool = ScanPool::new(3);
        for _ in 0..20 {
            assert_eq!(run_counted(&pool, 16), 16);
        }
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        for _ in 0..5 {
            let pool = ScanPool::new(2);
            assert_eq!(run_counted(&pool, 8), 8);
            drop(pool);
        }
    }
}
