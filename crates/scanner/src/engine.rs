//! The scan engine: signature matching plus recursive archive traversal.

use crate::db::CompiledDb;
use crate::filetype::FileKind;
use p2pmal_archive::zip::ZipArchive;

/// Engine limits, all guarding against adversarial downloads.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Maximum nesting of archives-inside-archives.
    pub max_archive_depth: usize,
    /// Per-entry decompressed-size ceiling.
    pub max_entry_bytes: u64,
    /// Maximum members examined per archive.
    pub max_entries: usize,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            max_archive_depth: 3,
            max_entry_bytes: 32 << 20,
            max_entries: 512,
        }
    }
}

/// One signature hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Signature name, e.g. `W32.Alcan.A`.
    pub name: String,
    /// Where in the (possibly nested) object the hit occurred, e.g.
    /// `pack.zip!setup.exe`.
    pub location: String,
}

/// Result of scanning one downloaded file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// All distinct signature hits, outermost-first.
    pub detections: Vec<Detection>,
    /// Diagnostics: archives that could not be opened, limits hit.
    pub notes: Vec<String>,
    /// Structured subset of `notes`: content that *failed to decode*
    /// (corrupt archive, unreadable entry). Intentional scan limits (depth,
    /// entry count) are not decode errors. A clean verdict with decode
    /// errors means "could not be scanned", not "benign".
    pub decode_errors: Vec<String>,
}

impl Verdict {
    /// Did any signature match?
    pub fn infected(&self) -> bool {
        !self.detections.is_empty()
    }

    /// The first (primary) detection name, if any. The study attributes
    /// each malicious response to one malware; like the original AV logs we
    /// take the first hit.
    pub fn primary(&self) -> Option<&str> {
        self.detections.first().map(|d| d.name.as_str())
    }

    /// True when nothing matched *and* part of the content failed to
    /// decode: the clean result cannot be trusted. An infected verdict is
    /// never unscannable — a raw-byte signature hit on a corrupt archive is
    /// a real detection.
    pub fn unscannable(&self) -> bool {
        self.detections.is_empty() && !self.decode_errors.is_empty()
    }
}

/// Reusable decompression buffers for archive traversal: one per nesting
/// level. [`Scanner::scan_with_scratch`] extracts every archive member into
/// these instead of allocating a fresh `Vec` per member, so a long batch of
/// scans settles into zero allocator traffic per body. Each worker thread of
/// the batched scan service owns one.
#[derive(Default)]
pub struct ScanScratch {
    levels: Vec<Vec<u8>>,
}

impl ScanScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Detaches the buffer for `depth` (empty if never used) so the caller
    /// can fill it while deeper recursion uses the later levels.
    fn take_level(&mut self, depth: usize) -> Vec<u8> {
        if depth < self.levels.len() {
            std::mem::take(&mut self.levels[depth])
        } else {
            Vec::new()
        }
    }

    /// Returns a buffer (and its capacity) to level `depth` for reuse.
    fn put_level(&mut self, depth: usize, buf: Vec<u8>) {
        if depth >= self.levels.len() {
            self.levels.resize_with(depth + 1, Vec::new);
        }
        self.levels[depth] = buf;
    }
}

/// A configured scanner around a compiled signature database.
pub struct Scanner {
    db: CompiledDb,
    config: ScanConfig,
}

impl Scanner {
    pub fn new(db: CompiledDb) -> Self {
        Scanner {
            db,
            config: ScanConfig::default(),
        }
    }

    pub fn with_config(db: CompiledDb, config: ScanConfig) -> Self {
        Scanner { db, config }
    }

    /// Access to the underlying database (e.g. for listing names).
    pub fn db(&self) -> &CompiledDb {
        &self.db
    }

    /// Scans a downloaded file: signature-matches the raw bytes, and if the
    /// content is a ZIP archive, recurses into its members.
    pub fn scan(&self, name: &str, data: &[u8]) -> Verdict {
        self.scan_with_scratch(name, data, &mut ScanScratch::new())
    }

    /// Like [`Scanner::scan`], reusing the caller's [`ScanScratch`] for
    /// archive-member decompression. Verdicts are identical to `scan`; only
    /// allocator traffic differs.
    pub fn scan_with_scratch(&self, name: &str, data: &[u8], scratch: &mut ScanScratch) -> Verdict {
        let mut verdict = Verdict {
            detections: Vec::new(),
            notes: Vec::new(),
            decode_errors: Vec::new(),
        };
        let mut path = Vec::new();
        self.scan_inner(name, &mut path, data, 0, &mut verdict, scratch);
        verdict
    }

    fn scan_inner(
        &self,
        root: &str,
        path: &mut Vec<String>,
        data: &[u8],
        depth: usize,
        verdict: &mut Verdict,
        scratch: &mut ScanScratch,
    ) {
        let detections = &mut verdict.detections;
        self.db.matches_each(data, |hit| {
            // Location strings materialize only for a *new* detection; the
            // common clean scan allocates nothing on this path.
            if !detections.iter().any(|d| d.name == hit) {
                detections.push(Detection {
                    name: hit.to_string(),
                    location: render_location(root, path),
                });
            }
        });
        if FileKind::from_magic(data) == FileKind::Zip {
            if depth >= self.config.max_archive_depth {
                verdict.notes.push(format!(
                    "{}: archive depth limit reached",
                    render_location(root, path)
                ));
                return;
            }
            match ZipArchive::parse_with_limit(data, self.config.max_entry_bytes) {
                Ok(archive) => {
                    // This level's buffer is detached while deeper recursion
                    // borrows the scratch for the levels below it.
                    let mut buf = scratch.take_level(depth);
                    for (i, entry) in archive.entries().iter().enumerate() {
                        if i >= self.config.max_entries {
                            verdict.notes.push(format!(
                                "{}: entry limit reached",
                                render_location(root, path)
                            ));
                            break;
                        }
                        match archive.read_into(i, &mut buf) {
                            Ok(()) => {
                                path.push(entry.name.clone());
                                self.scan_inner(root, path, &buf, depth + 1, verdict, scratch);
                                path.pop();
                            }
                            Err(e) => {
                                path.push(entry.name.clone());
                                let msg =
                                    format!("{}: unreadable ({e})", render_location(root, path));
                                verdict.notes.push(msg.clone());
                                verdict.decode_errors.push(msg);
                                path.pop();
                            }
                        }
                    }
                    scratch.put_level(depth, buf);
                }
                Err(e) => {
                    let msg = format!("{}: corrupt archive ({e})", render_location(root, path));
                    verdict.notes.push(msg.clone());
                    verdict.decode_errors.push(msg);
                }
            }
        }
    }
}

/// Renders a nested-object location, e.g. `pack.zip!setup.exe`.
fn render_location(root: &str, path: &[String]) -> String {
    let mut s = String::with_capacity(root.len() + path.iter().map(|p| p.len() + 1).sum::<usize>());
    s.push_str(root);
    for p in path {
        s.push('!');
        s.push_str(p);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::SignatureDb;
    use p2pmal_archive::zip::{Method, ZipWriter};

    fn scanner(entries: &[(&str, &[u8])]) -> Scanner {
        let mut db = SignatureDb::new();
        for (n, p) in entries {
            db.add_literal(n, p).unwrap();
        }
        Scanner::new(db.build().unwrap())
    }

    #[test]
    fn clean_file() {
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let v = s.scan("file.exe", b"MZ nothing suspicious at all");
        assert!(!v.infected());
        assert_eq!(v.primary(), None);
    }

    #[test]
    fn infected_exe() {
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let v = s.scan("file.exe", b"MZ junk EVILBYTES junk");
        assert!(v.infected());
        assert_eq!(v.primary(), Some("Worm.A"));
        assert_eq!(v.detections[0].location, "file.exe");
    }

    /// A compressible executable body carrying the signature: after DEFLATE
    /// the signature bytes are no longer visible in the raw archive, so a
    /// detection proves the engine actually decompressed the member.
    fn infected_exe_body() -> Vec<u8> {
        let mut body = b"MZ ".to_vec();
        body.extend(std::iter::repeat_n(b'x', 400));
        body.extend_from_slice(b"EVILBYTES");
        body.extend(std::iter::repeat_n(b'y', 400));
        body
    }

    #[test]
    fn infected_inside_zip() {
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let mut w = ZipWriter::new();
        w.add("setup.exe", &infected_exe_body(), Method::Deflate);
        w.add("readme.txt", b"totally normal", Method::Stored);
        let archive = w.finish();
        // Signature must not be visible raw, or the test proves nothing.
        assert!(!s.db().is_infected(&archive[..archive.len().min(30)]));
        let v = s.scan("bundle.zip", &archive);
        assert!(v.infected());
        assert_eq!(v.detections[0].location, "bundle.zip!setup.exe");
    }

    #[test]
    fn nested_zip_recursion() {
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let mut inner = ZipWriter::new();
        inner.add("x.exe", &infected_exe_body(), Method::Deflate);
        let mut outer = ZipWriter::new();
        outer.add("inner.zip", &inner.finish(), Method::Stored);
        let v = s.scan("outer.zip", &outer.finish());
        assert!(v.infected());
        assert_eq!(v.detections[0].location, "outer.zip!inner.zip!x.exe");
    }

    #[test]
    fn depth_limit_stops_recursion() {
        let s = Scanner::with_config(
            {
                let mut db = SignatureDb::new();
                db.add_literal("Worm.A", b"EVILBYTES").unwrap();
                db.build().unwrap()
            },
            ScanConfig {
                max_archive_depth: 1,
                ..Default::default()
            },
        );
        let mut inner = ZipWriter::new();
        inner.add("x.exe", &infected_exe_body(), Method::Deflate);
        let mut outer = ZipWriter::new();
        outer.add("inner.zip", &inner.finish(), Method::Stored);
        let v = s.scan("outer.zip", &outer.finish());
        // Depth 1 allows opening outer but not inner.
        assert!(!v.infected());
        assert!(v.notes.iter().any(|n| n.contains("depth limit")));
    }

    #[test]
    fn corrupt_zip_noted_not_fatal() {
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let mut fake = b"PK\x03\x04".to_vec();
        fake.extend_from_slice(b"garbage that is not a zip EVILBYTES");
        let v = s.scan("broken.zip", &fake);
        // Raw-byte signature still fires even though the archive is corrupt.
        assert!(v.infected());
        assert!(v.notes.iter().any(|n| n.contains("corrupt archive")));
    }

    #[test]
    fn truncated_zip_is_unscannable_not_clean() {
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let mut w = ZipWriter::new();
        w.add("setup.exe", &infected_exe_body(), Method::Deflate);
        let archive = w.finish();
        let v = s.scan("cut.zip", &archive[..archive.len() / 2]);
        // No silent clean verdict for undecodable bytes: the half archive
        // has no readable member, so the verdict must say so.
        assert!(!v.infected());
        assert!(v.unscannable(), "truncated archive must be unscannable");
        assert!(v.decode_errors[0].contains("corrupt archive"));
    }

    /// Fuzz-style: bit-flipped archives never panic the engine, and any
    /// verdict without detections that saw a decode failure self-reports
    /// as unscannable rather than clean.
    #[test]
    fn bit_flipped_zip_never_panics_never_silently_clean() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let mut w = ZipWriter::new();
        w.add("setup.exe", &infected_exe_body(), Method::Deflate);
        w.add("notes.txt", b"plain text member", Method::Stored);
        let archive = w.finish();
        let mut rng = StdRng::seed_from_u64(42);
        let mut unscannable = 0;
        for _ in 0..500 {
            let mut garbled = archive.clone();
            let bit = rng.gen_range(0..garbled.len() * 8);
            garbled[bit / 8] ^= 1 << (bit % 8);
            let v = s.scan("flip.zip", &garbled);
            if v.unscannable() {
                unscannable += 1;
                assert!(!v.decode_errors.is_empty());
            }
        }
        // With a single flipped bit a healthy fraction of mutants must be
        // caught as undecodable (CRC mismatch, bad Huffman table, ...).
        assert!(unscannable > 0, "no mutant was flagged unscannable");
    }

    #[test]
    fn infected_but_corrupt_archive_stays_a_detection() {
        // A raw-signature hit on a corrupt archive is a detection, not an
        // unscannable verdict — corruption must never launder a positive.
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let mut fake = b"PK\x03\x04".to_vec();
        fake.extend_from_slice(b"EVILBYTES but the zip structure is gone");
        let v = s.scan("broken.zip", &fake);
        assert!(v.infected());
        assert!(!v.unscannable());
        assert!(!v.decode_errors.is_empty());
    }

    #[test]
    fn scratch_reuse_matches_fresh_scan() {
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let mut inner = ZipWriter::new();
        inner.add("x.exe", &infected_exe_body(), Method::Deflate);
        let mut outer = ZipWriter::new();
        outer.add("inner.zip", &inner.finish(), Method::Stored);
        outer.add("clean.exe", b"MZ nothing here", Method::Deflate);
        let nested = outer.finish();
        let mut flat = ZipWriter::new();
        flat.add("a.exe", &infected_exe_body(), Method::Deflate);
        let flat = flat.finish();
        let mut scratch = ScanScratch::new();
        // Same scratch across differently-shaped bodies; every verdict must
        // equal the fresh-allocation scan.
        for (name, body) in [
            ("outer.zip", nested.as_slice()),
            ("flat.zip", flat.as_slice()),
            ("outer.zip", nested.as_slice()),
            ("plain.exe", b"MZ EVILBYTES".as_slice()),
        ] {
            assert_eq!(
                s.scan_with_scratch(name, body, &mut scratch),
                s.scan(name, body)
            );
        }
    }

    #[test]
    fn multiple_distinct_malware_reported_once_each() {
        let s = scanner(&[("Worm.A", b"AAAAAA"), ("Trojan.B", b"BBBBBB")]);
        let v = s.scan("f.exe", b"AAAAAA BBBBBB AAAAAA");
        let names: Vec<&str> = v.detections.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["Worm.A", "Trojan.B"]);
    }

    #[test]
    fn same_malware_in_zip_and_raw_deduped() {
        // Stored members leave the signature visible in the raw archive
        // too; the verdict still reports the name exactly once.
        let s = scanner(&[("Worm.A", b"EVILBYTES")]);
        let mut w = ZipWriter::new();
        w.add("a.exe", b"EVILBYTES", Method::Stored);
        w.add("b.exe", b"EVILBYTES", Method::Stored);
        let v = s.scan("two.zip", &w.finish());
        assert_eq!(v.detections.len(), 1, "one name, one report");
        assert_eq!(v.detections[0].location, "two.zip");
    }
}
