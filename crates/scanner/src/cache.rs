//! Content-addressed verdict cache.
//!
//! Detection is a pure function of content bytes — the same body always
//! produces the same set of signature names — so a bounded SHA-1 → verdict
//! map turns the P2P workload's extreme payload redundancy (a handful of
//! distinct bodies served hundreds of thousands of times, see EXPERIMENTS.md
//! F2) into cache hits that skip signature matching and archive traversal
//! entirely. This is the feed-forward prefilter shape BitAV/TorrentGuard
//! build their throughput on.
//!
//! Eviction is deterministic FIFO (insertion order), never dependent on wall
//! clock or pointer identity, so a simulation run with the cache enabled is
//! bit-identical to one without it.

use crate::engine::Verdict;
use p2pmal_hashes::Sha1Digest;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Counters describing cache behaviour; cheap to copy into logs/metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VerdictCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Number of `insert` calls — distinct payloads scanned while cached
    /// (re-inserts after eviction count again).
    pub insertions: u64,
}

/// A bounded SHA-1–keyed verdict cache with FIFO eviction.
pub struct VerdictCache {
    capacity: usize,
    map: HashMap<Sha1Digest, Arc<Verdict>>,
    /// Insertion order, oldest first; drives deterministic eviction.
    order: VecDeque<Sha1Digest>,
    stats: VerdictCacheStats,
}

impl VerdictCache {
    /// `capacity` of 0 disables the cache: every lookup misses and inserts
    /// are dropped.
    pub fn new(capacity: usize) -> Self {
        VerdictCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(4096)),
            order: VecDeque::with_capacity(capacity.min(4096)),
            stats: VerdictCacheStats::default(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn stats(&self) -> VerdictCacheStats {
        self.stats
    }

    /// Non-counting presence probe. The batched scan service uses this to
    /// plan which bodies need engine scans *without* perturbing the hit/miss
    /// counters that the sequential replay will account for.
    pub fn contains(&self, digest: &Sha1Digest) -> bool {
        self.map.contains_key(digest)
    }

    /// Looks up a digest, counting a hit or miss.
    pub fn get(&mut self, digest: &Sha1Digest) -> Option<Arc<Verdict>> {
        match self.map.get(digest) {
            Some(v) => {
                self.stats.hits += 1;
                Some(Arc::clone(v))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a verdict, evicting the oldest entry when full. Re-inserting
    /// a present digest refreshes the verdict without growing the queue.
    pub fn insert(&mut self, digest: Sha1Digest, verdict: Arc<Verdict>) {
        if self.capacity == 0 {
            return;
        }
        self.stats.insertions += 1;
        if self.map.insert(digest, verdict).is_some() {
            return;
        }
        self.order.push_back(digest);
        if self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(n: u8) -> Sha1Digest {
        Sha1Digest([n; 20])
    }

    fn verdict() -> Arc<Verdict> {
        Arc::new(Verdict {
            detections: Vec::new(),
            notes: Vec::new(),
            decode_errors: Vec::new(),
        })
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = VerdictCache::new(8);
        assert!(c.get(&digest(1)).is_none());
        c.insert(digest(1), verdict());
        assert!(c.get(&digest(1)).is_some());
        assert!(c.get(&digest(2)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 2, 1, 0));
    }

    #[test]
    fn contains_does_not_count() {
        let mut c = VerdictCache::new(8);
        c.insert(digest(1), verdict());
        assert!(c.contains(&digest(1)));
        assert!(!c.contains(&digest(2)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn capacity_bounds_and_fifo_eviction() {
        let mut c = VerdictCache::new(3);
        for n in 0..5u8 {
            c.insert(digest(n), verdict());
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 2);
        // Oldest two (0, 1) evicted; 2, 3, 4 remain.
        assert!(c.get(&digest(0)).is_none());
        assert!(c.get(&digest(1)).is_none());
        assert!(c.get(&digest(2)).is_some());
        assert!(c.get(&digest(4)).is_some());
    }

    #[test]
    fn reinsert_does_not_duplicate_queue_entry() {
        let mut c = VerdictCache::new(2);
        c.insert(digest(1), verdict());
        c.insert(digest(1), verdict());
        c.insert(digest(2), verdict());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        // Both still present: the re-insert must not have queued 1 twice.
        assert!(c.get(&digest(1)).is_some());
        assert!(c.get(&digest(2)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = VerdictCache::new(0);
        assert!(!c.enabled());
        c.insert(digest(1), verdict());
        assert!(c.is_empty());
        assert!(c.get(&digest(1)).is_none());
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn eviction_order_is_insertion_order_not_access_order() {
        let mut c = VerdictCache::new(2);
        c.insert(digest(1), verdict());
        c.insert(digest(2), verdict());
        // Touch 1 (a hit) — FIFO ignores recency, so 1 is still evicted first.
        assert!(c.get(&digest(1)).is_some());
        c.insert(digest(3), verdict());
        assert!(c.get(&digest(1)).is_none());
        assert!(c.get(&digest(2)).is_some());
        assert!(c.get(&digest(3)).is_some());
    }
}
