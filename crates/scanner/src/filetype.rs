//! File-type identification, by magic bytes and by filename extension.
//!
//! The study keys on both: query *responses* only carry filenames, so the
//! crawler selects downloads by extension ("archives and executables"); the
//! scanner then types the downloaded *bytes* by magic to decide whether to
//! recurse into an archive.

/// Concrete file kinds the study distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// MS-DOS / Windows PE executable (`MZ`).
    Exe,
    /// ZIP archive (`PK\x03\x04` or empty-archive `PK\x05\x06`).
    Zip,
    /// RAR archive (`Rar!\x1a\x07`).
    Rar,
    /// MP3 audio (ID3 tag or MPEG frame sync).
    Mp3,
    /// AVI video (RIFF....AVI ).
    Avi,
    /// JPEG image.
    Jpeg,
    /// Anything else.
    Unknown,
}

/// The coarse classes the paper's tables use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileClass {
    Executable,
    Archive,
    Media,
    Other,
}

impl FileKind {
    /// Types `data` by magic bytes.
    pub fn from_magic(data: &[u8]) -> FileKind {
        if data.len() >= 2 && &data[..2] == b"MZ" {
            return FileKind::Exe;
        }
        if data.len() >= 4 && (&data[..4] == b"PK\x03\x04" || &data[..4] == b"PK\x05\x06") {
            return FileKind::Zip;
        }
        if data.len() >= 6 && &data[..6] == b"Rar!\x1a\x07" {
            return FileKind::Rar;
        }
        if data.len() >= 3 && &data[..3] == b"ID3" {
            return FileKind::Mp3;
        }
        if data.len() >= 2 && data[0] == 0xFF && (data[1] & 0xE0) == 0xE0 {
            return FileKind::Mp3;
        }
        if data.len() >= 12 && &data[..4] == b"RIFF" && &data[8..12] == b"AVI " {
            return FileKind::Avi;
        }
        if data.len() >= 3 && data[..3] == [0xFF, 0xD8, 0xFF] {
            return FileKind::Jpeg;
        }
        FileKind::Unknown
    }

    /// Types a filename by its extension (case-insensitive).
    pub fn from_name(name: &str) -> FileKind {
        let ext = name.rsplit('.').next().unwrap_or("").to_ascii_lowercase();
        match ext.as_str() {
            "exe" | "scr" | "com" | "bat" | "pif" | "cpl" | "msi" => FileKind::Exe,
            "zip" => FileKind::Zip,
            "rar" => FileKind::Rar,
            "mp3" => FileKind::Mp3,
            "avi" | "mpg" | "mpeg" | "wmv" | "mov" => FileKind::Avi,
            "jpg" | "jpeg" | "gif" | "png" | "bmp" => FileKind::Jpeg,
            _ => FileKind::Unknown,
        }
    }

    /// Coarse class used in the paper's breakdowns.
    pub fn class(self) -> FileClass {
        match self {
            FileKind::Exe => FileClass::Executable,
            FileKind::Zip | FileKind::Rar => FileClass::Archive,
            FileKind::Mp3 | FileKind::Avi | FileKind::Jpeg => FileClass::Media,
            FileKind::Unknown => FileClass::Other,
        }
    }

    /// Would the study download-and-scan a response with this kind?
    /// ("downloadable responses containing archives and executables")
    pub fn is_scannable(self) -> bool {
        matches!(self.class(), FileClass::Executable | FileClass::Archive)
    }
}

/// Convenience: is this filename one the study's crawler would download?
pub fn scannable_name(name: &str) -> bool {
    FileKind::from_name(name).is_scannable()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_exe() {
        assert_eq!(FileKind::from_magic(b"MZ\x90\x00rest"), FileKind::Exe);
    }

    #[test]
    fn magic_zip() {
        assert_eq!(FileKind::from_magic(b"PK\x03\x04...."), FileKind::Zip);
        assert_eq!(FileKind::from_magic(b"PK\x05\x06...."), FileKind::Zip);
    }

    #[test]
    fn magic_rar() {
        assert_eq!(FileKind::from_magic(b"Rar!\x1a\x07\x00"), FileKind::Rar);
    }

    #[test]
    fn magic_media() {
        assert_eq!(FileKind::from_magic(b"ID3\x04tagdata"), FileKind::Mp3);
        assert_eq!(
            FileKind::from_magic(&[0xFF, 0xFB, 0x90, 0x44]),
            FileKind::Mp3
        );
        assert_eq!(
            FileKind::from_magic(b"RIFF\x00\x00\x00\x00AVI listdata"),
            FileKind::Avi
        );
        assert_eq!(
            FileKind::from_magic(&[0xFF, 0xD8, 0xFF, 0xE0]),
            FileKind::Jpeg
        );
    }

    #[test]
    fn magic_unknown_and_short() {
        assert_eq!(FileKind::from_magic(b""), FileKind::Unknown);
        assert_eq!(FileKind::from_magic(b"M"), FileKind::Unknown);
        assert_eq!(FileKind::from_magic(b"plain text"), FileKind::Unknown);
    }

    #[test]
    fn name_classification() {
        assert_eq!(FileKind::from_name("setup.exe"), FileKind::Exe);
        assert_eq!(FileKind::from_name("SETUP.EXE"), FileKind::Exe);
        assert_eq!(FileKind::from_name("movie.avi"), FileKind::Avi);
        assert_eq!(FileKind::from_name("song.mp3"), FileKind::Mp3);
        assert_eq!(FileKind::from_name("pack.zip"), FileKind::Zip);
        assert_eq!(FileKind::from_name("pack.rar"), FileKind::Rar);
        assert_eq!(FileKind::from_name("screensaver.scr"), FileKind::Exe);
        assert_eq!(FileKind::from_name("noext"), FileKind::Unknown);
        assert_eq!(FileKind::from_name("weird.xyz"), FileKind::Unknown);
    }

    #[test]
    fn scannable_selection_matches_study() {
        assert!(scannable_name("installer.exe"));
        assert!(scannable_name("album.zip"));
        assert!(scannable_name("archive.rar"));
        assert!(!scannable_name("song.mp3"));
        assert!(!scannable_name("movie.avi"));
        assert!(!scannable_name("readme.txt"));
    }

    #[test]
    fn classes() {
        assert_eq!(FileKind::Exe.class(), FileClass::Executable);
        assert_eq!(FileKind::Zip.class(), FileClass::Archive);
        assert_eq!(FileKind::Rar.class(), FileClass::Archive);
        assert_eq!(FileKind::Mp3.class(), FileClass::Media);
        assert_eq!(FileKind::Unknown.class(), FileClass::Other);
    }
}
