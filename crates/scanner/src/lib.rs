//! A signature-based anti-virus engine, built from scratch.
//!
//! The paper scanned every downloaded executable/archive response with a
//! commercial AV product to obtain ground-truth malware labels. This crate is
//! the substitute: a multi-pattern signature scanner in the ClamAV style,
//! with
//!
//! * [`aho`] — an Aho–Corasick automaton for simultaneous multi-pattern
//!   search (the industry-standard prefilter for signature AV),
//! * [`sig`] — hex signatures with `??` single-byte wildcards and `*` gaps,
//! * [`db`] — a signature database with a text format and builder API,
//! * [`filetype`] — magic-byte and extension-based file typing (the study
//!   classifies responses into executables, archives and media), and
//! * [`engine`] — the scan engine, which recurses into ZIP archives exactly
//!   like the study's scanner had to, and
//! * [`batch`] — a work-stealing thread pool that scans whole batches of
//!   bodies between the harness's sim-time barriers.
//!
//! ```
//! use p2pmal_scanner::{SignatureDb, Scanner};
//! let mut db = SignatureDb::new();
//! db.add_hex("Worm.Test.A", "deadbeef??c0de").unwrap();
//! let scanner = Scanner::new(db.build().unwrap());
//! let verdict = scanner.scan("x.exe", &[0xde, 0xad, 0xbe, 0xef, 0x99, 0xc0, 0xde]);
//! assert_eq!(verdict.detections[0].name, "Worm.Test.A");
//! ```

pub mod aho;
pub mod batch;
pub mod cache;
pub mod db;
pub mod engine;
pub mod filetype;
pub mod sig;

pub use aho::AhoCorasick;
pub use batch::{ScanJob, ScanPool};
pub use cache::{VerdictCache, VerdictCacheStats};
pub use db::{CompiledDb, SignatureDb, SignatureError};
pub use engine::{Detection, ScanConfig, ScanScratch, Scanner, Verdict};
pub use filetype::{FileClass, FileKind};
pub use sig::Signature;
