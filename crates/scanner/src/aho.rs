//! Aho–Corasick multi-pattern string matching.
//!
//! Dense goto tables (256 transitions per state) keep the match loop at one
//! array index per input byte, which is what makes scanning megabytes of
//! downloads against hundreds of signatures cheap. Memory is bounded by the
//! total length of the indexed patterns, which for a signature database is
//! small.

/// A compiled Aho–Corasick automaton over byte patterns.
pub struct AhoCorasick {
    /// `goto_[state * 256 + byte]` = next state.
    goto_: Vec<u32>,
    /// Pattern indices that end at each state (after fail-link merging).
    output: Vec<Vec<u32>>,
    patterns: Vec<Vec<u8>>,
    /// First-byte prefilter: `start[b]` is true iff byte `b` leaves the root
    /// state. While the automaton sits at the root (the overwhelmingly common
    /// state on clean data), the scan loop skips runs of non-starting bytes
    /// through this 256-byte table instead of walking the cache-hostile
    /// dense goto row.
    start: [bool; 256],
    /// Vectorized root-skip strategy, chosen once at build time.
    prefilter: Prefilter,
}

/// How the root skip loop finds the next byte that can leave the root.
/// Picked at automaton build time from the start-set shape and the CPU;
/// every variant locates exactly the same positions, so the choice can
/// never affect a match stream.
#[derive(Debug, Clone, Copy)]
enum Prefilter {
    /// ≤ [`SWAR_MAX_NEEDLES`] start bytes: portable 8-bytes-at-a-time
    /// word scan.
    Swar(SwarPrefilter),
    /// Wider start sets on SSSE3 hosts: nibble-bucket shuffle scan,
    /// 16 bytes per step regardless of start-set size.
    #[cfg(target_arch = "x86_64")]
    Shufti(ShuftiPrefilter),
    /// Byte-at-a-time walk over the 256-entry `start` table.
    Table,
}

/// memchr-class chunked skip loop: examines haystack bytes eight at a time
/// through u64 word operations, looking for any of up to three needle bytes.
/// Usable whenever at most [`SWAR_MAX_NEEDLES`] distinct bytes leave the
/// automaton root, which covers ASCII-anchored signature sets; databases
/// with wider start sets (e.g. hash-derived binary signatures) keep the
/// table walk.
#[derive(Debug, Clone, Copy)]
struct SwarPrefilter {
    /// The start bytes, padded by repeating the first.
    needles: [u8; SWAR_MAX_NEEDLES],
    count: usize,
}

/// Maximum distinct root-leaving bytes the SWAR skip loop handles.
pub const SWAR_MAX_NEEDLES: usize = 3;

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// Mycroft zero-byte test: the returned word has (at least) the high bit of
/// every zero byte of `x` set. Spurious high bits can only appear *above*
/// the first zero byte — borrow propagation needs a zero below it — so
/// `trailing_zeros / 8` locates the first zero byte exactly, and a word with
/// no zero bytes always maps to 0.
#[inline(always)]
fn swar_zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(SWAR_LO) & !x & SWAR_HI
}

impl SwarPrefilter {
    fn new(start: &[bool; 256]) -> Option<Self> {
        let bytes: Vec<u8> = (0u16..256)
            .filter(|&b| start[b as usize])
            .map(|b| b as u8)
            .collect();
        if bytes.is_empty() || bytes.len() > SWAR_MAX_NEEDLES {
            return None;
        }
        let mut needles = [bytes[0]; SWAR_MAX_NEEDLES];
        needles[..bytes.len()].copy_from_slice(&bytes);
        Some(SwarPrefilter {
            needles,
            count: bytes.len(),
        })
    }

    /// Offset of the first occurrence of any needle byte in `hay`.
    #[inline]
    fn find(&self, hay: &[u8]) -> Option<usize> {
        let n0 = SWAR_LO.wrapping_mul(self.needles[0] as u64);
        let n1 = SWAR_LO.wrapping_mul(self.needles[1] as u64);
        let n2 = SWAR_LO.wrapping_mul(self.needles[2] as u64);
        let mut i = 0usize;
        while i + 8 <= hay.len() {
            let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte chunk"));
            let mut hits = swar_zero_bytes(w ^ n0);
            if self.count > 1 {
                hits |= swar_zero_bytes(w ^ n1);
            }
            if self.count > 2 {
                hits |= swar_zero_bytes(w ^ n2);
            }
            if hits != 0 {
                // Each per-needle mask marks its own first hit exactly, so
                // the lowest set bit of the union is the earliest hit.
                return Some(i + (hits.trailing_zeros() / 8) as usize);
            }
            i += 8;
        }
        hay[i..]
            .iter()
            .position(|&b| self.needles[..self.count].contains(&b))
            .map(|p| i + p)
    }
}

/// One shufti classifier: a byte set approximated by two nibble-indexed
/// shuffle tables. Set members are grouped by high nibble into up to eight
/// one-hot buckets; a byte is *classified in* when its low-nibble bucket
/// mask intersects its high-nibble bucket mask. With more than eight
/// high-nibble groups, buckets are shared and the classification
/// over-approximates (never under-approximates), so callers confirm
/// candidates against an exact table.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
struct ShuftiTables {
    /// `lo_buckets[b & 15]`: buckets containing a set byte with that
    /// low nibble.
    lo_buckets: [u8; 16],
    /// `hi_buckets[b >> 4]`: bucket assigned to that high-nibble group.
    hi_buckets: [u8; 16],
}

#[cfg(target_arch = "x86_64")]
impl ShuftiTables {
    fn new(set: &[bool; 256]) -> Self {
        let mut lo_buckets = [0u8; 16];
        let mut hi_buckets = [0u8; 16];
        let mut group_bit = [0u8; 16];
        let mut groups = 0u32;
        for (b, &wanted) in set.iter().enumerate() {
            if !wanted {
                continue;
            }
            let (hi, lo) = (b >> 4, b & 15);
            if group_bit[hi] == 0 {
                group_bit[hi] = 1u8 << (groups % 8);
                groups += 1;
            }
            hi_buckets[hi] |= group_bit[hi];
            lo_buckets[lo] |= group_bit[hi];
        }
        ShuftiTables {
            lo_buckets,
            hi_buckets,
        }
    }
}

/// Hyperscan-style "shufti" skip loop: classifies 16 haystack bytes per step
/// with nibble-indexed shuffle lookups — handles the hash-derived binary
/// signature sets (10+ distinct start bytes) that SWAR cannot. When every
/// pattern is at least two bytes long it runs in *double* mode, requiring a
/// start-set byte immediately followed by a second-position byte: on random
/// data that cuts candidate density quadratically (≈0.15% instead of ≈4%
/// for a 10-byte set), which keeps the scan inside the vector loop instead
/// of bouncing through root-state automaton entries.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
struct ShuftiPrefilter {
    first: ShuftiTables,
    /// Classifier for the byte *after* a candidate start byte; `None` when
    /// some pattern is a single byte (pair filtering would lose matches).
    second: Option<ShuftiTables>,
}

#[cfg(target_arch = "x86_64")]
impl ShuftiPrefilter {
    fn new(start: &[bool; 256], patterns: &[Vec<u8>]) -> Option<Self> {
        if !std::arch::is_x86_feature_detected!("ssse3") {
            return None;
        }
        // Pair mode is sound only if every match begins with two bytes:
        // a match starting at p implies hay[p] ∈ start AND hay[p+1] ∈
        // second, so skipping positions failing the pair test cannot skip
        // a match start. A 1-byte pattern breaks that implication.
        let second = if patterns.iter().all(|p| p.len() >= 2) {
            let mut set = [false; 256];
            for p in patterns {
                set[p[1] as usize] = true;
            }
            Some(ShuftiTables::new(&set))
        } else {
            None
        };
        Some(ShuftiPrefilter {
            first: ShuftiTables::new(start),
            second,
        })
    }

    /// Offset of the first viable match start in `hay`: a byte in the exact
    /// `start` set (single mode), additionally followed by a second-set
    /// candidate byte (double mode). Either way the result is a position
    /// the root-state automaton walk must inspect; positions skipped are
    /// exactly those that cannot begin a match.
    #[inline]
    fn find(&self, hay: &[u8], start: &[bool; 256]) -> Option<usize> {
        // SAFETY: construction verified SSSE3 support.
        unsafe { self.find_ssse3(hay, start) }
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn find_ssse3(&self, hay: &[u8], start: &[bool; 256]) -> Option<usize> {
        use core::arch::x86_64::*;
        let nibble = _mm_set1_epi8(0x0f);
        let zero = _mm_setzero_si128();
        let classify = |tbl: &ShuftiTables, data: __m128i| -> u32 {
            let lo_tbl = _mm_loadu_si128(tbl.lo_buckets.as_ptr() as *const __m128i);
            let hi_tbl = _mm_loadu_si128(tbl.hi_buckets.as_ptr() as *const __m128i);
            let lo = _mm_and_si128(data, nibble);
            // Per-byte high nibble: the 16-bit shift bleeds bits across the
            // byte boundary, but the nibble mask discards exactly those.
            let hi = _mm_and_si128(_mm_srli_epi16(data, 4), nibble);
            let class = _mm_and_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi));
            !(_mm_movemask_epi8(_mm_cmpeq_epi8(class, zero)) as u32) & 0xffff
        };
        let mut i = 0usize;
        if let Some(second) = &self.second {
            // Double mode: lane j is a candidate iff hay[i+j] classifies
            // into the start set and hay[i+j+1] into the second set. The
            // +1-shifted load needs one lookahead byte past the chunk.
            while i + 17 <= hay.len() {
                let d0 = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
                let d1 = _mm_loadu_si128(hay.as_ptr().add(i + 1) as *const __m128i);
                let mut cand = classify(&self.first, d0) & classify(second, d1);
                while cand != 0 {
                    let off = i + cand.trailing_zeros() as usize;
                    if start[hay[off] as usize] {
                        return Some(off);
                    }
                    cand &= cand - 1;
                }
                i += 16;
            }
        } else {
            while i + 16 <= hay.len() {
                let data = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
                let mut cand = classify(&self.first, data);
                while cand != 0 {
                    let off = i + cand.trailing_zeros() as usize;
                    if start[hay[off] as usize] {
                        return Some(off);
                    }
                    cand &= cand - 1;
                }
                i += 16;
            }
        }
        // Scalar tail (and the final pair-spanning positions in double
        // mode): exact start-set walk, conservatively ignoring the pair
        // test — a false candidate costs one harmless root transition.
        hay[i..]
            .iter()
            .position(|&b| start[b as usize])
            .map(|p| i + p)
    }
}

/// A single match: which pattern, and the byte offset just past its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcMatch {
    pub pattern: usize,
    pub end: usize,
}

impl AhoCorasick {
    /// Builds the automaton. Empty patterns are rejected by debug assertion
    /// and never match in release builds.
    pub fn new(patterns: Vec<Vec<u8>>) -> Self {
        debug_assert!(patterns.iter().all(|p| !p.is_empty()), "empty pattern");
        // Trie construction with dense rows.
        let mut goto_: Vec<u32> = vec![0; 256]; // state 0 = root
        let mut output: Vec<Vec<u32>> = vec![Vec::new()];
        let mut states = 1u32;
        for (pi, pat) in patterns.iter().enumerate() {
            let mut s = 0u32;
            for &b in pat {
                let slot = s as usize * 256 + b as usize;
                if goto_[slot] == 0 {
                    goto_.extend(std::iter::repeat_n(0, 256));
                    output.push(Vec::new());
                    goto_[slot] = states;
                    states += 1;
                }
                s = goto_[slot];
            }
            output[s as usize].push(pi as u32);
        }
        // BFS to compute fail links and convert to a full DFA.
        let mut fail = vec![0u32; states as usize];
        let mut queue = std::collections::VecDeque::new();
        for &s in &goto_[..256] {
            if s != 0 {
                fail[s as usize] = 0;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            for b in 0..256usize {
                let t = goto_[s as usize * 256 + b];
                if t != 0 {
                    queue.push_back(t);
                    let f = goto_[fail[s as usize] as usize * 256 + b];
                    fail[t as usize] = f;
                    // Merge outputs along the fail chain once, here.
                    let merged: Vec<u32> = output[f as usize].clone();
                    output[t as usize].extend(merged);
                } else {
                    // DFA conversion: missing transition follows fail link.
                    goto_[s as usize * 256 + b] = goto_[fail[s as usize] as usize * 256 + b];
                }
            }
        }
        let mut start = [false; 256];
        for (b, flag) in start.iter_mut().enumerate() {
            *flag = goto_[b] != 0;
        }
        let prefilter = match SwarPrefilter::new(&start) {
            Some(pf) => Prefilter::Swar(pf),
            None => Self::wide_prefilter(&start, &patterns),
        };
        AhoCorasick {
            goto_,
            output,
            patterns,
            prefilter,
            start,
        }
    }

    /// Prefilter for start sets too wide for SWAR: shufti where the CPU
    /// supports it, the scalar table walk otherwise.
    #[cfg(target_arch = "x86_64")]
    fn wide_prefilter(start: &[bool; 256], patterns: &[Vec<u8>]) -> Prefilter {
        match ShuftiPrefilter::new(start, patterns) {
            Some(pf) => Prefilter::Shufti(pf),
            None => Prefilter::Table,
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn wide_prefilter(_start: &[bool; 256], _patterns: &[Vec<u8>]) -> Prefilter {
        Prefilter::Table
    }

    /// Number of distinct bytes that leave the root state (the prefilter's
    /// start set).
    pub fn start_byte_count(&self) -> usize {
        self.start.iter().filter(|&&b| b).count()
    }

    /// Whether the root skip loop runs the SWAR word-scan path.
    pub fn uses_swar_prefilter(&self) -> bool {
        matches!(self.prefilter, Prefilter::Swar(_))
    }

    /// Whether the root skip loop runs the SSSE3 shufti path.
    pub fn uses_shufti_prefilter(&self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            matches!(self.prefilter, Prefilter::Shufti(_))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Stable name of the active root-skip strategy (for benches and logs).
    pub fn prefilter_kind(&self) -> &'static str {
        match self.prefilter {
            Prefilter::Swar(_) => "swar",
            #[cfg(target_arch = "x86_64")]
            Prefilter::Shufti(_) => "shufti",
            Prefilter::Table => "table",
        }
    }

    /// Number of indexed patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// The bytes of pattern `i`.
    pub fn pattern(&self, i: usize) -> &[u8] {
        &self.patterns[i]
    }

    /// Finds all matches (including overlapping ones) in `haystack`,
    /// invoking `f(match)` for each. Returning `false` from `f` stops the
    /// search early.
    ///
    /// Uses the first-byte prefilter: bytes that cannot leave the root state
    /// are skipped in a tight loop — eight bytes per step through the SWAR
    /// word scan when the start set has at most [`SWAR_MAX_NEEDLES`] bytes,
    /// sixteen bytes per step through the SSSE3 shufti scan for wider sets,
    /// byte-at-a-time over the 256-byte `start` table as the portable
    /// fallback. Every strategy is exactly equivalent to stepping the DFA
    /// (a non-starting byte maps the root to itself and the root emits
    /// nothing) but clean data never touches the goto table.
    pub fn find_each<F: FnMut(AcMatch) -> bool>(&self, haystack: &[u8], mut f: F) {
        let mut s = 0u32;
        let mut i = 0usize;
        while i < haystack.len() {
            if s == 0 {
                let skip = match &self.prefilter {
                    Prefilter::Swar(pf) => pf.find(&haystack[i..]),
                    #[cfg(target_arch = "x86_64")]
                    Prefilter::Shufti(pf) => pf.find(&haystack[i..], &self.start),
                    Prefilter::Table => haystack[i..].iter().position(|&b| self.start[b as usize]),
                };
                match skip {
                    Some(off) => i += off,
                    None => return,
                }
            }
            s = self.goto_[s as usize * 256 + haystack[i] as usize];
            let out = &self.output[s as usize];
            if !out.is_empty() {
                for &pi in out {
                    if !f(AcMatch {
                        pattern: pi as usize,
                        end: i + 1,
                    }) {
                        return;
                    }
                }
            }
            i += 1;
        }
    }

    /// `find_each` without the first-byte prefilter: one dense-DFA transition
    /// per input byte. Kept as the reference path for equivalence tests and
    /// the prefilter head-to-head in `perf_scanner`.
    pub fn find_each_unfiltered<F: FnMut(AcMatch) -> bool>(&self, haystack: &[u8], mut f: F) {
        let mut s = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            s = self.goto_[s as usize * 256 + b as usize];
            for &pi in &self.output[s as usize] {
                if !f(AcMatch {
                    pattern: pi as usize,
                    end: i + 1,
                }) {
                    return;
                }
            }
        }
    }

    /// Collects all matches.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<AcMatch> {
        let mut out = Vec::new();
        self.find_each(haystack, |m| {
            out.push(m);
            true
        });
        out
    }

    /// True if any pattern occurs in `haystack`.
    pub fn any_match(&self, haystack: &[u8]) -> bool {
        let mut hit = false;
        self.find_each(haystack, |_| {
            hit = true;
            false
        });
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pats(ps: &[&[u8]]) -> AhoCorasick {
        AhoCorasick::new(ps.iter().map(|p| p.to_vec()).collect())
    }

    #[test]
    fn classic_he_she_his_hers() {
        let ac = pats(&[b"he", b"she", b"his", b"hers"]);
        let ms = ac.find_all(b"ushers");
        // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
        let got: Vec<(usize, usize)> = ms.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(got.contains(&(1, 4)), "she: {got:?}");
        assert!(got.contains(&(0, 4)), "he: {got:?}");
        assert!(got.contains(&(3, 6)), "hers: {got:?}");
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn no_match() {
        let ac = pats(&[b"virus", b"trojan"]);
        assert!(ac.find_all(b"perfectly clean data").is_empty());
        assert!(!ac.any_match(b"nothing here"));
    }

    #[test]
    fn match_at_start_and_end() {
        let ac = pats(&[b"abc"]);
        assert_eq!(ac.find_all(b"abc").len(), 1);
        assert_eq!(ac.find_all(b"abcxxabc").len(), 2);
    }

    #[test]
    fn overlapping_occurrences() {
        let ac = pats(&[b"aa"]);
        assert_eq!(ac.find_all(b"aaaa").len(), 3);
    }

    #[test]
    fn duplicate_patterns_both_reported() {
        let ac = pats(&[b"xy", b"xy"]);
        let ms = ac.find_all(b"xy");
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn binary_patterns() {
        let ac = pats(&[&[0x00, 0xff, 0x00], &[0xde, 0xad]]);
        let hay = [0x01, 0x00, 0xff, 0x00, 0xde, 0xad, 0x00];
        let ms = ac.find_all(&hay);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn early_stop() {
        let ac = pats(&[b"a"]);
        let mut count = 0;
        ac.find_each(b"aaaaaa", |_| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn prefix_patterns() {
        let ac = pats(&[b"abcd", b"ab", b"abcdef"]);
        let ms = ac.find_all(b"abcdef");
        let got: Vec<(usize, usize)> = ms.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(got.contains(&(1, 2)));
        assert!(got.contains(&(0, 4)));
        assert!(got.contains(&(2, 6)));
    }

    #[test]
    fn swar_engages_only_for_small_start_sets() {
        let small = pats(&[b"virus", b"vermin", b"trojan"]); // starts: v, t
        assert_eq!(small.start_byte_count(), 2);
        assert!(small.uses_swar_prefilter());
        let wide = AhoCorasick::new((0u8..8).map(|b| vec![b, b]).collect());
        assert_eq!(wide.start_byte_count(), 8);
        assert!(!wide.uses_swar_prefilter());
        // Wide sets take shufti on SSSE3 hosts, the table walk elsewhere.
        assert!(matches!(wide.prefilter_kind(), "shufti" | "table"));
    }

    #[test]
    fn wide_prefilter_finds_matches_at_all_offsets() {
        // 10 hash-like start bytes (the roster shape): exercises shufti on
        // SSSE3 hosts across every alignment within the 16-byte chunks,
        // including the scalar tail.
        let patterns: Vec<Vec<u8>> = (0u8..10)
            .map(|b| vec![b.wrapping_mul(27) ^ 0x91, b])
            .collect();
        let ac = AhoCorasick::new(patterns.clone());
        assert!(!ac.uses_swar_prefilter());
        for offset in 0..40usize {
            let mut hay = vec![0xEEu8; offset];
            hay.extend_from_slice(&patterns[7]);
            hay.extend(std::iter::repeat_n(0xEEu8, 5));
            let ms = ac.find_all(&hay);
            assert_eq!(ms.len(), 1, "offset {offset}");
            assert_eq!(
                ms[0],
                AcMatch {
                    pattern: 7,
                    end: offset + 2
                },
                "offset {offset}"
            );
        }
        assert!(ac.find_all(&[0xEEu8; 100]).is_empty());
    }

    #[test]
    fn shufti_bucket_sharing_stays_exact() {
        // 16 distinct high nibbles force bucket sharing (only 8 one-hot
        // bits), so the classifier over-approximates and must fall back on
        // the exact start-table confirm. Plant bytes that collide in the
        // shared buckets: for start byte 0x01 and 0x91 (likely same bucket
        // parity), the byte 0x11 is a classic cross product false positive.
        let patterns: Vec<Vec<u8>> = (0u8..16).map(|hi| vec![(hi << 4) | 1, 0xAB]).collect();
        let ac = AhoCorasick::new(patterns);
        assert_eq!(ac.start_byte_count(), 16);
        let mut hay = vec![0u8; 64];
        // Fill with bytes whose low nibble is 1 but that are NOT start
        // bytes... every (hi<<4)|1 IS a start byte here, so use low nibble 2.
        for (i, b) in hay.iter_mut().enumerate() {
            *b = ((i as u8) << 4) | 2;
        }
        assert!(ac.find_all(&hay).is_empty());
        hay[37] = 0x51;
        hay[38] = 0xAB;
        let ms = ac.find_all(&hay);
        assert_eq!(ms.len(), 1);
        assert_eq!(
            ms[0],
            AcMatch {
                pattern: 5,
                end: 39
            }
        );
    }

    #[test]
    fn swar_finds_matches_at_all_offsets() {
        // One-needle automaton: hits at every alignment within and past the
        // 8-byte SWAR chunks, including the sub-chunk tail.
        let ac = pats(&[b"q"]);
        assert!(ac.uses_swar_prefilter());
        for offset in 0..25usize {
            let mut hay = vec![b'.'; offset];
            hay.push(b'q');
            hay.extend(std::iter::repeat_n(b'.', 3));
            let ms = ac.find_all(&hay);
            assert_eq!(ms.len(), 1, "offset {offset}");
            assert_eq!(ms[0].end, offset + 1, "offset {offset}");
        }
        assert!(ac.find_all(&[b'.'; 100]).is_empty());
    }

    #[test]
    fn swar_three_needles_earliest_hit_wins() {
        let ac = pats(&[b"az", b"bz", b"cz"]); // starts: a, b, c
        assert!(ac.uses_swar_prefilter());
        let hay = b"........c.....bz...az....";
        let ms = ac.find_all(hay);
        // Only "bz" and "az" complete; the prefilter must not skip past the
        // earlier 'c' in a way that loses the later matches.
        let got: Vec<(usize, usize)> = ms.iter().map(|m| (m.pattern, m.end)).collect();
        assert_eq!(got, vec![(1, 16), (0, 21)]);
    }

    /// Reference implementation for the property test.
    fn naive_find_all(patterns: &[Vec<u8>], hay: &[u8]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (pi, p) in patterns.iter().enumerate() {
            if p.is_empty() {
                continue;
            }
            for start in 0..hay.len().saturating_sub(p.len() - 1) {
                if &hay[start..start + p.len()] == p.as_slice() {
                    out.push((pi, start + p.len()));
                }
            }
        }
        out.sort();
        out
    }

    proptest! {
        #[test]
        fn matches_naive(
            patterns in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 1..6), 1..8),
            hay in proptest::collection::vec(0u8..4, 0..200)
        ) {
            let ac = AhoCorasick::new(patterns.clone());
            let mut got: Vec<(usize, usize)> =
                ac.find_all(&hay).iter().map(|m| (m.pattern, m.end)).collect();
            got.sort();
            prop_assert_eq!(got, naive_find_all(&patterns, &hay));
        }

        /// The prefiltered scan loop must report the identical match stream
        /// (same matches, same order) as the plain dense-DFA walk. The wider
        /// byte alphabet here leaves most haystack bytes outside the start
        /// set so the skip loop actually engages.
        #[test]
        fn prefilter_equals_unfiltered(
            patterns in proptest::collection::vec(
                proptest::collection::vec(0u8..16, 1..6), 1..10),
            hay in proptest::collection::vec(any::<u8>(), 0..400)
        ) {
            let ac = AhoCorasick::new(patterns);
            let mut filtered = Vec::new();
            ac.find_each(&hay, |m| {
                filtered.push(m);
                true
            });
            let mut unfiltered = Vec::new();
            ac.find_each_unfiltered(&hay, |m| {
                unfiltered.push(m);
                true
            });
            prop_assert_eq!(filtered, unfiltered);
        }

        /// Same equivalence, pinned to the SWAR skip loop: patterns drawn
        /// from a two-byte leading alphabet keep the start set ≤ 2, so the
        /// vectorized path (not the table walk) is what's being exercised.
        #[test]
        fn swar_prefilter_equals_unfiltered(
            patterns in proptest::collection::vec(
                (0u8..2, proptest::collection::vec(any::<u8>(), 0..5))
                    .prop_map(|(first, rest)| {
                        let mut p = vec![first + b'a'];
                        p.extend(rest);
                        p
                    }),
                1..8),
            hay in proptest::collection::vec(any::<u8>(), 0..400)
        ) {
            let ac = AhoCorasick::new(patterns);
            prop_assert!(ac.uses_swar_prefilter());
            let mut filtered = Vec::new();
            ac.find_each(&hay, |m| {
                filtered.push(m);
                true
            });
            let mut unfiltered = Vec::new();
            ac.find_each_unfiltered(&hay, |m| {
                unfiltered.push(m);
                true
            });
            prop_assert_eq!(filtered, unfiltered);
        }
    }
}
