//! Aho–Corasick multi-pattern string matching.
//!
//! Dense goto tables (256 transitions per state) keep the match loop at one
//! array index per input byte, which is what makes scanning megabytes of
//! downloads against hundreds of signatures cheap. Memory is bounded by the
//! total length of the indexed patterns, which for a signature database is
//! small.

/// A compiled Aho–Corasick automaton over byte patterns.
pub struct AhoCorasick {
    /// `goto_[state * 256 + byte]` = next state.
    goto_: Vec<u32>,
    /// Pattern indices that end at each state (after fail-link merging).
    output: Vec<Vec<u32>>,
    patterns: Vec<Vec<u8>>,
    /// First-byte prefilter: `start[b]` is true iff byte `b` leaves the root
    /// state. While the automaton sits at the root (the overwhelmingly common
    /// state on clean data), the scan loop skips runs of non-starting bytes
    /// through this 256-byte table instead of walking the cache-hostile
    /// dense goto row.
    start: [bool; 256],
}

/// A single match: which pattern, and the byte offset just past its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcMatch {
    pub pattern: usize,
    pub end: usize,
}

impl AhoCorasick {
    /// Builds the automaton. Empty patterns are rejected by debug assertion
    /// and never match in release builds.
    pub fn new(patterns: Vec<Vec<u8>>) -> Self {
        debug_assert!(patterns.iter().all(|p| !p.is_empty()), "empty pattern");
        // Trie construction with dense rows.
        let mut goto_: Vec<u32> = vec![0; 256]; // state 0 = root
        let mut output: Vec<Vec<u32>> = vec![Vec::new()];
        let mut states = 1u32;
        for (pi, pat) in patterns.iter().enumerate() {
            let mut s = 0u32;
            for &b in pat {
                let slot = s as usize * 256 + b as usize;
                if goto_[slot] == 0 {
                    goto_.extend(std::iter::repeat_n(0, 256));
                    output.push(Vec::new());
                    goto_[slot] = states;
                    states += 1;
                }
                s = goto_[slot];
            }
            output[s as usize].push(pi as u32);
        }
        // BFS to compute fail links and convert to a full DFA.
        let mut fail = vec![0u32; states as usize];
        let mut queue = std::collections::VecDeque::new();
        for &s in &goto_[..256] {
            if s != 0 {
                fail[s as usize] = 0;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            for b in 0..256usize {
                let t = goto_[s as usize * 256 + b];
                if t != 0 {
                    queue.push_back(t);
                    let f = goto_[fail[s as usize] as usize * 256 + b];
                    fail[t as usize] = f;
                    // Merge outputs along the fail chain once, here.
                    let merged: Vec<u32> = output[f as usize].clone();
                    output[t as usize].extend(merged);
                } else {
                    // DFA conversion: missing transition follows fail link.
                    goto_[s as usize * 256 + b] = goto_[fail[s as usize] as usize * 256 + b];
                }
            }
        }
        let mut start = [false; 256];
        for (b, flag) in start.iter_mut().enumerate() {
            *flag = goto_[b] != 0;
        }
        AhoCorasick {
            goto_,
            output,
            patterns,
            start,
        }
    }

    /// Number of indexed patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// The bytes of pattern `i`.
    pub fn pattern(&self, i: usize) -> &[u8] {
        &self.patterns[i]
    }

    /// Finds all matches (including overlapping ones) in `haystack`,
    /// invoking `f(match)` for each. Returning `false` from `f` stops the
    /// search early.
    ///
    /// Uses the first-byte prefilter: bytes that cannot leave the root state
    /// are skipped in a tight loop over the 256-byte `start` table. This is
    /// exactly equivalent to stepping the DFA (a non-starting byte maps the
    /// root to itself and the root emits nothing) but clean data never
    /// touches the goto table.
    pub fn find_each<F: FnMut(AcMatch) -> bool>(&self, haystack: &[u8], mut f: F) {
        let mut s = 0u32;
        let mut i = 0usize;
        while i < haystack.len() {
            if s == 0 {
                match haystack[i..].iter().position(|&b| self.start[b as usize]) {
                    Some(off) => i += off,
                    None => return,
                }
            }
            s = self.goto_[s as usize * 256 + haystack[i] as usize];
            let out = &self.output[s as usize];
            if !out.is_empty() {
                for &pi in out {
                    if !f(AcMatch {
                        pattern: pi as usize,
                        end: i + 1,
                    }) {
                        return;
                    }
                }
            }
            i += 1;
        }
    }

    /// `find_each` without the first-byte prefilter: one dense-DFA transition
    /// per input byte. Kept as the reference path for equivalence tests and
    /// the prefilter head-to-head in `perf_scanner`.
    pub fn find_each_unfiltered<F: FnMut(AcMatch) -> bool>(&self, haystack: &[u8], mut f: F) {
        let mut s = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            s = self.goto_[s as usize * 256 + b as usize];
            for &pi in &self.output[s as usize] {
                if !f(AcMatch {
                    pattern: pi as usize,
                    end: i + 1,
                }) {
                    return;
                }
            }
        }
    }

    /// Collects all matches.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<AcMatch> {
        let mut out = Vec::new();
        self.find_each(haystack, |m| {
            out.push(m);
            true
        });
        out
    }

    /// True if any pattern occurs in `haystack`.
    pub fn any_match(&self, haystack: &[u8]) -> bool {
        let mut hit = false;
        self.find_each(haystack, |_| {
            hit = true;
            false
        });
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pats(ps: &[&[u8]]) -> AhoCorasick {
        AhoCorasick::new(ps.iter().map(|p| p.to_vec()).collect())
    }

    #[test]
    fn classic_he_she_his_hers() {
        let ac = pats(&[b"he", b"she", b"his", b"hers"]);
        let ms = ac.find_all(b"ushers");
        // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
        let got: Vec<(usize, usize)> = ms.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(got.contains(&(1, 4)), "she: {got:?}");
        assert!(got.contains(&(0, 4)), "he: {got:?}");
        assert!(got.contains(&(3, 6)), "hers: {got:?}");
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn no_match() {
        let ac = pats(&[b"virus", b"trojan"]);
        assert!(ac.find_all(b"perfectly clean data").is_empty());
        assert!(!ac.any_match(b"nothing here"));
    }

    #[test]
    fn match_at_start_and_end() {
        let ac = pats(&[b"abc"]);
        assert_eq!(ac.find_all(b"abc").len(), 1);
        assert_eq!(ac.find_all(b"abcxxabc").len(), 2);
    }

    #[test]
    fn overlapping_occurrences() {
        let ac = pats(&[b"aa"]);
        assert_eq!(ac.find_all(b"aaaa").len(), 3);
    }

    #[test]
    fn duplicate_patterns_both_reported() {
        let ac = pats(&[b"xy", b"xy"]);
        let ms = ac.find_all(b"xy");
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn binary_patterns() {
        let ac = pats(&[&[0x00, 0xff, 0x00], &[0xde, 0xad]]);
        let hay = [0x01, 0x00, 0xff, 0x00, 0xde, 0xad, 0x00];
        let ms = ac.find_all(&hay);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn early_stop() {
        let ac = pats(&[b"a"]);
        let mut count = 0;
        ac.find_each(b"aaaaaa", |_| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn prefix_patterns() {
        let ac = pats(&[b"abcd", b"ab", b"abcdef"]);
        let ms = ac.find_all(b"abcdef");
        let got: Vec<(usize, usize)> = ms.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(got.contains(&(1, 2)));
        assert!(got.contains(&(0, 4)));
        assert!(got.contains(&(2, 6)));
    }

    /// Reference implementation for the property test.
    fn naive_find_all(patterns: &[Vec<u8>], hay: &[u8]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (pi, p) in patterns.iter().enumerate() {
            if p.is_empty() {
                continue;
            }
            for start in 0..hay.len().saturating_sub(p.len() - 1) {
                if &hay[start..start + p.len()] == p.as_slice() {
                    out.push((pi, start + p.len()));
                }
            }
        }
        out.sort();
        out
    }

    proptest! {
        #[test]
        fn matches_naive(
            patterns in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 1..6), 1..8),
            hay in proptest::collection::vec(0u8..4, 0..200)
        ) {
            let ac = AhoCorasick::new(patterns.clone());
            let mut got: Vec<(usize, usize)> =
                ac.find_all(&hay).iter().map(|m| (m.pattern, m.end)).collect();
            got.sort();
            prop_assert_eq!(got, naive_find_all(&patterns, &hay));
        }

        /// The prefiltered scan loop must report the identical match stream
        /// (same matches, same order) as the plain dense-DFA walk. The wider
        /// byte alphabet here leaves most haystack bytes outside the start
        /// set so the skip loop actually engages.
        #[test]
        fn prefilter_equals_unfiltered(
            patterns in proptest::collection::vec(
                proptest::collection::vec(0u8..16, 1..6), 1..10),
            hay in proptest::collection::vec(any::<u8>(), 0..400)
        ) {
            let ac = AhoCorasick::new(patterns);
            let mut filtered = Vec::new();
            ac.find_each(&hay, |m| {
                filtered.push(m);
                true
            });
            let mut unfiltered = Vec::new();
            ac.find_each_unfiltered(&hay, |m| {
                unfiltered.push(m);
                true
            });
            prop_assert_eq!(filtered, unfiltered);
        }
    }
}
