//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! Used for Gnutella HUGE `urn:sha1` content addressing. SHA-1 is
//! cryptographically broken for collision resistance but remains the
//! identifier format the Gnutella network defined in 2002; we implement it
//! for wire compatibility, not for security.

use crate::base32::base32_encode;

/// A finished 20-byte SHA-1 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sha1Digest(pub [u8; 20]);

impl Sha1Digest {
    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        crate::to_hex(&self.0)
    }

    /// Base32 rendering as used inside `urn:sha1:` URNs (RFC 4648 alphabet,
    /// uppercase, no padding — 20 bytes encode to exactly 32 characters).
    pub fn to_base32(&self) -> String {
        base32_encode(&self.0)
    }

    /// Full URN form, e.g. `urn:sha1:PLSTHIPQGSSZTS5FJUPAKUZWUGYQYPFB`.
    pub fn to_urn(&self) -> String {
        format!("urn:sha1:{}", self.to_base32())
    }
}

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                Self::compress(&mut self.state, &self.buf);
                self.buf_len = 0;
            }
        }
        // Aligned 64-byte chunks compress straight from the input slice.
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            let block: &[u8; 64] = chunk.try_into().expect("chunks_exact yields 64 bytes");
            Self::compress(&mut self.state, block);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    pub fn finalize(mut self) -> Sha1Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Pad in place: 0x80, zeros to 56 mod 64, then the 64-bit big-endian
        // *bit* length of the message (captured before padding, so the
        // padding bytes themselves are never counted).
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len > 56 {
            // No room for the length in this block: flush it and pad a second.
            self.buf[self.buf_len..].fill(0);
            Self::compress(&mut self.state, &self.buf);
            self.buf_len = 0;
        }
        self.buf[self.buf_len..56].fill(0);
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        Self::compress(&mut self.state, &self.buf);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Sha1Digest(out)
    }

    /// The FIPS 180-1 compression function. Static over disjoint fields so
    /// callers can feed it `&self.buf` while mutating `self.state`, and
    /// `update` can compress borrowed input blocks without copying them.
    fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
        // 16-word rolling schedule instead of the full 80-word array: the
        // expansion only ever looks back 16 words.
        let mut w = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d, mut e] = *state;
        // Per-stage loops keep the round bodies branch-free so they unroll;
        // the single-loop form pays a schedule branch and a stage `match`
        // every round.
        macro_rules! expand {
            ($i:expr) => {{
                let v = (w[($i + 13) & 15] ^ w[($i + 8) & 15] ^ w[($i + 2) & 15] ^ w[$i & 15])
                    .rotate_left(1);
                w[$i & 15] = v;
                v
            }};
        }
        macro_rules! round {
            ($f:expr, $k:expr, $wi:expr) => {{
                let tmp = a
                    .rotate_left(5)
                    .wrapping_add($f)
                    .wrapping_add(e)
                    .wrapping_add($k)
                    .wrapping_add($wi);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = tmp;
            }};
        }
        for &wi in &w {
            round!((b & c) | ((!b) & d), 0x5A827999, wi);
        }
        for i in 16..20 {
            round!((b & c) | ((!b) & d), 0x5A827999, expand!(i));
        }
        for i in 20..40 {
            round!(b ^ c ^ d, 0x6ED9EBA1, expand!(i));
        }
        for i in 40..60 {
            round!((b & c) | (b & d) | (c & d), 0x8F1BBCDC, expand!(i));
        }
        for i in 60..80 {
            round!(b ^ c ^ d, 0xCA62C1D6, expand!(i));
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Sha1Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn vector_empty() {
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn vector_abc() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn vector_448_bits() {
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1(&data).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn vector_exact_block() {
        // 64-byte input exercises the no-buffer fast path plus padding block.
        let data = [0x61u8; 64];
        assert_eq!(
            sha1(&data).to_hex(),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for chunk in [1usize, 3, 7, 63, 64, 65, 100] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha1(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Message lengths that straddle the one-vs-two padding block split
        // (buffered 55 bytes fits one block; 56..=63 forces a second).
        let expect = [
            (55usize, "ddf57317ef34bfee3b6df83d359098930eb278bc"),
            (56, "a0d492bb0fc889d0eca3bc137066ab6f4f74f369"),
            (57, "11a02dcf95859677a62e75024067c22b165d890f"),
            (63, "c55856749bef509bdfe6bfebfc7bf4e793e82132"),
            (64, "bede92be29c3874e1b54ddc77988d606fc857a8e"),
            (65, "b05a80522b053d6dc7e0a517d0e70212c7dad11f"),
            (119, "504e27376a6e0f0dba8295b85cb25dc4dfa17d23"),
            (127, "34d5e582029e9b9b85b2febe31da3db7cdabaaea"),
            (128, "a09133e6730ffe899efb70204cb5646cd5dc24ee"),
        ];
        for (n, hex) in expect {
            let data: Vec<u8> = (0..n).map(|i| ((i * 7 + 3) % 256) as u8).collect();
            assert_eq!(sha1(&data).to_hex(), hex, "length {n}");
        }
    }

    #[test]
    fn urn_format() {
        let urn = sha1(b"hello world").to_urn();
        assert!(urn.starts_with("urn:sha1:"));
        assert_eq!(urn.len(), "urn:sha1:".len() + 32);
    }
}
