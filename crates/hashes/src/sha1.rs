//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! Used for Gnutella HUGE `urn:sha1` content addressing. SHA-1 is
//! cryptographically broken for collision resistance but remains the
//! identifier format the Gnutella network defined in 2002; we implement it
//! for wire compatibility, not for security.

use crate::base32::base32_encode;

/// A finished 20-byte SHA-1 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sha1Digest(pub [u8; 20]);

impl Sha1Digest {
    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        crate::to_hex(&self.0)
    }

    /// Base32 rendering as used inside `urn:sha1:` URNs (RFC 4648 alphabet,
    /// uppercase, no padding — 20 bytes encode to exactly 32 characters).
    pub fn to_base32(&self) -> String {
        base32_encode(&self.0)
    }

    /// Full URN form, e.g. `urn:sha1:PLSTHIPQGSSZTS5FJUPAKUZWUGYQYPFB`.
    pub fn to_urn(&self) -> String {
        format!("urn:sha1:{}", self.to_base32())
    }
}

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let buf = self.buf;
                Self::compress_many(&mut self.state, &buf);
                self.buf_len = 0;
            }
        }
        // Aligned 64-byte chunks compress straight from the input slice.
        let full = data.len() - data.len() % 64;
        Self::compress_many(&mut self.state, &data[..full]);
        let rest = &data[full..];
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Compresses a run of whole 64-byte blocks, dispatching once to the
    /// SHA-NI path when the CPU has it and falling back to the portable
    /// scalar rounds otherwise. Both paths compute the identical FIPS 180-1
    /// function, so which one runs never affects any digest.
    fn compress_many(state: &mut [u32; 5], blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % 64, 0);
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            // SAFETY: `available` verified the sha/ssse3/sse4.1 features.
            unsafe { ni::compress_blocks(state, blocks) };
            return;
        }
        for chunk in blocks.chunks_exact(64) {
            let block: &[u8; 64] = chunk.try_into().expect("chunks_exact yields 64 bytes");
            Self::compress(state, block);
        }
    }

    /// Rewinds the hasher to its initial state so one allocation-free
    /// instance can digest a whole batch of messages (see [`sha1_many`]).
    pub fn reset(&mut self) {
        self.state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
        self.len = 0;
        self.buf_len = 0;
    }

    /// Produces the digest of everything fed so far and resets the hasher
    /// for the next message in the batch.
    pub fn finalize_reset(&mut self) -> Sha1Digest {
        let digest = self.clone().finalize();
        self.reset();
        digest
    }

    pub fn finalize(mut self) -> Sha1Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Pad in place: 0x80, zeros to 56 mod 64, then the 64-bit big-endian
        // *bit* length of the message (captured before padding, so the
        // padding bytes themselves are never counted).
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len > 56 {
            // No room for the length in this block: flush it and pad a second.
            self.buf[self.buf_len..].fill(0);
            let buf = self.buf;
            Self::compress_many(&mut self.state, &buf);
            self.buf_len = 0;
        }
        self.buf[self.buf_len..56].fill(0);
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let buf = self.buf;
        Self::compress_many(&mut self.state, &buf);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Sha1Digest(out)
    }

    /// The FIPS 180-1 compression function. Static over disjoint fields so
    /// callers can feed it `&self.buf` while mutating `self.state`, and
    /// `update` can compress borrowed input blocks without copying them.
    fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
        // 16-word rolling schedule instead of the full 80-word array: the
        // expansion only ever looks back 16 words.
        let mut w = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d, mut e] = *state;
        // Per-stage loops keep the round bodies branch-free so they unroll;
        // the single-loop form pays a schedule branch and a stage `match`
        // every round.
        macro_rules! expand {
            ($i:expr) => {{
                let v = (w[($i + 13) & 15] ^ w[($i + 8) & 15] ^ w[($i + 2) & 15] ^ w[$i & 15])
                    .rotate_left(1);
                w[$i & 15] = v;
                v
            }};
        }
        macro_rules! round {
            ($f:expr, $k:expr, $wi:expr) => {{
                let tmp = a
                    .rotate_left(5)
                    .wrapping_add($f)
                    .wrapping_add(e)
                    .wrapping_add($k)
                    .wrapping_add($wi);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = tmp;
            }};
        }
        for &wi in &w {
            round!((b & c) | ((!b) & d), 0x5A827999, wi);
        }
        for i in 16..20 {
            round!((b & c) | ((!b) & d), 0x5A827999, expand!(i));
        }
        for i in 20..40 {
            round!(b ^ c ^ d, 0x6ED9EBA1, expand!(i));
        }
        for i in 40..60 {
            round!((b & c) | (b & d) | (c & d), 0x8F1BBCDC, expand!(i));
        }
        for i in 60..80 {
            round!(b ^ c ^ d, 0xCA62C1D6, expand!(i));
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }
}

/// Hardware SHA-1 via the x86 SHA extensions (`sha1rnds4` and friends).
///
/// Roughly 5× the scalar compression throughput, which matters because the
/// crawler SHA-1 hashes every downloaded body (gigabytes per study run) for
/// content identity. The instruction set computes the same FIPS 180-1
/// function, so digests are bit-identical to the scalar path and runtime
/// dispatch cannot perturb any simulation outcome.
#[cfg(target_arch = "x86_64")]
mod ni {
    use core::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = unprobed, 1 = unavailable, 2 = available.
    static AVAILABLE: AtomicU8 = AtomicU8::new(0);

    #[inline]
    pub fn available() -> bool {
        match AVAILABLE.load(Ordering::Relaxed) {
            0 => {
                let ok = std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                AVAILABLE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
            v => v == 2,
        }
    }

    /// Compresses whole 64-byte blocks with the SHA-NI round instructions.
    ///
    /// `sha1rnds4` performs four rounds at once on the packed `{a,b,c,d}`
    /// state; `sha1nexte` folds the rotated `e` into the next round block;
    /// `sha1msg1`/`sha1msg2` run the message-schedule expansion four words
    /// at a time. The structure below is the standard 20-group ladder with
    /// the schedule pipelined three groups ahead.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports sha, ssse3 and sse4.1
    /// (see [`available`]). `blocks.len()` must be a multiple of 64.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 5], blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % 64, 0);
        // Lane-reversal mask: the round instructions want the big-endian
        // words in descending lanes.
        let mask = _mm_set_epi64x(0x0001_0203_0405_0607, 0x0809_0a0b_0c0d_0e0f);
        let mut abcd = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        abcd = _mm_shuffle_epi32(abcd, 0x1B);
        let mut e0 = _mm_set_epi32(state[4] as i32, 0, 0, 0);

        for block in blocks.chunks_exact(64) {
            let abcd_save = abcd;
            let e0_save = e0;
            let p = block.as_ptr() as *const __m128i;

            // Rounds 0..16: load + byte-swap the four message words while
            // the first round groups run.
            let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
            e0 = _mm_add_epi32(e0, msg0);
            let mut e1 = abcd;
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

            let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
            msg0 = _mm_sha1msg1_epu32(msg0, msg1);

            let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
            msg1 = _mm_sha1msg1_epu32(msg1, msg2);
            msg0 = _mm_xor_si128(msg0, msg2);

            let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);
            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            msg0 = _mm_sha1msg2_epu32(msg0, msg3);
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
            msg2 = _mm_sha1msg1_epu32(msg2, msg3);
            msg1 = _mm_xor_si128(msg1, msg3);

            // Rounds 16..80: the repeating four-group pattern, with the
            // stage constant selector stepping 0→3 every twenty rounds.
            e0 = _mm_sha1nexte_epu32(e0, msg0);
            e1 = abcd;
            msg1 = _mm_sha1msg2_epu32(msg1, msg0);
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
            msg3 = _mm_sha1msg1_epu32(msg3, msg0);
            msg2 = _mm_xor_si128(msg2, msg0);

            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            msg2 = _mm_sha1msg2_epu32(msg2, msg1);
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
            msg0 = _mm_sha1msg1_epu32(msg0, msg1);
            msg3 = _mm_xor_si128(msg3, msg1);

            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            msg3 = _mm_sha1msg2_epu32(msg3, msg2);
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
            msg1 = _mm_sha1msg1_epu32(msg1, msg2);
            msg0 = _mm_xor_si128(msg0, msg2);

            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            msg0 = _mm_sha1msg2_epu32(msg0, msg3);
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
            msg2 = _mm_sha1msg1_epu32(msg2, msg3);
            msg1 = _mm_xor_si128(msg1, msg3);

            e0 = _mm_sha1nexte_epu32(e0, msg0);
            e1 = abcd;
            msg1 = _mm_sha1msg2_epu32(msg1, msg0);
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
            msg3 = _mm_sha1msg1_epu32(msg3, msg0);
            msg2 = _mm_xor_si128(msg2, msg0);

            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            msg2 = _mm_sha1msg2_epu32(msg2, msg1);
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
            msg0 = _mm_sha1msg1_epu32(msg0, msg1);
            msg3 = _mm_xor_si128(msg3, msg1);

            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            msg3 = _mm_sha1msg2_epu32(msg3, msg2);
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
            msg1 = _mm_sha1msg1_epu32(msg1, msg2);
            msg0 = _mm_xor_si128(msg0, msg2);

            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            msg0 = _mm_sha1msg2_epu32(msg0, msg3);
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
            msg2 = _mm_sha1msg1_epu32(msg2, msg3);
            msg1 = _mm_xor_si128(msg1, msg3);

            e0 = _mm_sha1nexte_epu32(e0, msg0);
            e1 = abcd;
            msg1 = _mm_sha1msg2_epu32(msg1, msg0);
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
            msg3 = _mm_sha1msg1_epu32(msg3, msg0);
            msg2 = _mm_xor_si128(msg2, msg0);

            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            msg2 = _mm_sha1msg2_epu32(msg2, msg1);
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
            msg0 = _mm_sha1msg1_epu32(msg0, msg1);
            msg3 = _mm_xor_si128(msg3, msg1);

            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            msg3 = _mm_sha1msg2_epu32(msg3, msg2);
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
            msg1 = _mm_sha1msg1_epu32(msg1, msg2);
            msg0 = _mm_xor_si128(msg0, msg2);

            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            msg0 = _mm_sha1msg2_epu32(msg0, msg3);
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
            msg2 = _mm_sha1msg1_epu32(msg2, msg3);
            msg1 = _mm_xor_si128(msg1, msg3);

            e0 = _mm_sha1nexte_epu32(e0, msg0);
            e1 = abcd;
            msg1 = _mm_sha1msg2_epu32(msg1, msg0);
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
            msg3 = _mm_sha1msg1_epu32(msg3, msg0);
            msg2 = _mm_xor_si128(msg2, msg0);

            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            msg2 = _mm_sha1msg2_epu32(msg2, msg1);
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
            msg3 = _mm_xor_si128(msg3, msg1);

            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            msg3 = _mm_sha1msg2_epu32(msg3, msg2);
            abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

            // Fold this block's result into the running state.
            e0 = _mm_sha1nexte_epu32(e0, e0_save);
            abcd = _mm_add_epi32(abcd, abcd_save);
        }

        abcd = _mm_shuffle_epi32(abcd, 0x1B);
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, abcd);
        state[4] = _mm_extract_epi32(e0, 3) as u32;
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Sha1Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// SHA-1 of every message in a batch, reusing one hasher across the whole
/// slice so per-message setup is paid once. This is the bulk entry point the
/// batched scan service hashes accumulated download bodies through.
pub fn sha1_many<'a, I>(bodies: I) -> Vec<Sha1Digest>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut h = Sha1::new();
    bodies
        .into_iter()
        .map(|body| {
            h.update(body);
            h.finalize_reset()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn vector_empty() {
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn vector_abc() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn vector_448_bits() {
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1(&data).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn vector_exact_block() {
        // 64-byte input exercises the no-buffer fast path plus padding block.
        let data = [0x61u8; 64];
        assert_eq!(
            sha1(&data).to_hex(),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for chunk in [1usize, 3, 7, 63, 64, 65, 100] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha1(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Message lengths that straddle the one-vs-two padding block split
        // (buffered 55 bytes fits one block; 56..=63 forces a second).
        let expect = [
            (55usize, "ddf57317ef34bfee3b6df83d359098930eb278bc"),
            (56, "a0d492bb0fc889d0eca3bc137066ab6f4f74f369"),
            (57, "11a02dcf95859677a62e75024067c22b165d890f"),
            (63, "c55856749bef509bdfe6bfebfc7bf4e793e82132"),
            (64, "bede92be29c3874e1b54ddc77988d606fc857a8e"),
            (65, "b05a80522b053d6dc7e0a517d0e70212c7dad11f"),
            (119, "504e27376a6e0f0dba8295b85cb25dc4dfa17d23"),
            (127, "34d5e582029e9b9b85b2febe31da3db7cdabaaea"),
            (128, "a09133e6730ffe899efb70204cb5646cd5dc24ee"),
        ];
        for (n, hex) in expect {
            let data: Vec<u8> = (0..n).map(|i| ((i * 7 + 3) % 256) as u8).collect();
            assert_eq!(sha1(&data).to_hex(), hex, "length {n}");
        }
    }

    #[test]
    fn sha1_many_matches_oneshot() {
        let bodies: Vec<Vec<u8>> = (0..8usize)
            .map(|n| (0..n * 37).map(|i| (i * 11 + n) as u8).collect())
            .collect();
        let batched = sha1_many(bodies.iter().map(|b| b.as_slice()));
        for (body, digest) in bodies.iter().zip(&batched) {
            assert_eq!(*digest, sha1(body));
        }
    }

    #[test]
    fn finalize_reset_chains_messages() {
        let mut h = Sha1::new();
        h.update(b"abc");
        assert_eq!(h.finalize_reset(), sha1(b"abc"));
        h.update(b"hello world");
        assert_eq!(h.finalize_reset(), sha1(b"hello world"));
    }

    #[test]
    fn hardware_and_scalar_compress_agree() {
        // `compress_many` dispatches to SHA-NI when present; the scalar
        // rounds are the reference. On hosts without the extension this
        // degenerates to scalar-vs-scalar, which is fine — the vector tests
        // above still pin absolute correctness.
        let data: Vec<u8> = (0..64 * 7).map(|i| (i * 31 + 7) as u8).collect();
        let mut dispatched = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
        let mut scalar = dispatched;
        Sha1::compress_many(&mut dispatched, &data);
        for chunk in data.chunks_exact(64) {
            Sha1::compress(&mut scalar, chunk.try_into().unwrap());
        }
        assert_eq!(dispatched, scalar);
    }

    #[test]
    fn urn_format() {
        let urn = sha1(b"hello world").to_urn();
        assert!(urn.starts_with("urn:sha1:"));
        assert_eq!(urn.len(), "urn:sha1:".len() + 32);
    }
}
