//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! Used for Gnutella HUGE `urn:sha1` content addressing. SHA-1 is
//! cryptographically broken for collision resistance but remains the
//! identifier format the Gnutella network defined in 2002; we implement it
//! for wire compatibility, not for security.

use crate::base32::base32_encode;

/// A finished 20-byte SHA-1 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sha1Digest(pub [u8; 20]);

impl Sha1Digest {
    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        crate::to_hex(&self.0)
    }

    /// Base32 rendering as used inside `urn:sha1:` URNs (RFC 4648 alphabet,
    /// uppercase, no padding — 20 bytes encode to exactly 32 characters).
    pub fn to_base32(&self) -> String {
        base32_encode(&self.0)
    }

    /// Full URN form, e.g. `urn:sha1:PLSTHIPQGSSZTS5FJUPAKUZWUGYQYPFB`.
    pub fn to_urn(&self) -> String {
        format!("urn:sha1:{}", self.to_base32())
    }
}

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    pub fn finalize(mut self) -> Sha1Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80 then zero pad to 56 mod 64, then 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual final block write: `update` would re-count the length bytes,
        // but length was captured before padding so appending via update is
        // fine as long as we do not read `self.len` again.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block.clone());
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Sha1Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Sha1Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn vector_empty() {
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn vector_abc() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn vector_448_bits() {
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1(&data).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn vector_exact_block() {
        // 64-byte input exercises the no-buffer fast path plus padding block.
        let data = [0x61u8; 64];
        assert_eq!(
            sha1(&data).to_hex(),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for chunk in [1usize, 3, 7, 63, 64, 65, 100] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha1(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn urn_format() {
        let urn = sha1(b"hello world").to_urn();
        assert!(urn.starts_with("urn:sha1:"));
        assert_eq!(urn.len(), "urn:sha1:".len() + 32);
    }
}
