//! MD5 (RFC 1321), implemented from scratch.
//!
//! OpenFT identifies shared files by their MD5 digest; as with SHA-1 this is
//! a wire-compatibility feature, not a security claim.

/// A finished 16-byte MD5 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Md5Digest(pub [u8; 16]);

impl Md5Digest {
    pub fn to_hex(&self) -> String {
        crate::to_hex(&self.0)
    }
}

/// Per-round shift amounts, RFC 1321 section 3.4.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `floor(abs(sin(i+1)) * 2^32)`, RFC 1321.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 hasher.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    pub fn finalize(mut self) -> Md5Digest {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        let mut block = self.buf;
        // MD5 appends the length little-endian, unlike SHA-1.
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.compress(&block);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Md5Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for i in 0..16 {
            m[i] = u32::from_le_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | ((!b) & d), i),
                16..=31 => ((d & b) | ((!d) & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5 of `data`.
pub fn md5(data: &[u8]) -> Md5Digest {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn vector_empty() {
        assert_eq!(md5(b"").to_hex(), "d41d8cd98f00b204e9800998ecf8427e");
    }

    #[test]
    fn vector_a() {
        assert_eq!(md5(b"a").to_hex(), "0cc175b9c0f1b6a831c399e269772661");
    }

    #[test]
    fn vector_abc() {
        assert_eq!(md5(b"abc").to_hex(), "900150983cd24fb0d6963f7d28e17f72");
    }

    #[test]
    fn vector_message_digest() {
        assert_eq!(
            md5(b"message digest").to_hex(),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
    }

    #[test]
    fn vector_alphabet() {
        assert_eq!(
            md5(b"abcdefghijklmnopqrstuvwxyz").to_hex(),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
    }

    #[test]
    fn vector_alnum() {
        assert_eq!(
            md5(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789").to_hex(),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
    }

    #[test]
    fn vector_numbers() {
        assert_eq!(
            md5(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            )
            .to_hex(),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 % 251) as u8).collect();
        for chunk in [1usize, 5, 13, 63, 64, 65, 128] {
            let mut h = Md5::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), md5(&data), "chunk size {chunk}");
        }
    }
}
