//! Base32 (RFC 4648 alphabet, unpadded) as used by Gnutella `urn:sha1` URNs.
//!
//! Gnutella's HUGE specification encodes the 20-byte SHA-1 digest as 32
//! Base32 characters without padding; decoding is case-insensitive, matching
//! deployed servent behaviour.

const ALPHABET: &[u8; 32] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";

/// Errors from [`base32_decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base32Error {
    /// A character outside the RFC 4648 alphabet.
    InvalidCharacter(char),
    /// The input length leaves trailing bits that cannot round-trip
    /// (lengths ≡ 1, 3 or 6 mod 8 are never produced by an encoder).
    InvalidLength(usize),
    /// Unused trailing bits were non-zero, so the input is not canonical.
    NonZeroPadding,
}

impl std::fmt::Display for Base32Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base32Error::InvalidCharacter(c) => write!(f, "invalid base32 character {c:?}"),
            Base32Error::InvalidLength(n) => write!(f, "invalid base32 length {n}"),
            Base32Error::NonZeroPadding => write!(f, "non-zero base32 padding bits"),
        }
    }
}

impl std::error::Error for Base32Error {}

/// Encodes `data` as unpadded Base32.
pub fn base32_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    let mut acc: u64 = 0;
    let mut bits = 0u32;
    for &b in data {
        acc = (acc << 8) | b as u64;
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(ALPHABET[((acc >> bits) & 0x1f) as usize] as char);
        }
    }
    if bits > 0 {
        out.push(ALPHABET[((acc << (5 - bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decodes unpadded Base32 (case-insensitive).
pub fn base32_decode(s: &str) -> Result<Vec<u8>, Base32Error> {
    match s.len() % 8 {
        1 | 3 | 6 => return Err(Base32Error::InvalidLength(s.len())),
        _ => {}
    }
    let mut out = Vec::with_capacity(s.len() * 5 / 8);
    let mut acc: u64 = 0;
    let mut bits = 0u32;
    for c in s.chars() {
        let v = match c.to_ascii_uppercase() {
            c @ 'A'..='Z' => c as u64 - 'A' as u64,
            c @ '2'..='7' => c as u64 - '2' as u64 + 26,
            _ => return Err(Base32Error::InvalidCharacter(c)),
        };
        acc = (acc << 5) | v;
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push(((acc >> bits) & 0xff) as u8);
        }
    }
    if bits > 0 && (acc & ((1 << bits) - 1)) != 0 {
        return Err(Base32Error::NonZeroPadding);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // RFC 4648 section 10 vectors, padding stripped.
    #[test]
    fn rfc4648_vectors() {
        let cases: [(&[u8], &str); 6] = [
            (b"f", "MY"),
            (b"fo", "MZXQ"),
            (b"foo", "MZXW6"),
            (b"foob", "MZXW6YQ"),
            (b"fooba", "MZXW6YTB"),
            (b"foobar", "MZXW6YTBOI"),
        ];
        for (raw, enc) in cases {
            assert_eq!(base32_encode(raw), enc);
            assert_eq!(base32_decode(enc).unwrap(), raw);
        }
    }

    #[test]
    fn empty() {
        assert_eq!(base32_encode(b""), "");
        assert_eq!(base32_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn decode_is_case_insensitive() {
        assert_eq!(base32_decode("mzxw6ytboi").unwrap(), b"foobar");
    }

    #[test]
    fn rejects_bad_character() {
        assert_eq!(
            base32_decode("MZ1W6YTB"),
            Err(Base32Error::InvalidCharacter('1'))
        );
    }

    #[test]
    fn rejects_impossible_length() {
        assert_eq!(base32_decode("A"), Err(Base32Error::InvalidLength(1)));
        assert_eq!(base32_decode("ABC"), Err(Base32Error::InvalidLength(3)));
    }

    #[test]
    fn rejects_noncanonical_padding() {
        // "MZ" decodes to one byte with 2 trailing bits; force them non-zero.
        assert_eq!(base32_decode("MB"), Err(Base32Error::NonZeroPadding));
    }

    #[test]
    fn sha1_digest_is_32_chars() {
        assert_eq!(base32_encode(&[0u8; 20]).len(), 32);
    }

    proptest! {
        #[test]
        fn roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let enc = base32_encode(&data);
            prop_assert_eq!(base32_decode(&enc).unwrap(), data);
        }

        #[test]
        fn decode_never_panics(s in "[ -~]{0,64}") {
            let _ = base32_decode(&s);
        }
    }
}
