//! Message digests and text codecs used by the P2P protocols in this
//! workspace.
//!
//! Gnutella's HUGE extension identifies files by `urn:sha1:<Base32(SHA-1)>`
//! and OpenFT addresses shared files by their MD5 digest, so both algorithms
//! are implemented here from scratch (no external crypto crates are available
//! in this environment, and the digests are used for content addressing, not
//! for security).
//!
//! Both digests expose the usual incremental API:
//!
//! ```
//! use p2pmal_hashes::Sha1;
//! let mut h = Sha1::new();
//! h.update(b"abc");
//! assert_eq!(h.finalize().to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
//! ```

mod base32;
mod md5;
mod sha1;

pub use base32::{base32_decode, base32_encode, Base32Error};
pub use md5::{md5, Md5, Md5Digest};
pub use sha1::{sha1, sha1_many, Sha1, Sha1Digest};

/// Renders `bytes` as lowercase hexadecimal.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Parses lowercase or uppercase hexadecimal into bytes.
///
/// Returns `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u32> = s.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
    Some(
        digits
            .chunks(2)
            .map(|p| ((p[0] << 4) | p[1]) as u8)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = [0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn hex_rejects_odd_length() {
        assert!(from_hex("abc").is_none());
    }

    #[test]
    fn hex_rejects_non_hex() {
        assert!(from_hex("zz").is_none());
    }

    #[test]
    fn hex_empty() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
