//! Paper-vs-measured comparison records, the backbone of EXPERIMENTS.md.
//!
//! The reproduction's contract is *shape*, not absolute numbers (the paper
//! measured the live 2006 networks; we measure a calibrated synthetic
//! ecosystem). Each [`Expectation`] states the abstract's quantitative
//! claim, the tolerance band within which we call the shape reproduced, and
//! the measured value.

use crate::table::Table;
use p2pmal_json::Value;

/// One paper-vs-measured check.
#[derive(Debug, Clone)]
pub struct Expectation {
    /// Experiment id (e.g. "T1-limewire").
    pub id: String,
    /// What is being measured, human readable.
    pub metric: String,
    /// The paper's value (percent or ratio).
    pub paper: f64,
    /// Acceptable absolute deviation.
    pub tolerance: f64,
    /// What we measured.
    pub measured: f64,
}

impl Expectation {
    pub fn new(id: &str, metric: &str, paper: f64, tolerance: f64, measured: f64) -> Self {
        Expectation {
            id: id.to_string(),
            metric: metric.to_string(),
            paper,
            tolerance,
            measured,
        }
    }

    /// Did the measured value land inside the band?
    pub fn holds(&self) -> bool {
        (self.measured - self.paper).abs() <= self.tolerance
    }
}

/// A set of expectations with rendering helpers.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    pub expectations: Vec<Expectation>,
}

impl Comparison {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, e: Expectation) -> &mut Self {
        self.expectations.push(e);
        self
    }

    /// All expectations inside their bands?
    pub fn all_hold(&self) -> bool {
        self.expectations.iter().all(|e| e.holds())
    }

    /// The failing subset.
    pub fn failures(&self) -> Vec<&Expectation> {
        self.expectations.iter().filter(|e| !e.holds()).collect()
    }

    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Paper vs measured",
            &["id", "metric", "paper", "measured", "band", "holds"],
        );
        for e in &self.expectations {
            t.row(vec![
                e.id.clone(),
                e.metric.clone(),
                format!("{:.1}", e.paper),
                format!("{:.1}", e.measured),
                format!("±{:.1}", e.tolerance),
                if e.holds() { "yes".into() } else { "NO".into() },
            ]);
        }
        t
    }

    /// Machine-readable form for EXPERIMENTS.md tooling.
    pub fn to_json(&self) -> String {
        let expectations = self
            .expectations
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("id".into(), e.id.as_str().into()),
                    ("metric".into(), e.metric.as_str().into()),
                    ("paper".into(), e.paper.into()),
                    ("tolerance".into(), e.tolerance.into()),
                    ("measured".into(), e.measured.into()),
                    ("holds".into(), e.holds().into()),
                ])
            })
            .collect();
        Value::Obj(vec![("expectations".into(), Value::Arr(expectations))]).to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_respects_band() {
        assert!(Expectation::new("x", "m", 68.0, 8.0, 63.5).holds());
        assert!(!Expectation::new("x", "m", 68.0, 2.0, 63.5).holds());
        assert!(Expectation::new("x", "m", 68.0, 0.0, 68.0).holds());
    }

    #[test]
    fn comparison_reports_failures() {
        let mut c = Comparison::new();
        c.push(Expectation::new("a", "m1", 99.0, 1.5, 99.4));
        c.push(Expectation::new("b", "m2", 28.0, 10.0, 55.0));
        assert!(!c.all_hold());
        assert_eq!(c.failures().len(), 1);
        assert_eq!(c.failures()[0].id, "b");
        let md = c.to_table().to_markdown();
        assert!(md.contains("NO"));
        assert!(md.contains("yes"));
    }

    #[test]
    fn json_is_parseable() {
        let mut c = Comparison::new();
        c.push(Expectation::new("a", "m", 3.0, 2.0, 2.5));
        let parsed = p2pmal_json::parse(&c.to_json()).unwrap();
        assert_eq!(parsed["expectations"][0]["id"], "a");
        assert_eq!(parsed["expectations"][0]["holds"].as_bool(), Some(true));
    }
}
