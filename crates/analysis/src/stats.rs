//! Small statistics helpers: top-k tallies, CDFs, histograms.

use std::collections::HashMap;
use std::hash::Hash;

/// Counts occurrences and returns `(item, count)` sorted by descending
/// count (ties broken by the item's order for determinism).
pub fn tally<T: Eq + Hash + Ord + Clone>(items: impl IntoIterator<Item = T>) -> Vec<(T, u64)> {
    let mut counts: HashMap<T, u64> = HashMap::new();
    for it in items {
        *counts.entry(it).or_insert(0) += 1;
    }
    let mut v: Vec<(T, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// A ranked share table: count, percent of total, cumulative percent.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedShare<T> {
    pub rank: usize,
    pub item: T,
    pub count: u64,
    pub pct: f64,
    pub cumulative_pct: f64,
}

/// Converts a tally into ranked shares of its own total.
pub fn ranked_shares<T>(tally: Vec<(T, u64)>) -> Vec<RankedShare<T>> {
    let total: u64 = tally.iter().map(|(_, c)| c).sum();
    let mut cum = 0u64;
    tally
        .into_iter()
        .enumerate()
        .map(|(i, (item, count))| {
            cum += count;
            RankedShare {
                rank: i + 1,
                item,
                count,
                pct: pct(count, total),
                cumulative_pct: pct(cum, total),
            }
        })
        .collect()
}

/// Percentage helper that tolerates a zero denominator.
pub fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// An empirical CDF over `u64` samples: returns `(value, fraction <= value)`
/// at each distinct value.
pub fn ecdf(mut samples: Vec<u64>) -> Vec<(u64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort_unstable();
    let n = samples.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < samples.len() {
        let v = samples[i];
        let mut j = i;
        while j < samples.len() && samples[j] == v {
            j += 1;
        }
        out.push((v, j as f64 / n));
        i = j;
    }
    out
}

/// Renders one histogram-summary line (`label: n=.. min=.. p50=.. p90=..
/// p99=.. max=..`) from pre-extracted percentiles, so callers holding a
/// telemetry [`HistSummary`]-shaped record can report it without this
/// crate depending on the telemetry layer.
pub fn hist_summary_line(
    label: &str,
    count: u64,
    min: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
) -> String {
    format!("{label}: n={count} min={min} p50={p50} p90={p90} p99={p99} max={max}")
}

/// Fixed-bin histogram over `u64` samples in `[lo, hi)`; the last bin
/// absorbs overflow.
pub fn histogram(samples: &[u64], lo: u64, hi: u64, bins: usize) -> Vec<u64> {
    assert!(bins > 0 && hi > lo);
    let width = ((hi - lo) as f64 / bins as f64).max(1.0);
    let mut out = vec![0u64; bins];
    for &s in samples {
        let idx = if s < lo {
            0
        } else {
            (((s - lo) as f64 / width) as usize).min(bins - 1)
        };
        out[idx] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_sorts_by_count_then_item() {
        let t = tally(vec!["b", "a", "b", "c", "b", "a"]);
        assert_eq!(t, vec![("b", 3), ("a", 2), ("c", 1)]);
        // Tie: alphabetical.
        let t = tally(vec!["y", "x"]);
        assert_eq!(t, vec![("x", 1), ("y", 1)]);
    }

    #[test]
    fn ranked_shares_accumulate_to_100() {
        let shares = ranked_shares(vec![("a", 60u64), ("b", 30), ("c", 10)]);
        assert_eq!(shares[0].pct, 60.0);
        assert_eq!(shares[1].cumulative_pct, 90.0);
        assert_eq!(shares[2].cumulative_pct, 100.0);
        assert_eq!(shares[2].rank, 3);
    }

    #[test]
    fn pct_handles_zero_total() {
        assert_eq!(pct(5, 0), 0.0);
        assert_eq!(pct(1, 4), 25.0);
    }

    #[test]
    fn ecdf_reaches_one() {
        let cdf = ecdf(vec![5, 1, 5, 9]);
        assert_eq!(cdf, vec![(1, 0.25), (5, 0.75), (9, 1.0)]);
        assert!(ecdf(vec![]).is_empty());
    }

    #[test]
    fn hist_summary_line_is_stable() {
        assert_eq!(
            hist_summary_line("latency_us", 4, 1, 2, 3, 3, 9),
            "latency_us: n=4 min=1 p50=2 p90=3 p99=3 max=9"
        );
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let h = histogram(&[0, 5, 10, 15, 99, 1000], 0, 100, 10);
        assert_eq!(h.iter().sum::<u64>(), 6);
        assert_eq!(h[0], 2); // 0, 5
        assert_eq!(h[1], 2); // 10, 15
        assert_eq!(h[9], 2); // 99 and the 1000 overflow
    }
}
