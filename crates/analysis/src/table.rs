//! Plain-text table rendering for experiment output (markdown and CSV).

/// A simple rectangular table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// Renders CSV (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["name", "note"]);
        t.row(vec!["plain".into(), "a,b".into()]);
        t.row(vec!["q\"q".into(), "ok".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(1234), "1,234");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_pct(12.345), "12.3%");
    }
}
