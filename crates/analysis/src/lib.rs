//! The statistics pipeline turning crawl logs into the paper's tables and
//! figures.
//!
//! * [`stats`] — tallies, ranked shares, ECDFs, histograms;
//! * [`report`] — one function per reconstructed table/figure (T1 summary,
//!   T2/T3 top malware, T4 sources, T5 host concentration, F1 daily
//!   series, F2 size census, F4 echo amplification);
//! * [`table`] — markdown/CSV rendering;
//! * [`compare`] — paper-vs-measured expectation records for
//!   EXPERIMENTS.md.

pub mod compare;
pub mod report;
pub mod stats;
pub mod table;

pub use compare::{Comparison, Expectation};
pub use report::{
    daily_fraction, daily_table, echo_amplification, host_concentration, host_table, size_census,
    size_table, source_breakdown, source_table, summarize, summary_table, top_malware,
    top_malware_table, EchoAmplification, HostShare, SizeCensus, SourceBreakdown, Summary,
};
pub use stats::{ecdf, hist_summary_line, histogram, pct, ranked_shares, tally, RankedShare};
pub use table::{fmt_count, fmt_pct, Table};
