//! The study's analyses: each function maps resolved response logs to one
//! of the reconstructed tables/figures (see DESIGN.md §4 for the index).

use crate::stats::{ecdf, pct, ranked_shares, tally, RankedShare};
use crate::table::{fmt_count, fmt_pct, Table};
use p2pmal_crawler::log::{CrawlLog, HostKey, ResolvedResponse};
use p2pmal_netsim::{ip_class, IpClass};
use std::collections::{BTreeMap, HashMap, HashSet};

/// T1 — data-collection summary for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub network: String,
    pub queries: u64,
    pub responses: u64,
    /// Extension-classified archive/executable responses.
    pub downloadable: u64,
    /// Downloadable responses whose content got a scan verdict.
    pub scanned: u64,
    /// Scanned responses carrying malware.
    pub malicious: u64,
    /// The headline number: malicious / scanned downloadable responses.
    pub malicious_pct: f64,
    pub distinct_hosts: u64,
    pub distinct_malware: u64,
}

/// Computes the T1 summary.
pub fn summarize(network: &str, log: &CrawlLog, resolved: &[ResolvedResponse]) -> Summary {
    let downloadable: Vec<&ResolvedResponse> =
        resolved.iter().filter(|r| r.record.downloadable).collect();
    let scanned = downloadable.iter().filter(|r| r.scanned).count() as u64;
    let malicious = downloadable.iter().filter(|r| r.malware.is_some()).count() as u64;
    let hosts: HashSet<&HostKey> = resolved.iter().map(|r| &r.record.host).collect();
    let malware: HashSet<&str> = resolved
        .iter()
        .filter_map(|r| r.malware.as_deref())
        .collect();
    Summary {
        network: network.to_string(),
        queries: log.queries_issued,
        responses: resolved.len() as u64,
        downloadable: downloadable.len() as u64,
        scanned,
        malicious,
        malicious_pct: pct(malicious, scanned),
        distinct_hosts: hosts.len() as u64,
        distinct_malware: malware.len() as u64,
    }
}

/// Renders one or more summaries as the T1 table.
pub fn summary_table(summaries: &[Summary]) -> Table {
    let mut t = Table::new(
        "T1 — Data collection summary",
        &[
            "network",
            "queries",
            "responses",
            "downloadable (exe/zip)",
            "scanned",
            "malicious",
            "% malicious",
            "distinct hosts",
            "distinct malware",
        ],
    );
    for s in summaries {
        t.row(vec![
            s.network.clone(),
            fmt_count(s.queries),
            fmt_count(s.responses),
            fmt_count(s.downloadable),
            fmt_count(s.scanned),
            fmt_count(s.malicious),
            fmt_pct(s.malicious_pct),
            fmt_count(s.distinct_hosts),
            fmt_count(s.distinct_malware),
        ]);
    }
    t
}

/// T2/T3 — malware prevalence ranking: share of malicious responses per
/// distinct malware.
pub fn top_malware(resolved: &[ResolvedResponse]) -> Vec<RankedShare<String>> {
    ranked_shares(tally(resolved.iter().filter_map(|r| r.malware.clone())))
}

/// Renders a top-malware ranking.
pub fn top_malware_table(title: &str, shares: &[RankedShare<String>], top: usize) -> Table {
    let mut t = Table::new(
        title,
        &[
            "rank",
            "malware",
            "malicious responses",
            "% of malicious",
            "cumulative %",
        ],
    );
    for s in shares.iter().take(top) {
        t.row(vec![
            s.rank.to_string(),
            s.item.clone(),
            fmt_count(s.count),
            fmt_pct(s.pct),
            fmt_pct(s.cumulative_pct),
        ]);
    }
    t
}

/// T4 — sources of malicious responses by advertised address class.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceBreakdown {
    pub rows: Vec<(IpClass, u64)>,
    pub total: u64,
    pub private_pct: f64,
}

pub fn source_breakdown(resolved: &[ResolvedResponse]) -> SourceBreakdown {
    let malicious: Vec<&ResolvedResponse> =
        resolved.iter().filter(|r| r.malware.is_some()).collect();
    let total = malicious.len() as u64;
    let mut counts: BTreeMap<&'static str, (IpClass, u64)> = BTreeMap::new();
    for r in &malicious {
        let class = ip_class(r.record.source_ip);
        counts.entry(class.label()).or_insert((class, 0)).1 += 1;
    }
    let mut rows: Vec<(IpClass, u64)> = counts.into_values().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    let private: u64 = rows
        .iter()
        .filter(|(c, _)| *c != IpClass::Public)
        .map(|(_, n)| n)
        .sum();
    SourceBreakdown {
        rows,
        total,
        private_pct: pct(private, total),
    }
}

pub fn source_table(network: &str, b: &SourceBreakdown) -> Table {
    let mut t = Table::new(
        &format!("T4 — Sources of malicious responses ({network})"),
        &["address class", "malicious responses", "% of malicious"],
    );
    for (class, n) in &b.rows {
        t.row(vec![
            class.label().to_string(),
            fmt_count(*n),
            fmt_pct(pct(*n, b.total)),
        ]);
    }
    t.row(vec![
        "all private ranges".into(),
        String::new(),
        fmt_pct(b.private_pct),
    ]);
    t
}

/// T5 — host concentration: which hosts serve the malicious responses.
#[derive(Debug, Clone)]
pub struct HostShare {
    pub rank: usize,
    pub host: String,
    pub responses: u64,
    pub pct_of_malicious: f64,
    pub families: Vec<String>,
}

pub fn host_concentration(resolved: &[ResolvedResponse]) -> Vec<HostShare> {
    let malicious: Vec<&ResolvedResponse> =
        resolved.iter().filter(|r| r.malware.is_some()).collect();
    let total = malicious.len() as u64;
    let shares = ranked_shares(tally(malicious.iter().map(|r| r.record.host.clone())));
    let mut families_by_host: HashMap<HostKey, HashSet<String>> = HashMap::new();
    for r in &malicious {
        families_by_host
            .entry(r.record.host.clone())
            .or_default()
            .insert(r.malware.clone().expect("filtered"));
    }
    let _ = total;
    shares
        .into_iter()
        .map(|s| {
            let mut families: Vec<String> = families_by_host
                .get(&s.item)
                .map(|f| f.iter().cloned().collect())
                .unwrap_or_default();
            families.sort();
            HostShare {
                rank: s.rank,
                host: match &s.item {
                    HostKey::Guid(g) => format!("guid:{}", p2pmal_hashes::to_hex(&g[..4])),
                    HostKey::Addr(ip, port) => format!("{ip}:{port}"),
                },
                responses: s.count,
                pct_of_malicious: s.pct,
                families,
            }
        })
        .collect()
}

pub fn host_table(network: &str, hosts: &[HostShare], top: usize) -> Table {
    let mut t = Table::new(
        &format!("T5 — Host concentration of malicious responses ({network})"),
        &[
            "rank",
            "host",
            "malicious responses",
            "% of malicious",
            "families",
        ],
    );
    for h in hosts.iter().take(top) {
        t.row(vec![
            h.rank.to_string(),
            h.host.clone(),
            fmt_count(h.responses),
            fmt_pct(h.pct_of_malicious),
            h.families.join(" "),
        ]);
    }
    t
}

/// F1 — daily time series of the malicious fraction among downloadable
/// responses. Returns `(day, downloadable, malicious, fraction)` rows.
pub fn daily_fraction(resolved: &[ResolvedResponse]) -> Vec<(u64, u64, u64, f64)> {
    let mut per_day: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for r in resolved {
        if !r.record.downloadable || !r.scanned {
            continue;
        }
        let e = per_day.entry(r.record.day).or_insert((0, 0));
        e.0 += 1;
        if r.malware.is_some() {
            e.1 += 1;
        }
    }
    per_day
        .into_iter()
        .map(|(day, (d, m))| (day, d, m, if d == 0 { 0.0 } else { m as f64 / d as f64 }))
        .collect()
}

pub fn daily_table(network: &str, rows: &[(u64, u64, u64, f64)]) -> Table {
    let mut t = Table::new(
        &format!("F1 — Daily malicious fraction ({network})"),
        &["day", "scanned downloadable", "malicious", "fraction"],
    );
    for (day, d, m, f) in rows {
        t.row(vec![
            day.to_string(),
            fmt_count(*d),
            fmt_count(*m),
            format!("{f:.3}"),
        ]);
    }
    t
}

/// F2 — size diversity: distinct advertised sizes per malware family vs per
/// benign (clean) filename stem.
#[derive(Debug, Clone)]
pub struct SizeCensus {
    /// Per malware family: sorted distinct sizes.
    pub malware_sizes: BTreeMap<String, Vec<u64>>,
    /// Distinct-size-count samples for clean downloadable names.
    pub benign_distinct_counts: Vec<u64>,
    /// ECDF over distinct-size counts for malware families.
    pub malware_cdf: Vec<(u64, f64)>,
}

pub fn size_census(resolved: &[ResolvedResponse]) -> SizeCensus {
    let mut malware: BTreeMap<String, HashSet<u64>> = BTreeMap::new();
    let mut benign: HashMap<String, HashSet<u64>> = HashMap::new();
    for r in resolved {
        if !r.record.downloadable {
            continue;
        }
        match &r.malware {
            Some(fam) => {
                malware
                    .entry(fam.clone())
                    .or_default()
                    .insert(r.record.size);
            }
            None if r.scanned => {
                benign
                    .entry(r.record.filename.to_ascii_lowercase())
                    .or_default()
                    .insert(r.record.size);
            }
            None => {}
        }
    }
    let malware_sizes: BTreeMap<String, Vec<u64>> = malware
        .iter()
        .map(|(k, v)| {
            let mut sizes: Vec<u64> = v.iter().copied().collect();
            sizes.sort_unstable();
            (k.clone(), sizes)
        })
        .collect();
    let malware_counts: Vec<u64> = malware.values().map(|v| v.len() as u64).collect();
    SizeCensus {
        malware_sizes,
        benign_distinct_counts: benign.values().map(|v| v.len() as u64).collect(),
        malware_cdf: ecdf(malware_counts),
    }
}

pub fn size_table(network: &str, census: &SizeCensus) -> Table {
    let mut t = Table::new(
        &format!("F2 — Characteristic sizes per malware ({network})"),
        &["malware", "distinct sizes seen", "sizes (bytes)"],
    );
    for (fam, sizes) in &census.malware_sizes {
        t.row(vec![
            fam.clone(),
            sizes.len().to_string(),
            sizes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    t
}

/// F4 — query-echo amplification: per-host responses per distinct query
/// answered, split malicious vs clean hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct EchoAmplification {
    /// Mean queries answered per malicious host.
    pub malicious_host_queries: f64,
    /// Mean queries answered per clean host.
    pub clean_host_queries: f64,
    pub malicious_hosts: u64,
    pub clean_hosts: u64,
}

pub fn echo_amplification(resolved: &[ResolvedResponse]) -> EchoAmplification {
    // query coverage per host
    let mut queries: HashMap<&HostKey, HashSet<&str>> = HashMap::new();
    let mut dirty: HashSet<&HostKey> = HashSet::new();
    for r in resolved {
        queries
            .entry(&r.record.host)
            .or_default()
            .insert(r.record.query.as_str());
        if r.malware.is_some() {
            dirty.insert(&r.record.host);
        }
    }
    let (mut mq, mut mh, mut cq, mut ch) = (0u64, 0u64, 0u64, 0u64);
    for (host, qs) in &queries {
        if dirty.contains(host) {
            mq += qs.len() as u64;
            mh += 1;
        } else {
            cq += qs.len() as u64;
            ch += 1;
        }
    }
    EchoAmplification {
        malicious_host_queries: if mh == 0 { 0.0 } else { mq as f64 / mh as f64 },
        clean_host_queries: if ch == 0 { 0.0 } else { cq as f64 / ch as f64 },
        malicious_hosts: mh,
        clean_hosts: ch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmal_crawler::log::ResponseRecord;
    use p2pmal_netsim::SimTime;
    use std::net::Ipv4Addr;

    #[allow(clippy::too_many_arguments)]
    fn resp(
        day: u64,
        query: &str,
        name: &str,
        size: u64,
        ip: [u8; 4],
        host: u8,
        malware: Option<&str>,
        scanned: bool,
    ) -> ResolvedResponse {
        ResolvedResponse {
            record: ResponseRecord {
                at: SimTime::from_days(day),
                day,
                query: query.into(),
                filename: name.into(),
                size,
                source_ip: Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]),
                source_port: 6346,
                needs_push: false,
                host: HostKey::Guid([host; 16]),
                downloadable: p2pmal_crawler::is_downloadable_name(name),
            },
            malware: malware.map(|s| s.to_string()),
            scanned,
            sha1: scanned.then(|| p2pmal_hashes::sha1(name.as_bytes())),
        }
    }

    fn sample() -> Vec<ResolvedResponse> {
        vec![
            resp(0, "a", "w1.exe", 100, [10, 0, 0, 1], 1, Some("W32.A"), true),
            resp(0, "b", "w2.exe", 100, [10, 0, 0, 1], 1, Some("W32.A"), true),
            resp(0, "a", "w3.exe", 200, [8, 8, 8, 8], 2, Some("W32.B"), true),
            resp(1, "c", "tool.exe", 300, [9, 9, 9, 9], 3, None, true),
            resp(1, "c", "song.mp3", 400, [9, 9, 9, 9], 3, None, false),
            resp(1, "d", "dead.exe", 500, [7, 7, 7, 7], 4, None, false),
        ]
    }

    #[test]
    fn summary_counts() {
        let resolved = sample();
        let mut log = CrawlLog::new();
        log.queries_issued = 4;
        let s = summarize("LimeWire", &log, &resolved);
        assert_eq!(s.responses, 6);
        assert_eq!(s.downloadable, 5, "mp3 excluded");
        assert_eq!(s.scanned, 4, "dead.exe never scanned");
        assert_eq!(s.malicious, 3);
        assert!((s.malicious_pct - 75.0).abs() < 1e-9);
        assert_eq!(s.distinct_hosts, 4);
        assert_eq!(s.distinct_malware, 2);
    }

    #[test]
    fn top_malware_ranking() {
        let shares = top_malware(&sample());
        assert_eq!(shares[0].item, "W32.A");
        assert_eq!(shares[0].count, 2);
        assert!((shares[0].pct - 66.666).abs() < 0.01);
        assert!((shares[1].cumulative_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn source_breakdown_private_share() {
        let b = source_breakdown(&sample());
        assert_eq!(b.total, 3);
        // Two of three malicious responses advertise 10/8.
        assert!((b.private_pct - 66.666).abs() < 0.01);
        assert_eq!(b.rows[0].0, IpClass::Private10);
    }

    #[test]
    fn host_concentration_ranks_hosts() {
        let hosts = host_concentration(&sample());
        assert_eq!(hosts[0].responses, 2);
        assert!((hosts[0].pct_of_malicious - 66.666).abs() < 0.01);
        assert_eq!(hosts[0].families, vec!["W32.A".to_string()]);
    }

    #[test]
    fn daily_fraction_buckets() {
        let rows = daily_fraction(&sample());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0, 3, 3, 1.0));
        let (day, d, m, f) = rows[1];
        assert_eq!((day, d, m), (1, 1, 0));
        assert_eq!(f, 0.0);
    }

    #[test]
    fn size_census_separates_malware_and_benign() {
        let c = size_census(&sample());
        assert_eq!(c.malware_sizes["W32.A"], vec![100]);
        assert_eq!(c.malware_sizes["W32.B"], vec![200]);
        assert_eq!(c.benign_distinct_counts, vec![1]);
        assert_eq!(c.malware_cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn echo_amplification_splits_hosts() {
        let a = echo_amplification(&sample());
        assert_eq!(a.malicious_hosts, 2);
        assert_eq!(a.clean_hosts, 2);
        // Dirty: host 1 answered 2 distinct queries, host 2 answered 1.
        assert!((a.malicious_host_queries - 1.5).abs() < 1e-9);
        // Clean: hosts 3 and 4 each answered a single distinct query.
        assert!((a.clean_host_queries - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tables_render() {
        let resolved = sample();
        let log = CrawlLog::new();
        let s = summarize("X", &log, &resolved);
        assert!(summary_table(&[s]).to_markdown().contains("T1"));
        let tm = top_malware(&resolved);
        assert!(top_malware_table("T2", &tm, 10)
            .to_markdown()
            .contains("W32.A"));
        let sb = source_breakdown(&resolved);
        assert!(source_table("X", &sb).to_markdown().contains("10.0.0.0/8"));
        let hc = host_concentration(&resolved);
        assert!(host_table("X", &hc, 5).to_markdown().contains("guid:"));
        let dt = daily_table("X", &daily_fraction(&resolved));
        assert!(dt.to_markdown().contains("F1"));
        let st = size_table("X", &size_census(&resolved));
        assert!(st.to_markdown().contains("W32.B"));
    }
}
