//! Minimal JSON: a [`Value`] tree, a recursive-descent parser, and compact /
//! pretty writers.
//!
//! The workspace needs JSON in two places — the on-disk run-artifact cache in
//! `p2pmal-bench` and the machine-readable comparison dump in
//! `p2pmal-analysis` — and the build environment cannot fetch serde. Both
//! producers hand-build their trees, so a small explicit `Value` type is all
//! that is required. Object key order is preserved (insertion order), which
//! keeps serialized artifacts byte-stable across runs.
//!
//! Numbers are stored as `f64`. Every integer the workspace serializes
//! (event counts, byte sizes, microsecond timestamps) is far below 2^53, so
//! round-tripping is exact.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` on non-arrays and out-of-range indexes.
    pub fn at(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Indented multi-line serialization.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Panics on non-objects / missing keys, mirroring the ergonomics the
    /// tests want; use [`Value::get`] for fallible lookup.
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no key {key:?} in {self:?}"))
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.at(idx)
            .unwrap_or_else(|| panic!("no index {idx} in {self:?}"))
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u16> for Value {
    fn from(n: u16) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u8> for Value {
    fn from(n: u8) -> Self {
        Value::Num(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Arr(items)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => write_seq(
            items.iter().map(|v| (None, v)),
            indent,
            depth,
            out,
            ('[', ']'),
        ),
        Value::Obj(fields) => write_seq(
            fields.iter().map(|(k, v)| (Some(k.as_str()), v)),
            indent,
            depth,
            out,
            ('{', '}'),
        ),
    }
}

fn write_seq<'a, I>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    braces: (char, char),
) where
    I: ExactSizeIterator<Item = (Option<&'a str>, &'a Value)>,
{
    out.push(braces.0);
    let len = items.len();
    for (i, (key, v)) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        if let Some(k) = key {
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        write_value(v, indent, depth + 1, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        if len > 0 {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(braces.1);
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed, with the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub at: usize,
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.pos, what }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn keyword(&mut self, word: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad keyword"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our writers;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of unescaped bytes in one go.
                    // ASCII quote/backslash never appear inside a multi-byte
                    // UTF-8 sequence, so scanning bytewise is sound — and one
                    // validation per run (not per char) keeps parsing linear.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected :")?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = obj(vec![
            ("name", "setup.exe".into()),
            ("size", 58_368u64.into()),
            ("clean", false.into()),
            ("sha1", Value::Null),
            (
                "days",
                Value::Arr(vec![1u64.into(), 2u64.into(), 3u64.into()]),
            ),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let v = Value::Str(nasty.to_string());
        assert_eq!(parse(&v.to_string_compact()).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for n in [0.0, -1.0, 3_041_280_000_000.0, 0.5, 68.4, 1e-9] {
            let v = Value::Num(n);
            assert_eq!(parse(&v.to_string_compact()).unwrap().as_f64(), Some(n));
        }
    }

    #[test]
    fn index_and_eq_sugar() {
        let v = obj(vec![(
            "expectations",
            Value::Arr(vec![obj(vec![("id", "a".into())])]),
        )]);
        assert_eq!(v["expectations"][0]["id"], "a");
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_u64_guards() {
        assert_eq!(Value::Num(5.0).as_u64(), Some(5));
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
    }
}
