//! Shared harness for the experiment benches.
//!
//! Every table/figure of the paper has its own bench target (see
//! `crates/bench/benches/`); they all consume the same two measurement
//! runs (LimeWire, OpenFT). Paper-scale runs simulate 35 days, so the
//! harness caches each run's resolved log on disk under
//! `target/p2pmal-runs/` — the first experiment pays for the simulation,
//! the rest reload it in seconds. Delete the cache directory (or change
//! the seed) to re-measure.
//!
//! Scale control via environment:
//!
//! * `P2PMAL_QUICK=1` — run the minutes-scale `quick()` scenarios;
//! * `P2PMAL_SEED=<n>` — change the seed (default 2006);
//! * `P2PMAL_SEEDS=<a,b,c>` — multi-seed sweep: every seed's two-network
//!   study runs on its own thread (see [`run_seeds`]);
//! * `P2PMAL_DAYS=<n>` — override the collection length;
//! * `P2PMAL_TRACE=<level>` — leveled trace on stderr. Unset, empty, `0`,
//!   `off`, `false` and `no` disable it; `1` prints the per-day
//!   event/wall-time trace, including buffer-pool, queue-depth and
//!   scan-pipeline (cache hit/miss/eviction, bytes hashed) statistics;
//!   `2` additionally renders every telemetry event as it is recorded;
//! * `P2PMAL_JOURNAL=<path>` — write the structured sim-time event journal
//!   (one JSON object per line) to `<path>.limewire.jsonl` and
//!   `<path>.openft.jsonl`, creating parent directories as needed;
//! * `P2PMAL_JOURNAL_SAMPLE=<cat=N,...>` — journal only every Nth event of
//!   a category (`query`, `download`, `scan`, `fault`, `churn`); `cat=0`
//!   drops the category entirely;
//! * `P2PMAL_FAULTS=none|mild|harsh` — network fault profile: packet loss,
//!   spontaneous resets, latency spikes, corruption and host churn, with
//!   the retry policy calibrated for each profile (`none` is the default
//!   and is byte-identical to a fault-free simulator);
//! * `P2PMAL_RETRIES=<n>` — override the per-object retry budget of the
//!   selected fault profile (for retry-budget sweeps).

use p2pmal_core::{fault_profile, LimewireScenario, OpenFtScenario};
use p2pmal_crawler::{
    FailureBreakdown, HostKey, Network, ResolvedResponse, ResponseRecord, RetryPolicy, ScanStats,
};
use p2pmal_json::Value;
use p2pmal_netsim::FaultPlan;
use p2pmal_netsim::SimTime;
use p2pmal_netsim::{Counter, HistSummary};
use std::io::Write;
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// The cached form of one network run: everything the analyses consume.
pub struct RunArtifact {
    pub network: Network,
    pub seed: u64,
    pub days: u64,
    pub queries_issued: u64,
    pub downloads_attempted: u64,
    pub downloads_failed: u64,
    pub sim_events: u64,
    /// Scan-pipeline counters (bodies, cache hits, bytes hashed, ...).
    /// Defaults to zero when loading artifacts written before the counters
    /// existed.
    pub scan: ScanStats,
    /// Fault-injection and retry-pipeline counters. All-zero for the
    /// default `none` profile and for artifacts written before the fault
    /// layer existed.
    pub resilience: ResilienceStats,
    /// Deterministic telemetry roll-up: named counters and log2-histogram
    /// summaries keyed on sim time (identical for identical seeds).
    /// All-empty for artifacts written before the telemetry layer existed.
    pub telemetry: TelemetryStats,
    pub resolved: Vec<ResolvedResponse>,
}

/// Telemetry counters and histogram summaries carried by a
/// [`RunArtifact`]. Only sim-time-keyed values appear here — wall-clock
/// histograms are excluded so cached artifacts stay byte-stable.
#[derive(Debug, Default, Clone)]
pub struct TelemetryStats {
    /// `(label, value)` for every counter in the metrics registry.
    pub counters: Vec<(String, u64)>,
    /// `(label, summary)` for every sim-time histogram.
    pub hists: Vec<(String, HistSummary)>,
}

/// Fault/retry accounting carried by a [`RunArtifact`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ResilienceStats {
    pub retries_scheduled: u64,
    pub retry_successes: u64,
    pub push_fallbacks: u64,
    pub unscannable: u64,
    /// Failed download *attempts* by cause.
    pub failures: FailureBreakdown,
    pub faults_chunks_dropped: u64,
    pub faults_chunks_corrupted: u64,
    pub faults_resets: u64,
    pub faults_latency_spikes: u64,
    pub faults_churn_downs: u64,
    pub faults_churn_ups: u64,
}

/// Harness configuration from the environment.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    pub quick: bool,
    pub seed: u64,
    pub days: Option<u64>,
    /// `P2PMAL_SEEDS=a,b,c` — seeds for a multi-seed sweep. When set,
    /// `run_study` runs one full two-network study per seed, each on its
    /// own thread.
    pub seeds: Option<Vec<u64>>,
    /// `P2PMAL_FAULTS=none|mild|harsh` — fault profile name.
    pub faults: String,
    /// `P2PMAL_RETRIES=<n>` — retry-budget override on top of the profile.
    pub retries: Option<u8>,
}

impl BenchConfig {
    pub fn from_env() -> Self {
        let quick = std::env::var("P2PMAL_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        let seed = std::env::var("P2PMAL_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2006);
        let days = std::env::var("P2PMAL_DAYS")
            .ok()
            .and_then(|v| v.parse().ok());
        let seeds = std::env::var("P2PMAL_SEEDS").ok().map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<u64>>()
        });
        let faults = std::env::var("P2PMAL_FAULTS").unwrap_or_else(|_| "none".into());
        assert!(
            fault_profile(&faults).is_some(),
            "P2PMAL_FAULTS={faults:?} is not a known profile (none|mild|harsh)"
        );
        let retries = std::env::var("P2PMAL_RETRIES")
            .ok()
            .and_then(|v| v.parse().ok());
        BenchConfig {
            quick,
            seed,
            days,
            seeds: seeds.filter(|s| !s.is_empty()),
            faults,
            retries,
        }
    }

    /// The fault plan + retry policy this configuration selects.
    pub fn fault_plan(&self) -> (FaultPlan, RetryPolicy) {
        let (plan, mut retry) = fault_profile(&self.faults).expect("profile validated in from_env");
        if let Some(n) = self.retries {
            retry.max_retries = n;
        }
        (plan, retry)
    }

    /// This configuration re-keyed to another seed (for sweeps).
    pub fn with_seed(&self, seed: u64) -> Self {
        BenchConfig {
            seed,
            seeds: None,
            ..self.clone()
        }
    }

    fn tag(&self) -> String {
        let days = self
            .days
            .map(|d| d.to_string())
            .unwrap_or_else(|| "default".into());
        let mut tag = format!(
            "{}-{}-{}",
            if self.quick { "quick" } else { "paper" },
            self.seed,
            days
        );
        // Historical artifacts (pre-fault-layer) carry no suffix; only
        // non-default profiles extend the cache key.
        if self.faults != "none" {
            tag.push('-');
            tag.push_str(&self.faults);
        }
        if let Some(n) = self.retries {
            tag.push_str(&format!("-r{n}"));
        }
        tag
    }
}

fn cache_dir() -> PathBuf {
    // Anchor at the workspace target directory regardless of the CWD the
    // bench harness uses (benches run with CWD = crate dir).
    let mut p = match std::env::var("CARGO_TARGET_DIR") {
        Ok(t) => PathBuf::from(t),
        Err(_) => {
            let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.push("../../target");
            p
        }
    };
    p.push("p2pmal-runs");
    p
}

fn cache_path(network: &str, cfg: &BenchConfig) -> PathBuf {
    let mut p = cache_dir();
    p.push(format!("{network}-{}.json", cfg.tag()));
    p
}

fn load(path: &PathBuf) -> Option<RunArtifact> {
    let text = std::fs::read_to_string(path).ok()?;
    artifact_from_json(&p2pmal_json::parse(&text).ok()?)
}

fn store(path: &PathBuf, artifact: &RunArtifact) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(mut f) = std::fs::File::create(path) {
        let _ = f.write_all(artifact_to_json(artifact).to_string_compact().as_bytes());
    }
}

fn host_to_json(h: &HostKey) -> Value {
    match h {
        HostKey::Guid(guid) => {
            Value::Obj(vec![("guid".into(), p2pmal_hashes::to_hex(guid).into())])
        }
        HostKey::Addr(ip, port) => Value::Obj(vec![
            ("ip".into(), ip.to_string().into()),
            ("port".into(), (*port as u64).into()),
        ]),
    }
}

fn host_from_json(v: &Value) -> Option<HostKey> {
    if let Some(hex) = v.get("guid").and_then(Value::as_str) {
        let bytes = p2pmal_hashes::from_hex(hex)?;
        return Some(HostKey::Guid(bytes.try_into().ok()?));
    }
    let ip: Ipv4Addr = v.get("ip")?.as_str()?.parse().ok()?;
    let port = v.get("port")?.as_u64()? as u16;
    Some(HostKey::Addr(ip, port))
}

fn resolved_to_json(r: &ResolvedResponse) -> Value {
    let rec = &r.record;
    Value::Obj(vec![
        ("at".into(), rec.at.as_micros().into()),
        ("day".into(), rec.day.into()),
        ("query".into(), rec.query.as_str().into()),
        ("filename".into(), rec.filename.as_str().into()),
        ("size".into(), rec.size.into()),
        ("source_ip".into(), rec.source_ip.to_string().into()),
        ("source_port".into(), (rec.source_port as u64).into()),
        ("needs_push".into(), rec.needs_push.into()),
        ("host".into(), host_to_json(&rec.host)),
        ("downloadable".into(), rec.downloadable.into()),
        ("malware".into(), r.malware.as_deref().into()),
        ("scanned".into(), r.scanned.into()),
        ("sha1".into(), r.sha1.map(|d| d.to_hex()).into()),
    ])
}

fn resolved_from_json(v: &Value) -> Option<ResolvedResponse> {
    let record = ResponseRecord {
        at: SimTime::from_micros(v.get("at")?.as_u64()?),
        day: v.get("day")?.as_u64()?,
        query: v.get("query")?.as_str()?.to_string(),
        filename: v.get("filename")?.as_str()?.to_string(),
        size: v.get("size")?.as_u64()?,
        source_ip: v.get("source_ip")?.as_str()?.parse().ok()?,
        source_port: v.get("source_port")?.as_u64()? as u16,
        needs_push: v.get("needs_push")?.as_bool()?,
        host: host_from_json(v.get("host")?)?,
        downloadable: v.get("downloadable")?.as_bool()?,
    };
    let sha1 = match v.get("sha1")? {
        Value::Null => None,
        s => Some(p2pmal_hashes::Sha1Digest(
            p2pmal_hashes::from_hex(s.as_str()?)?.try_into().ok()?,
        )),
    };
    Some(ResolvedResponse {
        record,
        malware: v.get("malware")?.as_str().map(str::to_string),
        scanned: v.get("scanned")?.as_bool()?,
        sha1,
    })
}

fn scan_to_json(s: &ScanStats) -> Value {
    Value::Obj(vec![
        ("bodies".into(), s.bodies.into()),
        ("bytes_hashed".into(), s.bytes_hashed.into()),
        ("bodies_scanned".into(), s.bodies_scanned.into()),
        ("bytes_scanned".into(), s.bytes_scanned.into()),
        ("cache_hits".into(), s.cache_hits.into()),
        ("cache_misses".into(), s.cache_misses.into()),
        ("cache_evictions".into(), s.cache_evictions.into()),
        ("distinct_payloads".into(), s.distinct_payloads.into()),
    ])
}

fn scan_from_json(v: &Value) -> Option<ScanStats> {
    Some(ScanStats {
        bodies: v.get("bodies")?.as_u64()?,
        bytes_hashed: v.get("bytes_hashed")?.as_u64()?,
        bodies_scanned: v.get("bodies_scanned")?.as_u64()?,
        bytes_scanned: v.get("bytes_scanned")?.as_u64()?,
        cache_hits: v.get("cache_hits")?.as_u64()?,
        cache_misses: v.get("cache_misses")?.as_u64()?,
        cache_evictions: v.get("cache_evictions")?.as_u64()?,
        distinct_payloads: v.get("distinct_payloads")?.as_u64()?,
    })
}

fn failures_to_json(f: &FailureBreakdown) -> Value {
    Value::Obj(
        f.parts()
            .iter()
            .map(|&(k, n)| (k.to_string(), n.into()))
            .collect(),
    )
}

fn failures_from_json(v: &Value) -> Option<FailureBreakdown> {
    let n = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    Some(FailureBreakdown {
        timeout: n("timeout"),
        reset: n("reset"),
        truncated: n("truncated"),
        peer_gone: n("peer_gone"),
        corrupt: n("corrupt"),
        other: n("other"),
    })
}

fn resilience_to_json(r: &ResilienceStats) -> Value {
    Value::Obj(vec![
        ("retries_scheduled".into(), r.retries_scheduled.into()),
        ("retry_successes".into(), r.retry_successes.into()),
        ("push_fallbacks".into(), r.push_fallbacks.into()),
        ("unscannable".into(), r.unscannable.into()),
        ("failures".into(), failures_to_json(&r.failures)),
        (
            "faults_chunks_dropped".into(),
            r.faults_chunks_dropped.into(),
        ),
        (
            "faults_chunks_corrupted".into(),
            r.faults_chunks_corrupted.into(),
        ),
        ("faults_resets".into(), r.faults_resets.into()),
        (
            "faults_latency_spikes".into(),
            r.faults_latency_spikes.into(),
        ),
        ("faults_churn_downs".into(), r.faults_churn_downs.into()),
        ("faults_churn_ups".into(), r.faults_churn_ups.into()),
    ])
}

fn resilience_from_json(v: &Value) -> Option<ResilienceStats> {
    let n = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    Some(ResilienceStats {
        retries_scheduled: n("retries_scheduled"),
        retry_successes: n("retry_successes"),
        push_fallbacks: n("push_fallbacks"),
        unscannable: n("unscannable"),
        failures: v
            .get("failures")
            .and_then(failures_from_json)
            .unwrap_or_default(),
        faults_chunks_dropped: n("faults_chunks_dropped"),
        faults_chunks_corrupted: n("faults_chunks_corrupted"),
        faults_resets: n("faults_resets"),
        faults_latency_spikes: n("faults_latency_spikes"),
        faults_churn_downs: n("faults_churn_downs"),
        faults_churn_ups: n("faults_churn_ups"),
    })
}

/// Serializes a [`HistSummary`] as the flat object every consumer of
/// `BENCH_study.json` and the run cache shares.
pub fn summary_to_json(s: &HistSummary) -> Value {
    Value::Obj(vec![
        ("count".into(), s.count.into()),
        ("min".into(), s.min.into()),
        ("p50".into(), s.p50.into()),
        ("p90".into(), s.p90.into()),
        ("p99".into(), s.p99.into()),
        ("max".into(), s.max.into()),
    ])
}

fn summary_from_json(v: &Value) -> Option<HistSummary> {
    Some(HistSummary {
        count: v.get("count")?.as_u64()?,
        min: v.get("min")?.as_u64()?,
        p50: v.get("p50")?.as_u64()?,
        p90: v.get("p90")?.as_u64()?,
        p99: v.get("p99")?.as_u64()?,
        max: v.get("max")?.as_u64()?,
    })
}

fn telemetry_to_json(t: &TelemetryStats) -> Value {
    Value::Obj(vec![
        (
            "counters".into(),
            Value::Obj(
                t.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), (*v).into()))
                    .collect(),
            ),
        ),
        (
            "hists".into(),
            Value::Obj(
                t.hists
                    .iter()
                    .map(|(k, s)| (k.clone(), summary_to_json(s)))
                    .collect(),
            ),
        ),
    ])
}

fn telemetry_from_json(v: &Value) -> Option<TelemetryStats> {
    let counters = match v.get("counters")? {
        Value::Obj(pairs) => pairs
            .iter()
            .filter_map(|(k, n)| Some((k.clone(), n.as_u64()?)))
            .collect(),
        _ => Vec::new(),
    };
    let hists = match v.get("hists")? {
        Value::Obj(pairs) => pairs
            .iter()
            .filter_map(|(k, s)| Some((k.clone(), summary_from_json(s)?)))
            .collect(),
        _ => Vec::new(),
    };
    Some(TelemetryStats { counters, hists })
}

fn artifact_to_json(a: &RunArtifact) -> Value {
    Value::Obj(vec![
        (
            "network".into(),
            match a.network {
                Network::Limewire => "limewire",
                Network::OpenFt => "openft",
            }
            .into(),
        ),
        ("seed".into(), a.seed.into()),
        ("days".into(), a.days.into()),
        ("queries_issued".into(), a.queries_issued.into()),
        ("downloads_attempted".into(), a.downloads_attempted.into()),
        ("downloads_failed".into(), a.downloads_failed.into()),
        ("sim_events".into(), a.sim_events.into()),
        ("scan".into(), scan_to_json(&a.scan)),
        ("resilience".into(), resilience_to_json(&a.resilience)),
        ("telemetry".into(), telemetry_to_json(&a.telemetry)),
        (
            "resolved".into(),
            Value::Arr(a.resolved.iter().map(resolved_to_json).collect()),
        ),
    ])
}

fn artifact_from_json(v: &Value) -> Option<RunArtifact> {
    let network = match v.get("network")?.as_str()? {
        "limewire" => Network::Limewire,
        "openft" => Network::OpenFt,
        _ => return None,
    };
    let resolved = v
        .get("resolved")?
        .as_arr()?
        .iter()
        .map(resolved_from_json)
        .collect::<Option<Vec<_>>>()?;
    Some(RunArtifact {
        network,
        seed: v.get("seed")?.as_u64()?,
        days: v.get("days")?.as_u64()?,
        queries_issued: v.get("queries_issued")?.as_u64()?,
        downloads_attempted: v.get("downloads_attempted")?.as_u64()?,
        downloads_failed: v.get("downloads_failed")?.as_u64()?,
        sim_events: v.get("sim_events")?.as_u64()?,
        // Artifacts written before the scan pipeline carry no counters.
        scan: v.get("scan").and_then(scan_from_json).unwrap_or_default(),
        // Likewise for artifacts predating the fault layer.
        resilience: v
            .get("resilience")
            .and_then(resilience_from_json)
            .unwrap_or_default(),
        // And for artifacts predating the telemetry layer.
        telemetry: v
            .get("telemetry")
            .and_then(telemetry_from_json)
            .unwrap_or_default(),
        resolved,
    })
}

/// Collects the deterministic telemetry roll-up from a finished run.
fn telemetry_of(run: &p2pmal_core::NetworkRun) -> TelemetryStats {
    let reg = &run.sim_metrics.telemetry;
    TelemetryStats {
        counters: Counter::ALL
            .iter()
            .map(|&c| (c.label().to_string(), reg.counter(c)))
            .collect(),
        hists: reg
            .sim_summaries()
            .into_iter()
            .map(|(label, s)| (label.to_string(), s))
            .collect(),
    }
}

/// Collects the artifact's resilience counters from a finished run.
fn resilience_of(run: &p2pmal_core::NetworkRun) -> ResilienceStats {
    let m = &run.sim_metrics;
    ResilienceStats {
        retries_scheduled: run.log.retries_scheduled,
        retry_successes: run.log.retry_successes,
        push_fallbacks: run.log.push_fallbacks,
        unscannable: run.log.unscannable,
        failures: run.log.failures,
        faults_chunks_dropped: m.faults_chunks_dropped,
        faults_chunks_corrupted: m.faults_chunks_corrupted,
        faults_resets: m.faults_resets,
        faults_latency_spikes: m.faults_latency_spikes,
        faults_churn_downs: m.faults_churn_downs,
        faults_churn_ups: m.faults_churn_ups,
    }
}

/// Returns the (possibly cached) LimeWire measurement run.
pub fn limewire_run(cfg: &BenchConfig) -> RunArtifact {
    let path = cache_path("limewire", cfg);
    if let Some(a) = load(&path) {
        eprintln!(
            "[p2pmal] loaded cached LimeWire run from {}",
            path.display()
        );
        return a;
    }
    let mut scenario = if cfg.quick {
        LimewireScenario::quick(cfg.seed)
    } else {
        LimewireScenario::paper_scale(cfg.seed)
    };
    let (plan, retry) = cfg.fault_plan();
    scenario = scenario.with_faults(plan, retry);
    if let Some(days) = cfg.days {
        scenario.days = days;
    }
    eprintln!(
        "[p2pmal] simulating LimeWire: {} days, {} ultrapeers, {} clean leaves, faults={}...",
        scenario.days, scenario.ultrapeers, scenario.clean_leaves, cfg.faults
    );
    let started = std::time::Instant::now();
    let run = scenario.run_with_progress(|d| eprintln!("[p2pmal]   LimeWire day {d} done"));
    eprintln!(
        "[p2pmal] LimeWire run took {:.1}s",
        started.elapsed().as_secs_f64()
    );
    let artifact = RunArtifact {
        network: Network::Limewire,
        seed: cfg.seed,
        days: scenario.days,
        queries_issued: run.log.queries_issued,
        downloads_attempted: run.log.downloads_attempted,
        downloads_failed: run.log.downloads_failed,
        sim_events: run.sim_metrics.events_processed,
        scan: run.log.scan,
        resilience: resilience_of(&run),
        telemetry: telemetry_of(&run),
        resolved: run.resolved,
    };
    store(&path, &artifact);
    artifact
}

/// Returns the (possibly cached) OpenFT measurement run.
pub fn openft_run(cfg: &BenchConfig) -> RunArtifact {
    let path = cache_path("openft", cfg);
    if let Some(a) = load(&path) {
        eprintln!("[p2pmal] loaded cached OpenFT run from {}", path.display());
        return a;
    }
    let mut scenario = if cfg.quick {
        OpenFtScenario::quick(cfg.seed ^ 0xF7)
    } else {
        OpenFtScenario::paper_scale(cfg.seed ^ 0xF7)
    };
    let (plan, retry) = cfg.fault_plan();
    scenario = scenario.with_faults(plan, retry);
    if let Some(days) = cfg.days {
        scenario.days = days;
    }
    eprintln!(
        "[p2pmal] simulating OpenFT: {} days, {} search nodes, {} users, faults={}...",
        scenario.days, scenario.search_nodes, scenario.clean_users, cfg.faults
    );
    let started = std::time::Instant::now();
    let run = scenario.run_with_progress(|d| eprintln!("[p2pmal]   OpenFT day {d} done"));
    eprintln!(
        "[p2pmal] OpenFT run took {:.1}s",
        started.elapsed().as_secs_f64()
    );
    let artifact = RunArtifact {
        network: Network::OpenFt,
        seed: cfg.seed,
        days: scenario.days,
        queries_issued: run.log.queries_issued,
        downloads_attempted: run.log.downloads_attempted,
        downloads_failed: run.log.downloads_failed,
        sim_events: run.sim_metrics.events_processed,
        scan: run.log.scan,
        resilience: resilience_of(&run),
        telemetry: telemetry_of(&run),
        resolved: run.resolved,
    };
    store(&path, &artifact);
    artifact
}

/// Runs (or loads) both network measurements, LimeWire and OpenFT each on
/// its own thread. The artifacts are bit-identical to sequential
/// [`limewire_run`] + [`openft_run`] calls: each simulation owns its
/// simulator, world and RNG streams, and the on-disk cache key is the same.
pub fn both_runs(cfg: &BenchConfig) -> (RunArtifact, RunArtifact) {
    std::thread::scope(|scope| {
        let lw = scope.spawn(|| limewire_run(cfg));
        let ft = scope.spawn(|| openft_run(cfg));
        (
            lw.join().expect("LimeWire thread panicked"),
            ft.join().expect("OpenFT thread panicked"),
        )
    })
}

/// One seed's worth of a multi-seed sweep.
pub struct SeedRun {
    pub seed: u64,
    pub limewire: RunArtifact,
    pub openft: RunArtifact,
}

/// Multi-seed sweep: one full two-network study per seed, every study on
/// its own thread (and the two networks within a study on threads of their
/// own). Results come back in the order of `seeds`, and each entry matches
/// what a sequential single-seed run of that seed produces.
pub fn run_seeds(cfg: &BenchConfig, seeds: &[u64]) -> Vec<SeedRun> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                scope.spawn(move || {
                    let cfg = cfg.with_seed(seed);
                    let (limewire, openft) = both_runs(&cfg);
                    SeedRun {
                        seed,
                        limewire,
                        openft,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed thread panicked"))
            .collect()
    })
}

/// Banner printed by every experiment bench.
pub fn banner(id: &str, what: &str) {
    println!("================================================================");
    println!("{id} — {what}");
    println!("reproduction of Kalafut et al., 'A study of malware in P2P networks' (IMC 2006)");
    println!("================================================================");
}
