//! Shared harness for the experiment benches.
//!
//! Every table/figure of the paper has its own bench target (see
//! `crates/bench/benches/`); they all consume the same two measurement
//! runs (LimeWire, OpenFT). Paper-scale runs simulate 35 days, so the
//! harness caches each run's resolved log on disk under
//! `target/p2pmal-runs/` — the first experiment pays for the simulation,
//! the rest reload it in seconds. Delete the cache directory (or change
//! the seed) to re-measure.
//!
//! Scale control via environment:
//!
//! * `P2PMAL_QUICK=1` — run the minutes-scale `quick()` scenarios;
//! * `P2PMAL_SEED=<n>` — change the seed (default 2006);
//! * `P2PMAL_DAYS=<n>` — override the collection length;
//! * `P2PMAL_TRACE=1` — per-day event/wall-time trace during simulation.

use p2pmal_core::{LimewireScenario, OpenFtScenario};
use p2pmal_crawler::{Network, ResolvedResponse};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::PathBuf;

/// The cached form of one network run: everything the analyses consume.
#[derive(Serialize, Deserialize)]
pub struct RunArtifact {
    pub network: Network,
    pub seed: u64,
    pub days: u64,
    pub queries_issued: u64,
    pub downloads_attempted: u64,
    pub downloads_failed: u64,
    pub sim_events: u64,
    pub resolved: Vec<ResolvedResponse>,
}

/// Harness configuration from the environment.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    pub quick: bool,
    pub seed: u64,
    pub days: Option<u64>,
}

impl BenchConfig {
    pub fn from_env() -> Self {
        let quick = std::env::var("P2PMAL_QUICK").map(|v| v == "1").unwrap_or(false);
        let seed = std::env::var("P2PMAL_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(2006);
        let days = std::env::var("P2PMAL_DAYS").ok().and_then(|v| v.parse().ok());
        BenchConfig { quick, seed, days }
    }

    fn tag(&self) -> String {
        let days = self.days.map(|d| d.to_string()).unwrap_or_else(|| "default".into());
        format!("{}-{}-{}", if self.quick { "quick" } else { "paper" }, self.seed, days)
    }
}

fn cache_dir() -> PathBuf {
    // Anchor at the workspace target directory regardless of the CWD the
    // bench harness uses (benches run with CWD = crate dir).
    let mut p = match std::env::var("CARGO_TARGET_DIR") {
        Ok(t) => PathBuf::from(t),
        Err(_) => {
            let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.push("../../target");
            p
        }
    };
    p.push("p2pmal-runs");
    p
}

fn cache_path(network: &str, cfg: &BenchConfig) -> PathBuf {
    let mut p = cache_dir();
    p.push(format!("{network}-{}.json", cfg.tag()));
    p
}

fn load(path: &PathBuf) -> Option<RunArtifact> {
    let bytes = std::fs::read(path).ok()?;
    serde_json::from_slice(&bytes).ok()
}

fn store(path: &PathBuf, artifact: &RunArtifact) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(mut f) = std::fs::File::create(path) {
        let _ = f.write_all(&serde_json::to_vec(artifact).expect("artifact serializes"));
    }
}

/// Returns the (possibly cached) LimeWire measurement run.
pub fn limewire_run(cfg: &BenchConfig) -> RunArtifact {
    let path = cache_path("limewire", cfg);
    if let Some(a) = load(&path) {
        eprintln!("[p2pmal] loaded cached LimeWire run from {}", path.display());
        return a;
    }
    let mut scenario =
        if cfg.quick { LimewireScenario::quick(cfg.seed) } else { LimewireScenario::paper_scale(cfg.seed) };
    if let Some(days) = cfg.days {
        scenario.days = days;
    }
    eprintln!(
        "[p2pmal] simulating LimeWire: {} days, {} ultrapeers, {} clean leaves...",
        scenario.days, scenario.ultrapeers, scenario.clean_leaves
    );
    let started = std::time::Instant::now();
    let run = scenario.run_with_progress(|d| eprintln!("[p2pmal]   LimeWire day {d} done"));
    eprintln!("[p2pmal] LimeWire run took {:.1}s", started.elapsed().as_secs_f64());
    let artifact = RunArtifact {
        network: Network::Limewire,
        seed: cfg.seed,
        days: scenario.days,
        queries_issued: run.log.queries_issued,
        downloads_attempted: run.log.downloads_attempted,
        downloads_failed: run.log.downloads_failed,
        sim_events: run.sim_metrics.events_processed,
        resolved: run.resolved,
    };
    store(&path, &artifact);
    artifact
}

/// Returns the (possibly cached) OpenFT measurement run.
pub fn openft_run(cfg: &BenchConfig) -> RunArtifact {
    let path = cache_path("openft", cfg);
    if let Some(a) = load(&path) {
        eprintln!("[p2pmal] loaded cached OpenFT run from {}", path.display());
        return a;
    }
    let mut scenario = if cfg.quick {
        OpenFtScenario::quick(cfg.seed ^ 0xF7)
    } else {
        OpenFtScenario::paper_scale(cfg.seed ^ 0xF7)
    };
    if let Some(days) = cfg.days {
        scenario.days = days;
    }
    eprintln!(
        "[p2pmal] simulating OpenFT: {} days, {} search nodes, {} users...",
        scenario.days, scenario.search_nodes, scenario.clean_users
    );
    let started = std::time::Instant::now();
    let run = scenario.run_with_progress(|d| eprintln!("[p2pmal]   OpenFT day {d} done"));
    eprintln!("[p2pmal] OpenFT run took {:.1}s", started.elapsed().as_secs_f64());
    let artifact = RunArtifact {
        network: Network::OpenFt,
        seed: cfg.seed,
        days: scenario.days,
        queries_issued: run.log.queries_issued,
        downloads_attempted: run.log.downloads_attempted,
        downloads_failed: run.log.downloads_failed,
        sim_events: run.sim_metrics.events_processed,
        resolved: run.resolved,
    };
    store(&path, &artifact);
    artifact
}

/// Banner printed by every experiment bench.
pub fn banner(id: &str, what: &str) {
    println!("================================================================");
    println!("{id} — {what}");
    println!("reproduction of Kalafut et al., 'A study of malware in P2P networks' (IMC 2006)");
    println!("================================================================");
}
