//! Quick throughput probe for the scan-pipeline substrates.
//!
//! Prints MB/s for SHA-1, CRC32 and the signature engine over bodies shaped
//! like the study's workload (pseudorandom filler, LimeWire-roster signature
//! database). This is a diagnostic, not a benchmark — run `perf_scanner` /
//! `perf_hashes` under Criterion for tracked numbers.
//!
//! ```sh
//! cargo run --release -p p2pmal-bench --bin perf_probe
//! ```

use p2pmal_corpus::Roster;
use p2pmal_scanner::Scanner;
use std::time::Instant;

fn body(len: usize, seed: u64) -> Vec<u8> {
    // xorshift filler: cheap, deterministic, byte-distribution ~uniform,
    // matching the corpus generator's pseudorandom padding.
    let mut x = seed | 1;
    let mut v = Vec::with_capacity(len);
    while v.len() < len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(len);
    v
}

fn mbps(bytes: usize, reps: usize, f: impl Fn()) -> f64 {
    // Warm up once, then time.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    (bytes * reps) as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let db = Roster::limewire_2006().signature_db().unwrap();
    let scanner = Scanner::new(db.build().unwrap());
    let data = body(4 << 20, 0x2006);
    let reps = 32;

    let sha = mbps(data.len(), reps, || {
        std::hint::black_box(p2pmal_hashes::sha1(&data));
    });
    let crc = mbps(data.len(), reps, || {
        std::hint::black_box(p2pmal_archive::crc32(&data));
    });
    let scan = mbps(data.len(), reps, || {
        std::hint::black_box(scanner.scan("probe.bin", &data));
    });
    let ac = scanner.db().automaton();
    let aho = mbps(data.len(), reps, || {
        std::hint::black_box(ac.find_all(&data));
    });
    println!("sha1   {sha:8.0} MB/s");
    println!("crc32  {crc:8.0} MB/s");
    println!("scan   {scan:8.0} MB/s (LimeWire roster, clean pseudorandom body)");
    println!(
        "aho    {aho:8.0} MB/s (prefilter {}, {} start bytes)",
        ac.prefilter_kind(),
        ac.start_byte_count()
    );
}
