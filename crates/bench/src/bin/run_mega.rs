//! Runs one mega-tier population (see `p2pmal_core::MegaScenario`) and
//! reports setup throughput, steady-state memory and event throughput.
//!
//! ```sh
//! P2PMAL_MEGA_NODES=50000 P2PMAL_DAYS=2 P2PMAL_SHARDS=4 \
//!     cargo run --release -p p2pmal-bench --bin run_mega
//! ```
//!
//! Writes a machine-readable summary to `P2PMAL_BENCH_JSON`
//! (default `BENCH_mega.json`).

use p2pmal_core::{MegaRun, MegaScenario};
use p2pmal_json::Value;

fn mem_entry(label: &str, m: &p2pmal_netsim::MemoryStats) -> Value {
    Value::Obj(vec![
        ("phase".into(), label.into()),
        ("nodes".into(), m.nodes.into()),
        ("app_bytes".into(), m.app_bytes.into()),
        ("bytes_per_node".into(), m.bytes_per_node().into()),
        ("peak_rss_kb".into(), m.peak_rss_kb.into()),
        ("current_rss_kb".into(), m.current_rss_kb.into()),
    ])
}

fn report(run: &MegaRun) {
    let setup = &run.setup_memory;
    let steady = &run.sim_metrics.memory;
    let setup_secs = run.setup_wall.as_secs_f64();
    let run_secs = run.wall.as_secs_f64();
    let events = run.sim_metrics.events_processed;
    eprintln!(
        "[run_mega] population: {} nodes ({} ultrapeers + {} leaves + crawler), {} shards",
        run.nodes, run.ups, run.leaves, run.shards,
    );
    eprintln!(
        "[run_mega] setup: {setup_secs:.1}s wall ({:.0} nodes/s), {} bytes/node app estimate, RSS {} MiB (peak {} MiB)",
        run.nodes as f64 / setup_secs.max(1e-9),
        setup.bytes_per_node(),
        setup.current_rss_kb / 1024,
        setup.peak_rss_kb / 1024,
    );
    eprintln!(
        "[run_mega] run: {} sim-days in {run_secs:.1}s wall, {events} events ({:.0}/s)",
        run.days,
        events as f64 / run_secs.max(1e-9),
    );
    eprintln!(
        "[run_mega] steady state: {} bytes/node app estimate ({} MiB total), RSS {} MiB (peak {} MiB)",
        steady.bytes_per_node(),
        steady.app_bytes / (1024 * 1024),
        steady.current_rss_kb / 1024,
        steady.peak_rss_kb / 1024,
    );
    eprintln!(
        "[run_mega] crawl: {} queries, {} responses, {} downloads attempted / {} failed",
        run.log.queries_issued,
        run.log.responses.len(),
        run.log.downloads_attempted,
        run.log.downloads_failed,
    );
}

fn write_json(run: &MegaRun, seed: u64) {
    let run_secs = run.wall.as_secs_f64();
    let events = run.sim_metrics.events_processed;
    let doc = Value::Obj(vec![
        ("seed".into(), seed.into()),
        ("nodes".into(), (run.nodes as u64).into()),
        ("ultrapeers".into(), (run.ups as u64).into()),
        ("leaves".into(), (run.leaves as u64).into()),
        ("days".into(), run.days.into()),
        ("shards".into(), (run.shards as u64).into()),
        ("window_ms".into(), (run.shard_window_us / 1000).into()),
        ("setup_secs".into(), run.setup_wall.as_secs_f64().into()),
        ("run_secs".into(), run_secs.into()),
        ("events".into(), events.into()),
        (
            "events_per_sec".into(),
            (events as f64 / run_secs.max(1e-9)).into(),
        ),
        (
            "memory".into(),
            Value::Arr(vec![
                mem_entry("setup", &run.setup_memory),
                mem_entry("steady", &run.sim_metrics.memory),
            ]),
        ),
    ]);
    let path = std::env::var("P2PMAL_BENCH_JSON").unwrap_or_else(|_| "BENCH_mega.json".into());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&path, doc.to_string_compact()) {
        Ok(()) => eprintln!("[run_mega] wrote summary to {path}"),
        Err(e) => eprintln!("[run_mega] could not write {path}: {e}"),
    }
}

fn main() {
    let seed = std::env::var("P2PMAL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let scen = MegaScenario::from_env(seed);
    eprintln!(
        "[run_mega] seed {seed}, {} nodes, {} days, {} shards",
        scen.nodes, scen.days, scen.shards,
    );
    let run = scen.run_with_progress(|day| eprintln!("[run_mega] day {day} done"));
    report(&run);
    write_json(&run, seed);
}
