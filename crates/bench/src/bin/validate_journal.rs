//! Validates a telemetry event journal written via `P2PMAL_JOURNAL`.
//!
//! Every line must parse as a JSON object carrying the event envelope
//! (`t`, `day`, `cat`, `ev`) with a known category, and the sim
//! timestamps must be monotone non-decreasing. Provenance is checked for
//! referential integrity: `trace`/`span` must appear together as valid
//! 16-char hex ids, span ids must be unique, and every `parent` must
//! resolve to a span emitted **earlier in the same journal** — which,
//! combined with global `t` monotonicity, also guarantees sim-times are
//! monotone along every causal chain. CI runs this against the journals
//! of a quick study to keep the JSONL schema honest.
//!
//! ```sh
//! cargo run -p p2pmal-bench --bin validate_journal -- journal.limewire.jsonl journal.openft.jsonl
//! ```
//!
//! Prints one summary line per valid journal; exits with status 1 if any
//! journal is malformed, 2 on usage errors. `--allow-orphans` downgrades
//! unresolved parents from errors to a reported count (for truncated or
//! sampled journals, where chains are cut on purpose).

use std::collections::HashSet;

use p2pmal_json::Value;
use p2pmal_netsim::telemetry_span::parse_span_hex;
use p2pmal_netsim::EventCategory;

fn id_field(v: &Value, key: &str, at: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(raw) => {
            let s = raw
                .as_str()
                .ok_or(format!("{at}: `{key}` is not a string"))?;
            parse_span_hex(s)
                .map(Some)
                .ok_or(format!("{at}: `{key}` is not a 16-char hex id: {s:?}"))
        }
    }
}

fn validate(path: &str, allow_orphans: bool) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut last_t = 0u64;
    let mut counts = [0u64; EventCategory::ALL.len()];
    let mut events = 0u64;
    let mut spans_seen: HashSet<u64> = HashSet::new();
    let mut traces_seen: HashSet<u64> = HashSet::new();
    let mut spanned = 0u64;
    let mut orphans = 0u64;
    let mut first_orphan: Option<String> = None;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let at = format!("{path}:{n}");
        let v = p2pmal_json::parse(line).map_err(|e| format!("{at}: {e}"))?;
        let t = v
            .get("t")
            .and_then(Value::as_u64)
            .ok_or(format!("{at}: missing numeric `t`"))?;
        v.get("day")
            .and_then(Value::as_u64)
            .ok_or(format!("{at}: missing numeric `day`"))?;
        let cat = v
            .get("cat")
            .and_then(Value::as_str)
            .ok_or(format!("{at}: missing string `cat`"))?;
        let cat =
            EventCategory::from_label(cat).ok_or(format!("{at}: unknown category {cat:?}"))?;
        v.get("ev")
            .and_then(Value::as_str)
            .ok_or(format!("{at}: missing string `ev`"))?;
        if t < last_t {
            return Err(format!("{at}: sim time went backwards ({t} < {last_t})"));
        }
        last_t = t;

        // Provenance referential integrity.
        let trace = id_field(&v, "trace", &at)?;
        let span = id_field(&v, "span", &at)?;
        let parent = id_field(&v, "parent", &at)?;
        if trace.is_some() != span.is_some() {
            return Err(format!("{at}: `trace` and `span` must appear together"));
        }
        if parent.is_some() && span.is_none() {
            return Err(format!("{at}: `parent` without `span`"));
        }
        if let Some(p) = parent {
            // Checked before registering this line's own span, so a
            // self-parenting event is also caught as unresolved.
            if !spans_seen.contains(&p) {
                orphans += 1;
                first_orphan.get_or_insert_with(|| {
                    format!("{at}: parent {p:016x} never emitted before this line")
                });
            }
        }
        if let Some(s) = span {
            spanned += 1;
            traces_seen.insert(trace.expect("paired with span above"));
            if !spans_seen.insert(s) {
                return Err(format!("{at}: duplicate span id {s:016x}"));
            }
        }

        counts[cat as usize] += 1;
        events += 1;
    }
    if orphans > 0 && !allow_orphans {
        return Err(format!(
            "{}: {orphans} orphan parent reference(s) in total",
            first_orphan.expect("orphans > 0")
        ));
    }
    let breakdown: Vec<String> = EventCategory::ALL
        .iter()
        .zip(counts.iter())
        .filter(|(_, &n)| n > 0)
        .map(|(c, n)| format!("{} {n}", c.label()))
        .collect();
    println!(
        "{path}: {events} events OK ({}); {spanned} spanned, {} traces, {orphans} orphans",
        if breakdown.is_empty() {
            "empty".into()
        } else {
            breakdown.join(", ")
        },
        traces_seen.len(),
    );
    Ok(())
}

fn main() {
    let mut allow_orphans = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--allow-orphans" => allow_orphans = true,
            _ if arg.starts_with('-') => {
                eprintln!("usage: validate_journal [--allow-orphans] <journal.jsonl>...");
                std::process::exit(2);
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: validate_journal [--allow-orphans] <journal.jsonl>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        if let Err(e) = validate(path, allow_orphans) {
            eprintln!("[validate_journal] INVALID: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
