//! Validates a telemetry event journal written via `P2PMAL_JOURNAL`.
//!
//! Every line must parse as a JSON object carrying the event envelope
//! (`t`, `day`, `cat`, `ev`) with a known category, and the sim
//! timestamps must be monotone non-decreasing. CI runs this against the
//! journals of a quick study to keep the JSONL schema honest.
//!
//! ```sh
//! cargo run -p p2pmal-bench --bin validate_journal -- journal.limewire.jsonl journal.openft.jsonl
//! ```
//!
//! Prints one per-category summary line per valid journal; exits with
//! status 1 if any journal is malformed, 2 on usage errors.

use p2pmal_json::Value;
use p2pmal_netsim::EventCategory;

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut last_t = 0u64;
    let mut counts = [0u64; EventCategory::ALL.len()];
    let mut events = 0u64;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let v = p2pmal_json::parse(line).map_err(|e| format!("{path}:{n}: {e}"))?;
        let t = v
            .get("t")
            .and_then(Value::as_u64)
            .ok_or(format!("{path}:{n}: missing numeric `t`"))?;
        v.get("day")
            .and_then(Value::as_u64)
            .ok_or(format!("{path}:{n}: missing numeric `day`"))?;
        let cat = v
            .get("cat")
            .and_then(Value::as_str)
            .ok_or(format!("{path}:{n}: missing string `cat`"))?;
        let cat = EventCategory::from_label(cat)
            .ok_or(format!("{path}:{n}: unknown category {cat:?}"))?;
        v.get("ev")
            .and_then(Value::as_str)
            .ok_or(format!("{path}:{n}: missing string `ev`"))?;
        if t < last_t {
            return Err(format!(
                "{path}:{n}: sim time went backwards ({t} < {last_t})"
            ));
        }
        last_t = t;
        counts[cat as usize] += 1;
        events += 1;
    }
    let breakdown: Vec<String> = EventCategory::ALL
        .iter()
        .zip(counts.iter())
        .filter(|(_, &n)| n > 0)
        .map(|(c, n)| format!("{} {n}", c.label()))
        .collect();
    println!(
        "{path}: {events} events OK ({})",
        if breakdown.is_empty() {
            "empty".into()
        } else {
            breakdown.join(", ")
        }
    );
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_journal <journal.jsonl>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        if let Err(e) = validate(path) {
            eprintln!("[validate_journal] INVALID: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
