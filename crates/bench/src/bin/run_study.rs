//! Runs the full two-network study at paper scale and writes the complete
//! report plus machine-readable comparisons.
//!
//! ```sh
//! cargo run --release -p p2pmal-bench --bin run_study           # paper scale
//! P2PMAL_QUICK=1 cargo run --release -p p2pmal-bench --bin run_study
//! # Multi-seed sweep, one study per thread:
//! P2PMAL_QUICK=1 P2PMAL_SEEDS=1,2,3 cargo run --release -p p2pmal-bench --bin run_study
//! ```

use p2pmal_analysis::hist_summary_line;
use p2pmal_bench::{run_seeds, summary_to_json, BenchConfig, RunArtifact};
use p2pmal_core::{LimewireScenario, NetworkRun, OpenFtScenario, Study};
use p2pmal_crawler::ScanStats;
use p2pmal_json::Value;
use p2pmal_netsim::{Counter, Subsystem};

/// One line of scan-pipeline accounting: how many download bodies reached
/// the scanner and how much of that work the verdict cache absorbed.
fn scan_line(label: &str, s: &ScanStats) {
    println!(
        "  scan pipeline [{label}]: {} bodies ({} KiB hashed), {} scanned, \
         {} cache hits ({:.1}%), {} distinct payloads",
        s.bodies,
        s.bytes_hashed / 1024,
        s.bodies_scanned,
        s.cache_hits,
        s.hit_rate_pct(),
        s.distinct_payloads,
    );
}

/// Fault-injection and retry-pipeline accounting, printed only when a
/// non-default `P2PMAL_FAULTS` profile is active (the fault-free study's
/// stdout stays byte-identical to the pre-fault-layer build).
fn resilience_lines(label: &str, run: &NetworkRun, profile: &str) {
    let log = &run.log;
    let m = &run.sim_metrics;
    let causes: Vec<String> = log
        .failures
        .parts()
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, n)| format!("{k} {n}"))
        .collect();
    let causes = if causes.is_empty() {
        "none".to_string()
    } else {
        causes.join(" / ")
    };
    println!(
        "  resilience [{label}] (profile {profile}): {} retries ({} recovered), {} terminal failures, {} failed attempts by cause: {causes}",
        log.retries_scheduled,
        log.retry_successes,
        log.downloads_failed,
        log.failures.total(),
    );
    println!(
        "  faults injected [{label}]: {} chunks dropped, {} corrupted, {} resets, {} latency spikes, {} churn downs / {} ups; {} push fallbacks, {} unscannable",
        m.faults_chunks_dropped,
        m.faults_chunks_corrupted,
        m.faults_resets,
        m.faults_latency_spikes,
        m.faults_churn_downs,
        m.faults_churn_ups,
        log.push_fallbacks,
        log.unscannable,
    );
}

/// Per-network profiler roll-up: the wall time of the simulation loop,
/// event throughput, and the per-subsystem wall-time buckets. Echoed to
/// stderr (stdout is the report and must stay byte-identical across
/// perf-only changes) and serialized into `BENCH_study.json`.
fn timing_entry(label: &str, run: &NetworkRun) -> Value {
    let t = &run.sim_metrics.timing;
    let wall = run.wall.as_secs_f64();
    let events = run.sim_metrics.events_processed;
    let events_per_sec = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    eprintln!(
        "[run_study] timing {label}: {wall:.1}s wall, {events} events ({events_per_sec:.0}/s); {}",
        t.render_compact(),
    );
    if run.shards > 1 {
        eprintln!(
            "[run_study] sharding {label}: {} shards, {} ms exchange window",
            run.shards,
            run.shard_window_us / 1000,
        );
    }
    let buckets = Value::Obj(
        Subsystem::ALL
            .iter()
            .map(|&s| {
                (
                    s.label().to_string(),
                    Value::Obj(vec![
                        ("secs".into(), (t.nanos(s) as f64 / 1e9).into()),
                        ("calls".into(), t.calls(s).into()),
                    ]),
                )
            })
            .collect(),
    );
    Value::Obj(vec![
        ("network".into(), label.into()),
        ("wall_secs".into(), wall.into()),
        ("events".into(), events.into()),
        ("events_per_sec".into(), events_per_sec.into()),
        ("shards".into(), (run.shards as u64).into()),
        ("window_ms".into(), (run.shard_window_us / 1000).into()),
        ("subsystems".into(), buckets),
        ("memory".into(), memory_entry(run)),
        ("telemetry".into(), telemetry_entry(run)),
    ])
}

/// Memory-accounting section of one network's `BENCH_study.json` entry,
/// echoed to stderr like the timing lines (RSS readings are wall-machine
/// facts and never reach stdout).
fn memory_entry(run: &NetworkRun) -> Value {
    let m = &run.sim_metrics.memory;
    eprintln!(
        "[run_study] memory {}: {} nodes, {} bytes/node app estimate ({} KiB total), RSS {} MiB (peak {} MiB)",
        match run.network {
            p2pmal_crawler::Network::Limewire => "LimeWire",
            p2pmal_crawler::Network::OpenFt => "OpenFT",
        },
        m.nodes,
        m.bytes_per_node(),
        m.app_bytes / 1024,
        m.current_rss_kb / 1024,
        m.peak_rss_kb / 1024,
    );
    Value::Obj(vec![
        ("nodes".into(), m.nodes.into()),
        ("app_bytes".into(), m.app_bytes.into()),
        ("bytes_per_node".into(), m.bytes_per_node().into()),
        ("peak_rss_kb".into(), m.peak_rss_kb.into()),
        ("current_rss_kb".into(), m.current_rss_kb.into()),
    ])
}

/// The telemetry section of one network's `BENCH_study.json` entry:
/// registry counters plus count/min/p50/p90/p99/max summaries of every
/// sim-time histogram. Only deterministic (sim-time-keyed) values go into
/// the JSON; wall-clock histograms are echoed to stderr by
/// [`telemetry_lines`] instead.
fn telemetry_entry(run: &NetworkRun) -> Value {
    let reg = &run.sim_metrics.telemetry;
    let counters = Value::Obj(
        Counter::ALL
            .iter()
            .map(|&c| (c.label().to_string(), reg.counter(c).into()))
            .collect(),
    );
    let hists = Value::Obj(
        reg.sim_summaries()
            .into_iter()
            .map(|(label, s)| (label.to_string(), summary_to_json(&s)))
            .collect(),
    );
    Value::Obj(vec![("counters".into(), counters), ("hists".into(), hists)])
}

/// Filename-interning accounting for one network's world, echoed to
/// stderr (stdout must stay byte-identical across perf-only changes).
fn intern_lines(label: &str, run: &NetworkRun) {
    let s = run.world.names.stats();
    eprintln!(
        "[run_study] interning {label}: {} unique names, {} dedup hits, {} KiB of string bytes saved",
        s.unique,
        s.hits,
        s.bytes_saved / 1024,
    );
    eprintln!(
        "[run_study] interning {label}: {} arena records, {} KiB of match metadata saved",
        s.records,
        s.meta_bytes_saved / 1024,
    );
}

/// Echoes the histogram summaries (sim-time and wall-clock) to stderr.
fn telemetry_lines(label: &str, run: &NetworkRun) {
    let reg = &run.sim_metrics.telemetry;
    for (name, s) in reg.sim_summaries() {
        if s.count == 0 {
            continue;
        }
        eprintln!(
            "[run_study] hist {label}: {}",
            hist_summary_line(name, s.count, s.min, s.p50, s.p90, s.p99, s.max)
        );
    }
    for (name, s) in reg.wall_summaries() {
        if s.count == 0 {
            continue;
        }
        eprintln!(
            "[run_study] hist {label} (wall): {}",
            hist_summary_line(name, s.count, s.min, s.p50, s.p90, s.p99, s.max)
        );
    }
}

/// Writes the machine-readable timing summary next to the human report so
/// the perf trajectory is tracked across commits.
fn write_bench_json(report: &p2pmal_core::StudyReport, cfg: &BenchConfig) {
    let mut networks = Vec::new();
    if let Some(run) = report.limewire.as_ref() {
        networks.push(timing_entry("LimeWire", run));
    }
    if let Some(run) = report.openft.as_ref() {
        networks.push(timing_entry("OpenFT", run));
    }
    let doc = Value::Obj(vec![
        ("seed".into(), cfg.seed.into()),
        ("quick".into(), cfg.quick.into()),
        ("faults".into(), cfg.faults.as_str().into()),
        ("networks".into(), Value::Arr(networks)),
    ]);
    let path = std::env::var("P2PMAL_BENCH_JSON").unwrap_or_else(|_| "BENCH_study.json".into());
    // `P2PMAL_BENCH_JSON=dir/file.json` must work even when `dir` does not
    // exist yet (CI points this at a fresh artifacts directory).
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("[run_study] could not create {}: {e}", dir.display());
            }
        }
    }
    match std::fs::write(&path, doc.to_string_compact()) {
        Ok(()) => eprintln!("[run_study] wrote timing summary to {path}"),
        Err(e) => eprintln!("[run_study] could not write {path}: {e}"),
    }
}

fn artifact_line(a: &RunArtifact) {
    let downloadable = a.resolved.iter().filter(|r| r.record.downloadable).count();
    let scanned = a
        .resolved
        .iter()
        .filter(|r| r.record.downloadable && r.scanned)
        .count();
    let malicious = a
        .resolved
        .iter()
        .filter(|r| r.record.downloadable && r.malware.is_some())
        .count();
    let pct = if scanned > 0 {
        100.0 * malicious as f64 / scanned as f64
    } else {
        0.0
    };
    println!(
        "  {:8} seed={:<6} responses={:<6} downloadable={:<6} malicious={:<5} ({:.1}%)  sim_events={}",
        match a.network {
            p2pmal_crawler::Network::Limewire => "LimeWire",
            p2pmal_crawler::Network::OpenFt => "OpenFT",
        },
        a.seed,
        a.resolved.len(),
        downloadable,
        malicious,
        pct,
        a.sim_events,
    );
}

fn sweep(cfg: &BenchConfig, seeds: &[u64]) {
    eprintln!("[run_study] multi-seed sweep over {seeds:?}, one study per thread");
    let started = std::time::Instant::now();
    let runs = run_seeds(cfg, seeds);
    eprintln!(
        "[run_study] sweep took {:.1}s wall",
        started.elapsed().as_secs_f64()
    );
    println!("# Multi-seed sweep");
    for run in &runs {
        println!("seed {}:", run.seed);
        artifact_line(&run.limewire);
        scan_line("LimeWire", &run.limewire.scan);
        artifact_line(&run.openft);
        scan_line("OpenFT", &run.openft.scan);
        if cfg.faults != "none" {
            for (label, a) in [("LimeWire", &run.limewire), ("OpenFT", &run.openft)] {
                let r = &a.resilience;
                println!(
                    "  resilience [{label}]: {} retries ({} recovered), {} failed,                      {} faults injected",
                    r.retries_scheduled,
                    r.retry_successes,
                    a.downloads_failed,
                    r.faults_chunks_dropped + r.faults_chunks_corrupted + r.faults_resets,
                );
            }
        }
    }
}

fn main() {
    let cfg = BenchConfig::from_env();
    if let Some(seeds) = cfg.seeds.clone() {
        sweep(&cfg, &seeds);
        return;
    }
    let mut lw = if cfg.quick {
        LimewireScenario::quick(cfg.seed)
    } else {
        LimewireScenario::paper_scale(cfg.seed)
    };
    let mut ft = if cfg.quick {
        OpenFtScenario::quick(cfg.seed ^ 0xF7)
    } else {
        OpenFtScenario::paper_scale(cfg.seed ^ 0xF7)
    };
    let (plan, retry) = cfg.fault_plan();
    lw = lw.with_faults(plan, retry);
    ft = ft.with_faults(plan, retry);
    if let Some(days) = cfg.days {
        lw.days = days;
        ft.days = days;
    }
    let report = Study::new()
        .with_limewire(lw)
        .with_openft(ft)
        .run_with_progress(|net, day| eprintln!("[run_study] {net}: day {day} done"));

    println!("{}", report.render_markdown());
    if let Some(run) = report.limewire.as_ref() {
        scan_line("LimeWire", &run.log.scan);
    }
    if let Some(run) = report.openft.as_ref() {
        scan_line("OpenFT", &run.log.scan);
    }
    if cfg.faults != "none" {
        if let Some(run) = report.limewire.as_ref() {
            resilience_lines("LimeWire", run, &cfg.faults);
        }
        if let Some(run) = report.openft.as_ref() {
            resilience_lines("OpenFT", run, &cfg.faults);
        }
    }
    if let Some(run) = report.limewire.as_ref() {
        telemetry_lines("LimeWire", run);
        intern_lines("LimeWire", run);
    }
    if let Some(run) = report.openft.as_ref() {
        telemetry_lines("OpenFT", run);
        intern_lines("OpenFT", run);
    }
    write_bench_json(&report, &cfg);
    let comparisons = report.comparisons();
    eprintln!("{}", comparisons.to_json());
    if comparisons.all_hold() {
        eprintln!(
            "[run_study] all {} expectations hold",
            comparisons.expectations.len()
        );
    } else {
        eprintln!(
            "[run_study] {} expectation(s) out of band",
            comparisons.failures().len()
        );
        if !cfg.quick {
            std::process::exit(1);
        }
    }
}
