//! Runs the full two-network study at paper scale and writes the complete
//! report plus machine-readable comparisons.
//!
//! ```sh
//! cargo run --release -p p2pmal-bench --bin run_study           # paper scale
//! P2PMAL_QUICK=1 cargo run --release -p p2pmal-bench --bin run_study
//! ```

use p2pmal_bench::BenchConfig;
use p2pmal_core::{LimewireScenario, OpenFtScenario, Study};

fn main() {
    let cfg = BenchConfig::from_env();
    let mut lw = if cfg.quick {
        LimewireScenario::quick(cfg.seed)
    } else {
        LimewireScenario::paper_scale(cfg.seed)
    };
    let mut ft = if cfg.quick {
        OpenFtScenario::quick(cfg.seed ^ 0xF7)
    } else {
        OpenFtScenario::paper_scale(cfg.seed ^ 0xF7)
    };
    if let Some(days) = cfg.days {
        lw.days = days;
        ft.days = days;
    }
    let report = Study::new()
        .with_limewire(lw)
        .with_openft(ft)
        .run_with_progress(|net, day| eprintln!("[run_study] {net}: day {day} done"));

    println!("{}", report.render_markdown());
    let comparisons = report.comparisons();
    eprintln!("{}", comparisons.to_json());
    if comparisons.all_hold() {
        eprintln!("[run_study] all {} expectations hold", comparisons.expectations.len());
    } else {
        eprintln!("[run_study] {} expectation(s) out of band", comparisons.failures().len());
        if !cfg.quick {
            std::process::exit(1);
        }
    }
}
