//! F1 — Daily fraction of malicious downloadable responses over the
//! collection month, both networks.
//!
//! Paper provenance: "Our results from over a month of data" — the daily
//! series shows the prevalence level is persistent, not a burst.

use p2pmal_analysis::{daily_fraction, daily_table, Comparison, Expectation};
use p2pmal_bench::{banner, limewire_run, openft_run, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    banner("F1", "daily malicious fraction over the collection period");
    let lw = limewire_run(&cfg);
    let ft = openft_run(&cfg);

    let lw_days = daily_fraction(&lw.resolved);
    println!("{}", daily_table("LimeWire", &lw_days).to_markdown());
    let ft_days = daily_fraction(&ft.resolved);
    println!("{}", daily_table("OpenFT", &ft_days).to_markdown());

    // ASCII sparkline of the LimeWire series.
    let spark: String = lw_days
        .iter()
        .map(|(_, _, _, f)| {
            let levels = [' ', '.', ':', '-', '=', '+', '*', '#'];
            levels[((f * 7.0).round() as usize).min(7)]
        })
        .collect();
    println!("LimeWire daily fraction (0..1): [{spark}]\n");

    // Shape checks: the series is persistent (low relative spread), not a
    // single-day artifact.
    let fracs: Vec<f64> = lw_days.iter().map(|d| d.3).collect();
    let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
    let spread = fracs
        .iter()
        .map(|f| (f - mean).abs())
        .fold(0.0f64, f64::max);
    let mut c = Comparison::new();
    c.push(Expectation::new(
        "F1-mean",
        "mean daily malicious fraction (LimeWire), percent",
        68.0,
        10.0,
        100.0 * mean,
    ));
    c.push(Expectation::new(
        "F1-stability",
        "max daily deviation from the mean (percentage points)",
        0.0,
        12.0,
        100.0 * spread,
    ));
    println!("{}", c.to_table().to_markdown());
    if !cfg.quick && !c.all_hold() {
        eprintln!("WARNING: paper-scale expectations out of band");
        std::process::exit(1);
    }
}
