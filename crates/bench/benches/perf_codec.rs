//! Perf: protocol codec throughput — Gnutella descriptor framing and
//! OpenFT packet framing, encode and parse sides.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use p2pmal_gnutella::guid::Guid;
use p2pmal_gnutella::message::{encode_message, MessageReader, MsgType};
use p2pmal_gnutella::payload::{HitResult, QhdFlags, Query, QueryHit};
use p2pmal_openft::packet::{encode_packet, Command, PacketReader, Search, SearchResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn sample_query_wire() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(1);
    let mut out = Vec::new();
    encode_message(
        Guid::random(&mut rng),
        MsgType::Query,
        3,
        0,
        &Query::keyword("crimson horizon remix").encode(),
        &mut out,
    );
    out
}

fn sample_hit_wire() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(2);
    let hit = QueryHit {
        port: 6346,
        ip: Ipv4Addr::new(10, 1, 2, 3),
        speed: 350,
        results: (0..32)
            .map(|i| HitResult {
                index: i,
                size: 58_368 + i,
                name: format!("result_number_{i}_of_many.exe"),
                sha1: None,
            })
            .collect(),
        vendor: *b"LIME",
        flags: QhdFlags::new(),
        ggep: Vec::new(),
        servent_guid: Guid::random(&mut rng),
    };
    let mut out = Vec::new();
    encode_message(
        Guid::random(&mut rng),
        MsgType::QueryHit,
        4,
        0,
        &hit.encode(),
        &mut out,
    );
    out
}

fn bench_gnutella(c: &mut Criterion) {
    let query_wire = sample_query_wire();
    let hit_wire = sample_hit_wire();

    let mut g = c.benchmark_group("gnutella_codec");
    g.throughput(Throughput::Bytes(query_wire.len() as u64));
    g.bench_function("encode_query", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let guid = Guid::random(&mut rng);
        let payload = Query::keyword("crimson horizon remix").encode();
        b.iter(|| {
            let mut out = Vec::with_capacity(64);
            encode_message(guid, MsgType::Query, 3, 0, black_box(&payload), &mut out);
            black_box(out)
        });
    });
    g.bench_function("parse_query_stream", |b| {
        b.iter_batched(
            MessageReader::new,
            |mut r| {
                r.push(black_box(&query_wire));
                black_box(r.next_message().unwrap().unwrap())
            },
            BatchSize::SmallInput,
        );
    });
    g.throughput(Throughput::Bytes(hit_wire.len() as u64));
    g.bench_function("parse_queryhit_32_results", |b| {
        b.iter_batched(
            MessageReader::new,
            |mut r| {
                r.push(black_box(&hit_wire));
                let (_, payload) = r.next_message().unwrap().unwrap();
                black_box(QueryHit::parse(&payload).unwrap())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_openft(c: &mut Criterion) {
    let result = Search::Result(SearchResult {
        id: 1,
        host: Ipv4Addr::new(4, 8, 15, 16),
        port: 1215,
        http_port: 1216,
        avail: 1,
        md5: p2pmal_hashes::md5(b"x"),
        size: 33_280,
        filename: "some_registered_share_name.exe".into(),
    });
    let mut wire = Vec::new();
    encode_packet(Command::Search, &result.encode(), &mut wire);

    let mut g = c.benchmark_group("openft_codec");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_search_result", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(96);
            encode_packet(Command::Search, black_box(&result.encode()), &mut out);
            black_box(out)
        });
    });
    g.bench_function("parse_search_result", |b| {
        b.iter_batched(
            PacketReader::new,
            |mut r| {
                r.push(black_box(&wire));
                let (_, payload) = r.next_packet().unwrap().unwrap();
                black_box(Search::parse(&payload).unwrap())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_gnutella, bench_openft);
criterion_main!(benches);
