//! Perf: QRP hashing, table matching, and table transfer (RESET/PATCH with
//! DEFLATE compression) — the per-query cost at every ultrapeer.

use criterion::{criterion_group, criterion_main, Criterion};
use p2pmal_gnutella::qrp::{qrp_hash, QrpReceiver, QrpTable};
use std::hint::black_box;

fn populated_table() -> QrpTable {
    let mut t = QrpTable::default_table();
    for i in 0..200 {
        t.insert_name(&format!("some_shared_file_number_{i}_final.mp3"));
    }
    t
}

fn bench_qrp(c: &mut Criterion) {
    c.bench_function("qrp_hash_word", |b| {
        b.iter(|| black_box(qrp_hash(black_box("horizon"), 16)));
    });

    let table = populated_table();
    c.bench_function("qrp_might_match_3_terms", |b| {
        b.iter(|| black_box(table.might_match(black_box("some shared file"))));
    });

    c.bench_function("qrp_table_transfer_compressed", |b| {
        b.iter(|| {
            let msgs = table.to_messages(4096, true);
            let mut rx = QrpReceiver::new();
            for m in &msgs {
                rx.apply(m).unwrap();
            }
            black_box(rx.filter().unwrap().population())
        });
    });
}

criterion_group!(benches, bench_qrp);
criterion_main!(benches);
