//! T5 — Host concentration of malicious responses.
//!
//! Paper claim (abstract): "In OpenFT, the top virus, which accounts of
//! 67% of all the malicious responses, is served by a single host."

use p2pmal_analysis::{host_concentration, host_table, top_malware, Comparison, Expectation};
use p2pmal_bench::{banner, limewire_run, openft_run, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    banner("T5", "host concentration of malicious responses");
    let lw = limewire_run(&cfg);
    let ft = openft_run(&cfg);

    let lw_hosts = host_concentration(&lw.resolved);
    println!("{}", host_table("LimeWire", &lw_hosts, 10).to_markdown());
    let ft_hosts = host_concentration(&ft.resolved);
    println!("{}", host_table("OpenFT", &ft_hosts, 10).to_markdown());

    // The paper's claim couples T3 and T5: the OpenFT top *host* serves the
    // top *virus* and carries its entire share.
    let top_host_pct = ft_hosts.first().map(|h| h.pct_of_malicious).unwrap_or(0.0);
    let top_family = top_malware(&ft.resolved);
    let top_family_pct = top_family.first().map(|s| s.pct).unwrap_or(0.0);
    let single_family_host = ft_hosts
        .first()
        .map(|h| h.families.len() == 1)
        .unwrap_or(false);
    println!(
        "top OpenFT host serves {:.1}% of malicious responses; top family {:.1}%; host serves exactly one family: {}\n",
        top_host_pct, top_family_pct, single_family_host
    );

    let mut c = Comparison::new();
    c.push(Expectation::new(
        "T5-openft-top-host",
        "top OpenFT host's share of malicious responses",
        67.0,
        10.0,
        top_host_pct,
    ));
    c.push(Expectation::new(
        "T5-host-family-coupling",
        "top host share minus top family share (same thing in the paper)",
        0.0,
        3.0,
        top_host_pct - top_family_pct,
    ));
    println!("{}", c.to_table().to_markdown());
    if !cfg.quick && !c.all_hold() {
        eprintln!("WARNING: paper-scale expectations out of band");
        std::process::exit(1);
    }
}
