//! T1 — Data-collection summary (both networks).
//!
//! Paper claims reproduced here (abstract): "68% of all downloadable
//! responses in Limewire containing archives and executables contain
//! malware. The corresponding number for OpenFT is 3%."
//!
//! ```sh
//! cargo bench -p p2pmal-bench --bench t1_summary
//! P2PMAL_QUICK=1 cargo bench -p p2pmal-bench --bench t1_summary   # minutes-scale
//! ```

use p2pmal_analysis::{summarize, summary_table, Comparison, Expectation};
use p2pmal_bench::{banner, limewire_run, openft_run, BenchConfig};
use p2pmal_crawler::CrawlLog;

fn main() {
    let cfg = BenchConfig::from_env();
    banner("T1", "data collection summary");
    let lw = limewire_run(&cfg);
    let ft = openft_run(&cfg);

    let mut summaries = Vec::new();
    for run in [&lw, &ft] {
        let mut log = CrawlLog::new();
        log.queries_issued = run.queries_issued;
        log.downloads_attempted = run.downloads_attempted;
        log.downloads_failed = run.downloads_failed;
        summaries.push(summarize(run.network.label(), &log, &run.resolved));
    }
    println!("{}", summary_table(&summaries).to_markdown());
    println!(
        "diagnostics: LW {} sim events, {} downloads ({} failed); FT {} sim events, {} downloads ({} failed)\n",
        lw.sim_events, lw.downloads_attempted, lw.downloads_failed,
        ft.sim_events, ft.downloads_attempted, ft.downloads_failed,
    );

    let mut c = Comparison::new();
    c.push(Expectation::new(
        "T1-limewire",
        "% malicious among scanned downloadable responses (LimeWire)",
        68.0,
        8.0,
        summaries[0].malicious_pct,
    ));
    c.push(Expectation::new(
        "T1-openft",
        "% malicious among scanned downloadable responses (OpenFT)",
        3.0,
        2.5,
        summaries[1].malicious_pct,
    ));
    println!("{}", c.to_table().to_markdown());
    if !cfg.quick && !c.all_hold() {
        eprintln!("WARNING: paper-scale expectations out of band");
        std::process::exit(1);
    }
}
