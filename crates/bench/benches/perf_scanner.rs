//! Perf: signature scanning — Aho–Corasick multi-pattern matching vs the
//! naive per-signature scan it replaces (the ablation DESIGN.md calls
//! out), archive traversal cost, the first-byte prefilter ablation, and
//! the content-addressed verdict cache on a repeated-payload workload.
//!
//! `P2PMAL_PERF_SMOKE=1` cuts sample counts for the CI smoke run; the
//! numbers it prints are not publication-grade.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p2pmal_corpus::Roster;
use p2pmal_crawler::{HostKey, ResponseRecord, ScanPipeline, ScanService};
use p2pmal_netsim::SimTime;
use p2pmal_scanner::{AhoCorasick, ScanConfig, Scanner, Signature};
use std::hint::black_box;
use std::sync::Arc;

/// Sample count: 10 normally, 2 under `P2PMAL_PERF_SMOKE=1` (CI smoke).
fn samples() -> usize {
    if std::env::var("P2PMAL_PERF_SMOKE").is_ok() {
        2
    } else {
        10
    }
}

fn clean_sample(len: usize) -> Vec<u8> {
    // Deterministic pseudo-random bytes: no signature present.
    let mut v = Vec::with_capacity(len);
    let mut x = 0x12345678u64;
    while v.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(len);
    v
}

fn bench_scan(c: &mut Criterion) {
    let roster = Roster::limewire_2006();
    let scanner = Scanner::with_config(
        roster.signature_db().unwrap().build().unwrap(),
        ScanConfig::default(),
    );
    let sample = clean_sample(1 << 20);

    let mut g = c.benchmark_group("scanner");
    g.sample_size(samples());
    g.throughput(Throughput::Bytes(sample.len() as u64));
    g.bench_function("aho_corasick_1MiB_clean", |b| {
        b.iter(|| black_box(scanner.scan("sample.exe", black_box(&sample))));
    });

    // Naive comparison: scan with each signature independently.
    let sigs: Vec<Signature> = roster
        .families()
        .iter()
        .map(|f| Signature::parse(&f.name, &f.signature_hex()).unwrap())
        .collect();
    g.bench_function("naive_multi_pattern_1MiB_clean", |b| {
        b.iter(|| {
            let mut hits = 0;
            for s in &sigs {
                if s.matches(black_box(&sample)) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    // Infected content with archive traversal (zip family).
    let store = p2pmal_corpus::ContentStore::new(7);
    let catalog = {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        p2pmal_corpus::Catalog::generate(
            &p2pmal_corpus::catalog::CatalogConfig {
                titles: 10,
                ..Default::default()
            },
            &mut rng,
        )
    };
    let zip_family = roster
        .families()
        .iter()
        .find(|f| f.name == "W32.Bagle.DL")
        .unwrap();
    let payload = store.payload(
        p2pmal_corpus::ContentRef::Malware {
            family: zip_family.id,
            size_idx: 0,
        },
        &catalog,
        &roster,
    );
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("scan_infected_zip_with_traversal", |b| {
        b.iter(|| black_box(scanner.scan("pack.zip", black_box(&payload))));
    });
    g.finish();
}

fn bench_automaton_build(c: &mut Criterion) {
    let patterns: Vec<Vec<u8>> = (0..512u32)
        .map(|i| p2pmal_hashes::sha1(&i.to_le_bytes()).0[..16].to_vec())
        .collect();
    c.bench_function("aho_corasick_build_512_patterns", |b| {
        b.iter(|| black_box(AhoCorasick::new(black_box(patterns.clone()))));
    });
}

/// The first-byte prefilter ablation: the same roster automaton over the
/// same clean megabyte, with and without the skip loop.
fn bench_prefilter(c: &mut Criterion) {
    let roster = Roster::limewire_2006();
    let anchors: Vec<Vec<u8>> = roster
        .families()
        .iter()
        .map(|f| {
            Signature::parse(&f.name, &f.signature_hex()).unwrap().parts[0]
                .anchor
                .clone()
        })
        .collect();
    let ac = AhoCorasick::new(anchors);
    let sample = clean_sample(1 << 20);

    let mut g = c.benchmark_group("prefilter");
    g.sample_size(samples());
    g.throughput(Throughput::Bytes(sample.len() as u64));
    g.bench_function("find_each_1MiB_clean", |b| {
        b.iter(|| {
            let mut n = 0u32;
            ac.find_each(black_box(&sample), |_| {
                n += 1;
                true
            });
            black_box(n)
        });
    });
    g.bench_function("find_each_unfiltered_1MiB_clean", |b| {
        b.iter(|| {
            let mut n = 0u32;
            ac.find_each_unfiltered(black_box(&sample), |_| {
                n += 1;
                true
            });
            black_box(n)
        });
    });
    g.finish();
}

/// CRC32 slice-by-8 vs the bytewise reference it replaced.
fn bench_crc32(c: &mut Criterion) {
    let sample = clean_sample(1 << 20);
    let mut g = c.benchmark_group("crc32");
    g.sample_size(samples());
    g.throughput(Throughput::Bytes(sample.len() as u64));
    g.bench_function("slice8_1MiB", |b| {
        b.iter(|| black_box(p2pmal_archive::crc32(black_box(&sample))));
    });
    g.bench_function("bytewise_1MiB", |b| {
        b.iter(|| black_box(p2pmal_archive::crc32_bytewise(black_box(&sample))));
    });
    g.finish();
}

/// The verdict cache on a crawler-shaped workload: many downloads of few
/// distinct payloads (the study's reality — malware shares one body across
/// thousands of responses). Cached steady-state pays SHA-1 plus a map
/// lookup; uncached pays SHA-1 plus the full scan every time.
fn bench_verdict_cache(c: &mut Criterion) {
    let roster = Roster::limewire_2006();
    let store = p2pmal_corpus::ContentStore::new(7);
    let catalog = {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        p2pmal_corpus::Catalog::generate(
            &p2pmal_corpus::catalog::CatalogConfig {
                titles: 10,
                ..Default::default()
            },
            &mut rng,
        )
    };
    // Distinct bodies across the malware families (zip and exe echoes);
    // each body then repeats, as responses do in the crawl.
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    for f in roster.families() {
        bodies.push(store.payload(
            p2pmal_corpus::ContentRef::Malware {
                family: f.id,
                size_idx: 0,
            },
            &catalog,
            &roster,
        ));
    }
    // Plus the study's padded-installer shape: executables zero-padded to
    // match popular file sizes, shipped deflated. The pad compresses to
    // almost nothing, so the downloaded body is small but the scanner must
    // inflate and scan megabytes — the case where re-scanning duplicates
    // hurts most.
    for pad_key in [11u64, 12] {
        let mut inner = vec![0u8; 8 << 20];
        let head = 24 * 1024;
        let mut x = pad_key;
        for b in inner[..head].iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        inner[0] = b'M';
        inner[1] = b'Z';
        let mut w = p2pmal_archive::ZipWriter::new();
        w.add("setup.exe", &inner, p2pmal_archive::Method::Deflate);
        bodies.push(w.finish());
    }
    const REPEATS: usize = 8;
    let total_bytes: u64 = bodies.iter().map(|b| b.len() as u64).sum::<u64>() * REPEATS as u64;
    let make_scanner = || {
        Arc::new(Scanner::with_config(
            roster.signature_db().unwrap().build().unwrap(),
            ScanConfig::default(),
        ))
    };

    let mut g = c.benchmark_group("verdict_cache");
    g.sample_size(samples());
    g.throughput(Throughput::Bytes(total_bytes));
    let mut cached = ScanPipeline::new(make_scanner(), 4096);
    g.bench_function("repeated_payloads_cached", |b| {
        b.iter(|| {
            for _ in 0..REPEATS {
                for body in &bodies {
                    black_box(cached.scan("sample.zip", black_box(body)));
                }
            }
        });
    });
    let mut uncached = ScanPipeline::new(make_scanner(), 0);
    g.bench_function("repeated_payloads_uncached", |b| {
        b.iter(|| {
            for _ in 0..REPEATS {
                for body in &bodies {
                    black_box(uncached.scan("sample.zip", black_box(body)));
                }
            }
        });
    });
    g.finish();
    let s = cached.stats();
    println!(
        "verdict_cache: {} distinct bodies x {REPEATS} repeats/iter, steady-state hit rate {:.1}%",
        bodies.len(),
        s.hit_rate_pct(),
    );
}

/// The batched scan service against the inline sequential path, over
/// distinct clean megabyte bodies with the verdict cache disabled — every
/// body pays SHA-1 plus a full engine pass, the workload the service
/// parallelizes. `batched_1_thread` goes through the same submit/flush
/// machinery on the inline pool, isolating the batching overhead itself.
fn bench_scan_service(c: &mut Criterion) {
    let roster = Roster::limewire_2006();
    let make_scanner = || {
        Arc::new(Scanner::with_config(
            roster.signature_db().unwrap().build().unwrap(),
            ScanConfig::default(),
        ))
    };
    const BODIES: usize = 16;
    let bodies: Vec<Vec<u8>> = (0..BODIES)
        .map(|i| {
            let mut b = clean_sample(1 << 20);
            b[..8].copy_from_slice(&(i as u64).to_le_bytes());
            b
        })
        .collect();
    let record = |i: usize| ResponseRecord {
        at: SimTime::ZERO,
        day: 0,
        query: "q".into(),
        filename: format!("f{i}.exe"),
        size: 0,
        source_ip: std::net::Ipv4Addr::new(10, 0, 0, 1),
        source_port: 6346,
        needs_push: false,
        host: HostKey::Addr(std::net::Ipv4Addr::new(10, 0, 0, 1), 6346),
        downloadable: true,
    };
    let total_bytes: u64 = bodies.iter().map(|b| b.len() as u64).sum();

    let mut g = c.benchmark_group("scan_service");
    g.sample_size(samples());
    g.throughput(Throughput::Bytes(total_bytes));
    let mut inline = ScanPipeline::new(make_scanner(), 0);
    g.bench_function("sequential_inline", |b| {
        b.iter(|| {
            for (i, body) in bodies.iter().enumerate() {
                black_box(inline.scan(&format!("f{i}.exe"), black_box(body)));
            }
        });
    });
    for threads in [1usize, 4] {
        let mut pipeline = ScanPipeline::new(make_scanner(), 0);
        let mut service = ScanService::new(threads);
        let name = format!("batched_{threads}_thread");
        g.bench_function(name.as_str(), |b| {
            // Setup clones the bodies outside the timed section: the crawler
            // hands the service each downloaded body by value, so the copy
            // is a bench artifact, not part of the measured path.
            b.iter_batched(
                || bodies.clone(),
                |bs| {
                    for (i, body) in bs.into_iter().enumerate() {
                        service.submit(record(i), body, None);
                    }
                    black_box(service.flush(&mut pipeline).outcomes.len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scan,
    bench_automaton_build,
    bench_prefilter,
    bench_crc32,
    bench_verdict_cache,
    bench_scan_service
);
criterion_main!(benches);
