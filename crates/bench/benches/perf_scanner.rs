//! Perf: signature scanning — Aho–Corasick multi-pattern matching vs the
//! naive per-signature scan it replaces (the ablation DESIGN.md calls
//! out), plus archive traversal cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p2pmal_corpus::Roster;
use p2pmal_scanner::{AhoCorasick, ScanConfig, Scanner, Signature};
use std::hint::black_box;

fn clean_sample(len: usize) -> Vec<u8> {
    // Deterministic pseudo-random bytes: no signature present.
    let mut v = Vec::with_capacity(len);
    let mut x = 0x12345678u64;
    while v.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(len);
    v
}

fn bench_scan(c: &mut Criterion) {
    let roster = Roster::limewire_2006();
    let scanner = Scanner::with_config(
        roster.signature_db().unwrap().build().unwrap(),
        ScanConfig::default(),
    );
    let sample = clean_sample(1 << 20);

    let mut g = c.benchmark_group("scanner");
    g.throughput(Throughput::Bytes(sample.len() as u64));
    g.bench_function("aho_corasick_1MiB_clean", |b| {
        b.iter(|| black_box(scanner.scan("sample.exe", black_box(&sample))));
    });

    // Naive comparison: scan with each signature independently.
    let sigs: Vec<Signature> = roster
        .families()
        .iter()
        .map(|f| Signature::parse(&f.name, &f.signature_hex()).unwrap())
        .collect();
    g.bench_function("naive_multi_pattern_1MiB_clean", |b| {
        b.iter(|| {
            let mut hits = 0;
            for s in &sigs {
                if s.matches(black_box(&sample)) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    // Infected content with archive traversal (zip family).
    let store = p2pmal_corpus::ContentStore::new(7);
    let catalog = {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        p2pmal_corpus::Catalog::generate(
            &p2pmal_corpus::catalog::CatalogConfig {
                titles: 10,
                ..Default::default()
            },
            &mut rng,
        )
    };
    let zip_family = roster
        .families()
        .iter()
        .find(|f| f.name == "W32.Bagle.DL")
        .unwrap();
    let payload = store.payload(
        p2pmal_corpus::ContentRef::Malware {
            family: zip_family.id,
            size_idx: 0,
        },
        &catalog,
        &roster,
    );
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("scan_infected_zip_with_traversal", |b| {
        b.iter(|| black_box(scanner.scan("pack.zip", black_box(&payload))));
    });
    g.finish();
}

fn bench_automaton_build(c: &mut Criterion) {
    let patterns: Vec<Vec<u8>> = (0..512u32)
        .map(|i| p2pmal_hashes::sha1(&i.to_le_bytes()).0[..16].to_vec())
        .collect();
    c.bench_function("aho_corasick_build_512_patterns", |b| {
        b.iter(|| black_box(AhoCorasick::new(black_box(patterns.clone()))));
    });
}

criterion_group!(benches, bench_scan, bench_automaton_build);
criterion_main!(benches);
