//! T6 — Filter comparison on the LimeWire log.
//!
//! Paper claim (abstract): "current Limewire mechanisms detect only about
//! 6% of malware containing responses, our size based filtering would
//! detect over 99% of them" — at "a very low rate of false positives".

use p2pmal_analysis::{Comparison, Expectation, Table};
use p2pmal_bench::{banner, limewire_run, BenchConfig};
use p2pmal_filter::{
    evaluate, EchoHeuristicFilter, HashBlacklist, LimewireBuiltin, ResponseFilter, SizeFilter,
};

fn main() {
    let cfg = BenchConfig::from_env();
    banner("T6", "filter comparison (LimeWire log)");
    let lw = limewire_run(&cfg);
    let resolved = &lw.resolved;

    // The paper's recipe: most common sizes of the most popular malware.
    let size = SizeFilter::learn(resolved, 3, 2);
    println!(
        "size filter learned blocklist: {:?} (top 3 families, up to 2 sizes each)\n",
        size.blocked_sizes()
    );
    let builtin = LimewireBuiltin::new();
    let echo = EchoHeuristicFilter::new();
    let hash = HashBlacklist::learn(resolved);
    let filters: [&dyn ResponseFilter; 4] = [&builtin, &echo, &hash, &size];

    let mut t = Table::new(
        "T6 — Filter comparison (LimeWire log)",
        &[
            "filter",
            "detection",
            "false positives",
            "precision",
            "TP",
            "FN",
            "FP",
            "TN",
        ],
    );
    let mut builtin_det = 0.0;
    let mut size_det = 0.0;
    let mut size_fp = 0.0;
    for f in filters {
        let ev = evaluate(f, resolved);
        if ev.name == "LimeWire built-in" {
            builtin_det = ev.detection_pct();
        }
        if ev.name == "size-based" {
            size_det = ev.detection_pct();
            size_fp = ev.false_positive_pct();
        }
        t.row(vec![
            ev.name.clone(),
            format!("{:.2}%", ev.detection_pct()),
            format!("{:.3}%", ev.false_positive_pct()),
            format!("{:.2}%", 100.0 * ev.precision()),
            ev.tp.to_string(),
            ev.fn_.to_string(),
            ev.fp.to_string(),
            ev.tn.to_string(),
        ]);
    }
    println!("{}", t.to_markdown());

    let mut c = Comparison::new();
    c.push(Expectation::new(
        "T6-builtin",
        "LimeWire built-in detection rate",
        6.0,
        4.0,
        builtin_det,
    ));
    c.push(Expectation::new(
        "T6-size-detection",
        "size-based detection rate",
        99.0,
        1.5,
        size_det,
    ));
    c.push(Expectation::new(
        "T6-size-fp",
        "size-based false-positive rate",
        0.0,
        1.0,
        size_fp,
    ));
    println!("{}", c.to_table().to_markdown());
    if !cfg.quick && !c.all_hold() {
        eprintln!("WARNING: paper-scale expectations out of band");
        std::process::exit(1);
    }
}
