//! Perf: population setup throughput and steady-state memory.
//!
//! Mega-scale worlds live or die on two numbers this bench pins down:
//!
//! * **Setup throughput** — nodes spawned per second building an
//!   ultrapeer-backbone-plus-leaves world (shared `Arc` bootstrap lists,
//!   arena-backed libraries). This is where the old O(ultrapeers x leaves)
//!   bootstrap duplication used to bite.
//! * **Bytes per node** — the simulator's own deep-heap estimate right
//!   after setup and again after a bounded burst of simulated traffic
//!   (QRP tables exchanged, route tables warm).
//!
//! Numbers go to stdout; `P2PMAL_PERF_SMOKE=1` shrinks the population for
//! the CI smoke lane.

use criterion::{criterion_group, criterion_main, Criterion};
use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::{ContentStore, HostLibrary, Roster};
use p2pmal_gnutella::servent::{Servent, ServentConfig, SharedWorld};
use p2pmal_netsim::{HostAddr, NodeSpec, SimConfig, SimTime, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

fn world(seed: u64) -> SharedWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::generate(
        &CatalogConfig {
            titles: 500,
            ..Default::default()
        },
        &mut rng,
    );
    SharedWorld::new(
        Arc::new(catalog),
        Arc::new(Roster::limewire_2006()),
        Arc::new(ContentStore::new(seed)),
    )
}

/// Builds a `nodes`-host world (1 ultrapeer per 26 hosts, rest leaves with
/// small libraries) and returns the simulator, ready to run.
fn build_population(seed: u64, nodes: usize) -> Simulator {
    let w = world(seed);
    let mut sim = Simulator::new(SimConfig::default(), seed);
    let ups = (nodes / 26).max(1);
    let leaves = nodes.saturating_sub(ups);
    let slots =
        (leaves.saturating_mul(ServentConfig::leaf().target_degree) * 13 / 10 / ups).max(30);
    let mut up_addrs = Vec::with_capacity(ups);
    for _ in 0..ups {
        let mut cfg = ServentConfig::ultrapeer().with_bootstrap(up_addrs.clone());
        cfg.max_leaf_slots = slots;
        let id = sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, w.clone(), HostLibrary::new())),
        );
        up_addrs.push(sim.node_addr(id));
    }
    // One shared list for every leaf — the mega-population fast path.
    let boot: Arc<[HostAddr]> = up_addrs.into();
    for i in 0..leaves {
        let mut lib = HostLibrary::new();
        let item = w.catalog.item((i as u32 * 7) % w.catalog.len() as u32);
        lib.add_benign(item, 0);
        sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(
                ServentConfig::leaf().with_bootstrap(boot.clone()),
                w.clone(),
                lib,
            )),
        );
    }
    sim
}

/// Sample count: 10 normally, 2 under `P2PMAL_PERF_SMOKE=1` (CI smoke).
fn samples() -> usize {
    if std::env::var("P2PMAL_PERF_SMOKE").is_ok() {
        2
    } else {
        10
    }
}

fn population_size() -> usize {
    if std::env::var("P2PMAL_PERF_SMOKE").is_ok() {
        2_000
    } else {
        20_000
    }
}

fn bench_setup(c: &mut Criterion) {
    let nodes = population_size();
    let mut g = c.benchmark_group("population");
    g.sample_size(samples());
    let name = format!("setup_{nodes}");
    g.bench_function(&name, |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(build_population(seed, nodes).metrics().events_processed)
        });
    });
    g.finish();

    // Setup throughput and memory for the logs (EXPERIMENTS.md records
    // these).
    let t0 = std::time::Instant::now();
    let mut sim = build_population(42, nodes);
    let setup = t0.elapsed();
    sim.record_memory();
    let m0 = sim.metrics().memory;
    println!(
        "population setup: {nodes} nodes in {:.2}s = {:.0} nodes/s, {} bytes/node after setup",
        setup.as_secs_f64(),
        nodes as f64 / setup.as_secs_f64().max(1e-9),
        m0.bytes_per_node(),
    );

    // A bounded burst of simulated time: handshakes complete and leaves
    // upload their QRP tables, so per-connection route state is warm.
    let t1 = std::time::Instant::now();
    sim.run_until(SimTime::from_secs(600));
    sim.record_memory();
    let m1 = sim.metrics().memory;
    println!(
        "population steady: {} events in {:.2}s wall = {:.0} events/s, {} bytes/node warm",
        sim.metrics().events_processed,
        t1.elapsed().as_secs_f64(),
        sim.metrics().events_processed as f64 / t1.elapsed().as_secs_f64().max(1e-9),
        m1.bytes_per_node(),
    );
}

criterion_group!(benches, bench_setup);
criterion_main!(benches);
