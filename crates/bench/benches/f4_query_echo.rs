//! F4 — Query-echo amplification: why malicious responses dominate.
//!
//! An infected echo host answers (nearly) every query it sees; a clean
//! host answers only queries matching its library. This asymmetry is the
//! mechanism behind the 68% headline number; this figure measures it.

use p2pmal_analysis::{echo_amplification, Comparison, Expectation, Table};
use p2pmal_bench::{banner, limewire_run, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    banner("F4", "query-echo amplification (LimeWire)");
    let lw = limewire_run(&cfg);
    let amp = echo_amplification(&lw.resolved);

    let mut t = Table::new(
        "F4 — Distinct queries answered per host",
        &["host class", "hosts", "mean distinct queries answered"],
    );
    t.row(vec![
        "serving malware".into(),
        amp.malicious_hosts.to_string(),
        format!("{:.1}", amp.malicious_host_queries),
    ]);
    t.row(vec![
        "clean".into(),
        amp.clean_hosts.to_string(),
        format!("{:.1}", amp.clean_host_queries),
    ]);
    println!("{}", t.to_markdown());

    let ratio = if amp.clean_host_queries > 0.0 {
        amp.malicious_host_queries / amp.clean_host_queries
    } else {
        f64::INFINITY
    };
    println!("amplification ratio: {ratio:.1}x\n");

    let mut c = Comparison::new();
    c.push(Expectation::new(
        "F4-amplification",
        "log10 of (queries answered per infected host / per clean host)",
        2.0, // echo worms answer ~100x more distinct queries
        1.5,
        ratio.log10(),
    ));
    println!("{}", c.to_table().to_markdown());
    if !cfg.quick && !c.all_hold() {
        eprintln!("WARNING: paper-scale expectations out of band");
        std::process::exit(1);
    }
}
