//! Perf: per-response filter decision cost — the size filter must be cheap
//! enough to run on every query hit a servent displays.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p2pmal_crawler::log::{HostKey, ResponseRecord};
use p2pmal_crawler::ResolvedResponse;
use p2pmal_filter::{EchoHeuristicFilter, LimewireBuiltin, ResponseFilter, SizeFilter};
use p2pmal_netsim::SimTime;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn responses(n: usize) -> Vec<ResolvedResponse> {
    (0..n)
        .map(|i| ResolvedResponse {
            record: ResponseRecord {
                at: SimTime::ZERO,
                day: 0,
                query: format!("query number {i}"),
                filename: format!("query_number_{i}.exe"),
                size: 50_000 + (i as u64 % 64) * 1024,
                source_ip: Ipv4Addr::new(10, 0, 0, 1),
                source_port: 6346,
                needs_push: false,
                host: HostKey::Guid([i as u8; 16]),
                downloadable: true,
            },
            malware: None,
            scanned: true,
            sha1: None,
        })
        .collect()
}

fn bench_filters(c: &mut Criterion) {
    let rs = responses(10_000);
    let size = SizeFilter::from_sizes([58_368u64, 92_672, 178_176, 180_224]);
    let size_tol =
        SizeFilter::from_sizes([58_368u64, 92_672, 178_176, 180_224]).with_tolerance(1024);
    let builtin = LimewireBuiltin::new();
    let echo = EchoHeuristicFilter::new();

    let mut g = c.benchmark_group("filter_10k_responses");
    g.throughput(Throughput::Elements(rs.len() as u64));
    for (name, f) in [
        ("size_exact", &size as &dyn ResponseFilter),
        ("size_tolerant", &size_tol),
        ("limewire_builtin", &builtin),
        ("echo_heuristic", &echo),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut blocked = 0u64;
                for r in &rs {
                    if f.blocks(black_box(r)) {
                        blocked += 1;
                    }
                }
                black_box(blocked)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
