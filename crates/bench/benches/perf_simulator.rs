//! Perf: discrete-event simulator throughput — events/second on a small
//! Gnutella overlay under query load, with QRP on vs off at the last hop
//! (the protocol ablation DESIGN.md calls out: QRP's whole point is
//! sparing leaves non-matching traffic).

use criterion::{criterion_group, criterion_main, Criterion};
use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::{ContentStore, HostLibrary, Roster};
use p2pmal_gnutella::servent::{Servent, ServentConfig, SharedWorld};
use p2pmal_netsim::{NodeSpec, SimConfig, SimTime, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

fn world(seed: u64) -> SharedWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog =
        Catalog::generate(&CatalogConfig { titles: 200, ..Default::default() }, &mut rng);
    SharedWorld::new(
        Arc::new(catalog),
        Arc::new(Roster::limewire_2006()),
        Arc::new(ContentStore::new(seed)),
    )
}

/// Builds a 3-ultrapeer, 12-leaf overlay with ambient query load and runs
/// it for `sim_secs` of virtual time; returns events processed.
fn run_overlay(seed: u64, sim_secs: u64) -> u64 {
    let w = world(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 9);
    let mut sim = Simulator::new(SimConfig::default(), seed);
    let mut ups = Vec::new();
    for _ in 0..3 {
        let cfg = ServentConfig::ultrapeer().with_bootstrap(ups.clone());
        let id = sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, w.clone(), HostLibrary::new())),
        );
        ups.push(sim.node_addr(id));
    }
    for i in 0..12 {
        let mut lib = HostLibrary::new();
        let item = w.catalog.item((i * 7) % w.catalog.len() as u32);
        lib.add_benign(item, 0);
        let mut cfg = ServentConfig::leaf().with_bootstrap(ups.clone());
        cfg.auto_query = Some(p2pmal_netsim::SimDuration::from_secs(20));
        let _ = &mut rng;
        sim.spawn(NodeSpec::public().listen(6346), Box::new(Servent::new(cfg, w.clone(), lib)));
    }
    sim.run_until(SimTime::from_secs(sim_secs));
    sim.metrics().events_processed
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("overlay_3up_12leaf_600s_sim", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_overlay(seed, 600))
        });
    });
    g.finish();

    // Report the event rate once for the logs.
    let t0 = std::time::Instant::now();
    let events = run_overlay(99, 1200);
    let rate = events as f64 / t0.elapsed().as_secs_f64();
    println!("simulator: {events} events in {:.2}s wall = {:.0} events/s", t0.elapsed().as_secs_f64(), rate);
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
