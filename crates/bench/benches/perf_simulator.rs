//! Perf: discrete-event simulator throughput.
//!
//! Two measurements:
//!
//! * **Scheduler head-to-head** — the bucketed calendar queue vs the
//!   original `(time, seq)` binary heap on the classic *hold model*
//!   (pre-fill to a working depth, then pop one / push one at a jittered
//!   future time), the access pattern a running simulation produces. This
//!   isolates the scheduler itself; events/second for both go to stdout.
//! * **Whole-simulation overlay** — a small Gnutella overlay under query
//!   load, run once per scheduler, so the end-to-end effect (scheduler +
//!   pooled payload buffers) is visible in events/second.

use criterion::{criterion_group, criterion_main, Criterion};
use p2pmal_core::LimewireScenario;
use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::{ContentStore, HostLibrary, Roster};
use p2pmal_gnutella::servent::{Servent, ServentConfig, SharedWorld};
use p2pmal_netsim::queue::{CalendarQueue, HeapQueue, Scheduler};
use p2pmal_netsim::{NodeSpec, SchedulerKind, SimConfig, SimTime, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn world(seed: u64) -> SharedWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::generate(
        &CatalogConfig {
            titles: 200,
            ..Default::default()
        },
        &mut rng,
    );
    SharedWorld::new(
        Arc::new(catalog),
        Arc::new(Roster::limewire_2006()),
        Arc::new(ContentStore::new(seed)),
    )
}

/// Hold model: `depth` events resident, `ops` pop+push rounds with
/// deliveries jittered up to ~2 simulated seconds ahead (plus rare
/// far-future timers that exercise the calendar's overflow heap).
fn hold_model<S: Scheduler<u64>>(q: &mut S, depth: usize, ops: usize) -> u64 {
    let mut rng = StdRng::seed_from_u64(0x401D);
    let mut now = 0u64;
    for i in 0..depth {
        q.push(
            SimTime::from_micros(rng.gen_range(0..2_000_000u64)),
            i as u64,
        );
    }
    let mut acc = 0u64;
    for i in 0..ops {
        let (t, id) = q.pop().expect("hold model never drains");
        now = now.max(t.as_micros());
        acc = acc.wrapping_add(id);
        let ahead = if rng.gen_bool(0.001) {
            rng.gen_range(150_000_000..600_000_000u64) // far-future timer
        } else {
            rng.gen_range(1..2_000_000u64)
        };
        q.push(SimTime::from_micros(now + ahead), i as u64);
    }
    acc
}

/// Builds a 3-ultrapeer, 12-leaf overlay with ambient query load and runs
/// it for `sim_secs` of virtual time; returns events processed.
fn run_overlay(seed: u64, sim_secs: u64, scheduler: SchedulerKind) -> u64 {
    let w = world(seed);
    let mut sim = Simulator::new(
        SimConfig {
            scheduler,
            ..SimConfig::default()
        },
        seed,
    );
    let mut ups = Vec::new();
    for _ in 0..3 {
        let cfg = ServentConfig::ultrapeer().with_bootstrap(ups.clone());
        let id = sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, w.clone(), HostLibrary::new())),
        );
        ups.push(sim.node_addr(id));
    }
    for i in 0..12 {
        let mut lib = HostLibrary::new();
        let item = w.catalog.item((i * 7) % w.catalog.len() as u32);
        lib.add_benign(item, 0);
        let mut cfg = ServentConfig::leaf().with_bootstrap(ups.clone());
        cfg.auto_query = Some(p2pmal_netsim::SimDuration::from_secs(20));
        sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Servent::new(cfg, w.clone(), lib)),
        );
    }
    sim.run_until(SimTime::from_secs(sim_secs));
    sim.metrics().events_processed
}

/// One simulated day of the quick LimeWire study scenario under the given
/// scheduler; returns events processed.
fn run_quick_scenario(seed: u64, scheduler: SchedulerKind) -> u64 {
    let mut sc = LimewireScenario::quick(seed);
    sc.days = 1;
    sc.scheduler = scheduler;
    sc.shards = 1;
    sc.run().sim_metrics.events_processed
}

/// One simulated day of the quick LimeWire study under `shards` simulation
/// shards (1 = serial reference engine); returns events processed.
fn run_sharded_scenario(seed: u64, shards: usize) -> u64 {
    let mut sc = LimewireScenario::quick(seed);
    sc.days = 1;
    sc.shards = shards;
    sc.run().sim_metrics.events_processed
}

/// Sample count: 10 normally, 2 under `P2PMAL_PERF_SMOKE=1` (CI smoke).
fn samples() -> usize {
    if std::env::var("P2PMAL_PERF_SMOKE").is_ok() {
        2
    } else {
        10
    }
}

const HOLD_DEPTH: usize = 100_000;
const HOLD_OPS: usize = 200_000;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(samples());
    g.bench_function(&format!("heap_hold_{HOLD_DEPTH}"), |b| {
        b.iter(|| {
            let mut q = HeapQueue::default();
            black_box(hold_model(&mut q, HOLD_DEPTH, HOLD_OPS))
        });
    });
    g.bench_function(&format!("calendar_hold_{HOLD_DEPTH}"), |b| {
        b.iter(|| {
            let mut q = CalendarQueue::default();
            black_box(hold_model(&mut q, HOLD_DEPTH, HOLD_OPS))
        });
    });
    g.finish();

    // Head-to-head events/second for the logs (EXPERIMENTS.md records
    // these): same workload, scheduler is the only variable.
    let rate = |f: &dyn Fn() -> u64| {
        let t0 = std::time::Instant::now();
        let mut reps = 0u32;
        while reps < 3 || t0.elapsed().as_millis() < 300 {
            black_box(f());
            reps += 1;
        }
        (reps as u64 * (HOLD_DEPTH + HOLD_OPS) as u64) as f64 / t0.elapsed().as_secs_f64()
    };
    let heap = rate(&|| hold_model(&mut HeapQueue::default(), HOLD_DEPTH, HOLD_OPS));
    let cal = rate(&|| hold_model(&mut CalendarQueue::default(), HOLD_DEPTH, HOLD_OPS));
    println!(
        "scheduler hold({HOLD_DEPTH}): heap {:.0} events/s, calendar {:.0} events/s ({:.2}x)",
        heap,
        cal,
        cal / heap
    );
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(samples());
    for (label, kind) in [
        ("overlay_600s_heap", SchedulerKind::Heap),
        ("overlay_600s_calendar", SchedulerKind::Calendar),
    ] {
        g.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_overlay(seed, 600, kind))
            });
        });
    }
    g.finish();

    // Report the end-to-end event rates once for the logs.
    for (label, kind) in [
        ("heap", SchedulerKind::Heap),
        ("calendar", SchedulerKind::Calendar),
    ] {
        let t0 = std::time::Instant::now();
        let mut events = 0u64;
        for rep in 0..20 {
            events += run_overlay(99 + rep, 1200, kind);
        }
        let rate = events as f64 / t0.elapsed().as_secs_f64();
        println!(
            "simulator[{label}]: {events} events in {:.2}s wall = {:.0} events/s",
            t0.elapsed().as_secs_f64(),
            rate
        );
    }
}

fn bench_quick_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("quick_scenario");
    g.sample_size(samples());
    for (label, kind) in [
        ("limewire_1day_heap", SchedulerKind::Heap),
        ("limewire_1day_calendar", SchedulerKind::Calendar),
    ] {
        g.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_quick_scenario(seed, kind))
            });
        });
    }
    g.finish();

    for (label, kind) in [
        ("heap", SchedulerKind::Heap),
        ("calendar", SchedulerKind::Calendar),
    ] {
        let t0 = std::time::Instant::now();
        let mut events = 0u64;
        for rep in 0..4 {
            events += run_quick_scenario(7 + rep, kind);
        }
        println!(
            "quick_scenario[{label}]: {events} events in {:.2}s wall = {:.0} events/s",
            t0.elapsed().as_secs_f64(),
            events as f64 / t0.elapsed().as_secs_f64()
        );
    }
}

/// Shard scaling: the serial engine vs the parallel sharded engine on the
/// same quick scenario. The two trajectories are deliberately distinct
/// (see `p2pmal_netsim`'s sharding docs), so events/second — not event
/// counts — is the comparable number.
fn bench_shard_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_scaling");
    g.sample_size(samples());
    for (label, shards) in [
        ("limewire_1day_shards1", 1usize),
        ("limewire_1day_shards4", 4),
    ] {
        g.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_sharded_scenario(seed, shards))
            });
        });
    }
    g.finish();

    for (label, shards) in [("shards=1", 1usize), ("shards=4", 4)] {
        let t0 = std::time::Instant::now();
        let mut events = 0u64;
        for rep in 0..4 {
            events += run_sharded_scenario(7 + rep, shards);
        }
        println!(
            "shard_scaling[{label}]: {events} events in {:.2}s wall = {:.0} events/s",
            t0.elapsed().as_secs_f64(),
            events as f64 / t0.elapsed().as_secs_f64()
        );
    }
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_sim,
    bench_quick_scenario,
    bench_shard_scaling
);
criterion_main!(benches);
