//! Perf: from-scratch SHA-1 and MD5 throughput (content addressing is on
//! the hot path of every download the crawler makes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p2pmal_hashes::{md5, sha1};
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    for size in [4 * 1024usize, 1 << 20] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
        let mut g = c.benchmark_group(format!("hashes_{}KiB", size / 1024));
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function("sha1", |b| b.iter(|| black_box(sha1(black_box(&data)))));
        g.bench_function("md5", |b| b.iter(|| black_box(md5(black_box(&data)))));
        g.finish();
    }
}

criterion_group!(benches, bench_hashes);
criterion_main!(benches);
