//! Perf: query matching — the tokenize-once + fingerprint fast-reject
//! pipeline vs the reference per-hop implementation it replaced
//! (re-tokenize the query, lowercase every filename, substring-scan every
//! term against every file).
//!
//! Two workloads:
//!
//! * **dense library** — one large share library against a query stream
//!   that mostly misses: the worst case the overlay hits when a query
//!   floods an ultrapeer's populated leaves, and the case the fingerprint
//!   reject is built for.
//! * **zipf catalog** — libraries and queries sampled from the same Zipf
//!   catalog the scenarios use, so hit rates and name shapes match the
//!   actual study workload.
//!
//! `P2PMAL_PERF_SMOKE=1` cuts sample counts for the CI smoke run; the
//! numbers it prints are not publication-grade.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p2pmal_corpus::catalog::{Catalog, CatalogConfig};
use p2pmal_corpus::library::{name_matches, query_terms};
use p2pmal_corpus::{CompiledQuery, HostLibrary, QueryCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Sample count: 10 normally, 2 under `P2PMAL_PERF_SMOKE=1` (CI smoke).
fn samples() -> usize {
    if std::env::var("P2PMAL_PERF_SMOKE").is_ok() {
        2
    } else {
        10
    }
}

/// The pre-overhaul match loop, kept verbatim as the comparison baseline:
/// tokenize the query at this hop, then lowercase-and-scan every file.
fn respond_reference(lib: &HostLibrary, query: &str, max: usize) -> usize {
    let terms = query_terms(query);
    if terms.is_empty() {
        return 0;
    }
    let mut hits = 0;
    for f in lib.files() {
        if name_matches(&f.name, &terms) {
            hits += 1;
            if hits >= max {
                break;
            }
        }
    }
    hits
}

fn catalog(titles: usize) -> Catalog {
    let mut rng = StdRng::seed_from_u64(42);
    Catalog::generate(
        &CatalogConfig {
            titles,
            ..Default::default()
        },
        &mut rng,
    )
}

fn library_from(catalog: &Catalog, files: usize, rng: &mut StdRng) -> HostLibrary {
    let mut lib = HostLibrary::new();
    let mut i = 0;
    while lib.len() < files && i < files * 10 {
        i += 1;
        let item = catalog.sample(rng);
        let variant = rng.gen_range(0..item.variants.len());
        lib.add_benign(item, variant);
    }
    lib
}

/// Dense worst case: one 1024-file library, 256 distinct queries that are
/// mostly misses (random keyword pairs drawn across the whole catalog).
fn bench_dense(c: &mut Criterion) {
    let cat = catalog(4000);
    let mut rng = StdRng::seed_from_u64(7);
    let lib = library_from(&cat, 1024, &mut rng);
    let queries: Vec<String> = (0..256)
        .map(|_| {
            let a = cat.sample_uniform(&mut rng).keywords[0].clone();
            let b = cat.sample_uniform(&mut rng).keywords[0].clone();
            format!("{a} {b}")
        })
        .collect();
    let work = (lib.len() * queries.len()) as u64;

    let mut g = c.benchmark_group("query_match_dense");
    g.sample_size(samples());
    g.throughput(Throughput::Elements(work));
    g.bench_function("reference_retokenize", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += respond_reference(black_box(&lib), black_box(q), 64);
            }
            black_box(total)
        });
    });
    g.bench_function("compiled_fingerprint", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                let compiled = CompiledQuery::compile(black_box(q));
                total += lib.respond_compiled(&compiled, 64).len();
            }
            black_box(total)
        });
    });
    // The overlay shape: the same query text visits many libraries, so the
    // per-world cache amortizes even the one compile away.
    g.bench_function("cached_compiled_fingerprint", |b| {
        let cache = QueryCache::new();
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                let compiled = cache.compile(black_box(q));
                total += lib.respond_compiled(&compiled, 64).len();
            }
            black_box(total)
        });
    });
    g.finish();
}

/// Study-shaped workload: a population of scenario-sized libraries and a
/// Zipf query stream, i.e. the mix of hits and misses the simulator sees.
fn bench_zipf(c: &mut Criterion) {
    let cat = catalog(2500);
    let mut rng = StdRng::seed_from_u64(11);
    let libs: Vec<HostLibrary> = (0..64).map(|_| library_from(&cat, 34, &mut rng)).collect();
    let queries: Vec<String> = (0..512)
        .map(|_| {
            let item = cat.sample(&mut rng);
            item.keywords.join(" ")
        })
        .collect();
    let work = (libs.iter().map(HostLibrary::len).sum::<usize>() * queries.len()) as u64;

    let mut g = c.benchmark_group("query_match_zipf");
    g.sample_size(samples());
    g.throughput(Throughput::Elements(work));
    g.bench_function("reference_retokenize", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                for lib in &libs {
                    total += respond_reference(black_box(lib), black_box(q), 64);
                }
            }
            black_box(total)
        });
    });
    g.bench_function("cached_compiled_fingerprint", |b| {
        let cache = QueryCache::new();
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                let compiled = cache.compile(black_box(q));
                for lib in &libs {
                    total += lib.respond_compiled(&compiled, 64).len();
                }
            }
            black_box(total)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_dense, bench_zipf);
criterion_main!(benches);
