//! Perf: DEFLATE (fixed-Huffman writer + inflater) and ZIP round trips.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p2pmal_archive::{deflate, inflate, Method, ZipArchive, ZipWriter};
use std::hint::black_box;

fn compressible(len: usize) -> Vec<u8> {
    // Text-like content: compresses well, exercises the match finder.
    let phrase = b"the quick brown fox jumps over the lazy dog and keeps running ";
    phrase.iter().cycle().take(len).copied().collect()
}

fn bench_deflate(c: &mut Criterion) {
    let data = compressible(256 * 1024);
    let compressed = deflate(&data);

    let mut g = c.benchmark_group("deflate");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_256KiB_text", |b| {
        b.iter(|| black_box(deflate(black_box(&data))));
    });
    g.bench_function("inflate_256KiB_text", |b| {
        b.iter(|| black_box(inflate(black_box(&compressed), data.len() + 64).unwrap()));
    });
    g.finish();
}

fn bench_zip(c: &mut Criterion) {
    let member = compressible(64 * 1024);
    let mut w = ZipWriter::new();
    w.add("a.txt", &member, Method::Deflate);
    w.add("b.bin", &member, Method::Stored);
    let archive = w.finish();

    let mut g = c.benchmark_group("zip");
    g.throughput(Throughput::Bytes(archive.len() as u64));
    g.bench_function("parse_and_extract_two_members", |b| {
        b.iter(|| {
            let z = ZipArchive::parse(black_box(&archive)).unwrap();
            let a = z.read(0).unwrap();
            let b2 = z.read(1).unwrap();
            black_box((a.len(), b2.len()))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_deflate, bench_zip);
criterion_main!(benches);
