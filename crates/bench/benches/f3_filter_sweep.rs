//! F3 — Ablation: size-filter detection and false positives as a function
//! of how many top sizes are blocked, plus the exact-vs-tolerant matching
//! trade-off. Train on the first half of the collection period, test on
//! the second (deployment-honest).

use p2pmal_analysis::Table;
use p2pmal_bench::{banner, limewire_run, BenchConfig};
use p2pmal_filter::sweep::{size_filter_sweep, split_by_day, tolerance_ablation};

fn main() {
    let cfg = BenchConfig::from_env();
    banner("F3", "size-filter parameter sweep (LimeWire)");
    let lw = limewire_run(&cfg);
    let split = lw.days / 2;
    let (train, test) = split_by_day(&lw.resolved, split);
    println!(
        "train: days 0..{split} ({} responses); test: days {split}.. ({} responses)\n",
        train.len(),
        test.len()
    );

    let ks = [0usize, 1, 2, 3, 4, 6, 8, 12, 16, 32];
    let points = size_filter_sweep(&train, &test, &ks);
    let mut t = Table::new(
        "F3 — Detection vs number of blocked sizes k",
        &["k", "blocked sizes", "detection", "false positives"],
    );
    for p in &points {
        t.row(vec![
            p.k.to_string(),
            format!("{:?}", p.blocked_sizes),
            format!("{:.2}%", p.eval.detection_pct()),
            format!("{:.3}%", p.eval.false_positive_pct()),
        ]);
    }
    println!("{}", t.to_markdown());

    let mut t = Table::new(
        "F3b — Tolerance ablation at k=4",
        &["tolerance (bytes)", "detection", "false positives"],
    );
    for (tol, ev) in tolerance_ablation(&train, &test, 4, &[0, 512, 1024, 4096, 16384]) {
        t.row(vec![
            tol.to_string(),
            format!("{:.2}%", ev.detection_pct()),
            format!("{:.3}%", ev.false_positive_pct()),
        ]);
    }
    println!("{}", t.to_markdown());

    // Shape check: detection saturates above 99% within a handful of sizes.
    let k_at_99 = points
        .iter()
        .find(|p| p.eval.detection_pct() > 99.0)
        .map(|p| p.k);
    match k_at_99 {
        Some(k) => println!("detection exceeds 99% at k = {k} blocked sizes"),
        None => {
            println!("detection never exceeded 99% in the sweep");
            if !cfg.quick {
                std::process::exit(1);
            }
        }
    }
}
