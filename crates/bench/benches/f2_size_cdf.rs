//! F2 — Size diversity: distinct advertised sizes per malware family vs
//! per benign filename.
//!
//! Paper provenance: the filtering insight assumes "the most commonly seen
//! sizes of the most popular malware" are few — this figure measures that
//! premise directly.

use p2pmal_analysis::{size_census, size_table, Comparison, Expectation};
use p2pmal_bench::{banner, limewire_run, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    banner("F2", "characteristic-size census (LimeWire)");
    let lw = limewire_run(&cfg);
    let census = size_census(&lw.resolved);
    println!("{}", size_table("LimeWire", &census).to_markdown());

    println!("CDF of distinct-size counts per malware family:");
    for (v, f) in &census.malware_cdf {
        println!("  <= {v} sizes: {:.0}%", f * 100.0);
    }
    let benign_multi = census
        .benign_distinct_counts
        .iter()
        .filter(|&&c| c > 1)
        .count();
    println!(
        "\nbenign downloadable names observed: {} ({} with more than one size)\n",
        census.benign_distinct_counts.len(),
        benign_multi
    );

    let max_sizes = census
        .malware_sizes
        .values()
        .map(|v| v.len() as u64)
        .max()
        .unwrap_or(0);
    let mut c = Comparison::new();
    c.push(Expectation::new(
        "F2-few-sizes",
        "max distinct sizes observed for any malware family",
        2.0,
        1.0,
        max_sizes as f64,
    ));
    println!("{}", c.to_table().to_markdown());
    if !cfg.quick && !c.all_hold() {
        eprintln!("WARNING: paper-scale expectations out of band");
        std::process::exit(1);
    }
}
