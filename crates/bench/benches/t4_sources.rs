//! T4 — Sources of malicious responses by advertised address class.
//!
//! Paper claim (abstract): "28% of all malicious responses in Limewire
//! come from private address ranges." The mechanism: Gnutella servents
//! embed their locally-configured IP in QUERYHIT payloads, so NATed
//! infected hosts advertise RFC 1918 addresses.

use p2pmal_analysis::{source_breakdown, source_table, Comparison, Expectation};
use p2pmal_bench::{banner, limewire_run, openft_run, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    banner("T4", "sources of malicious responses");
    let lw = limewire_run(&cfg);
    let ft = openft_run(&cfg);

    let lw_sources = source_breakdown(&lw.resolved);
    println!("{}", source_table("LimeWire", &lw_sources).to_markdown());
    let ft_sources = source_breakdown(&ft.resolved);
    println!("{}", source_table("OpenFT", &ft_sources).to_markdown());

    let mut c = Comparison::new();
    c.push(Expectation::new(
        "T4-limewire-private",
        "% of malicious LimeWire responses advertising private addresses",
        28.0,
        8.0,
        lw_sources.private_pct,
    ));
    println!("{}", c.to_table().to_markdown());
    if !cfg.quick && !c.all_hold() {
        eprintln!("WARNING: paper-scale expectations out of band");
        std::process::exit(1);
    }
}
