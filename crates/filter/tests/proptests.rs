//! Property tests on the filters' invariants.

use p2pmal_crawler::log::{HostKey, ResponseRecord};
use p2pmal_crawler::ResolvedResponse;
use p2pmal_filter::{evaluate, SizeFilter};
use p2pmal_netsim::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn resp(name: &str, size: u64, malware: bool) -> ResolvedResponse {
    ResolvedResponse {
        record: ResponseRecord {
            at: SimTime::ZERO,
            day: 0,
            query: "q".into(),
            filename: name.into(),
            size,
            source_ip: Ipv4Addr::new(1, 1, 1, 1),
            source_port: 1,
            needs_push: false,
            host: HostKey::Guid([0; 16]),
            downloadable: p2pmal_crawler::is_downloadable_name(name),
        },
        malware: malware.then(|| "W32.X".to_string()),
        scanned: true,
        sha1: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tolerant matching agrees with the naive O(n) definition.
    #[test]
    fn tolerance_matches_naive(
        blocked in proptest::collection::btree_set(0u64..100_000, 0..20),
        tolerance in 0u64..5000,
        probe in 0u64..110_000,
    ) {
        let filter = SizeFilter::from_sizes(blocked.iter().copied()).with_tolerance(tolerance);
        let naive = blocked.iter().any(|&b| probe.abs_diff(b) <= tolerance);
        prop_assert_eq!(filter.blocks_size(probe), naive);
    }

    /// Evaluation conserves the universe: TP+FN+FP+TN equals the number of
    /// scanned downloadable responses, and rates stay in [0, 1].
    #[test]
    fn eval_conserves_counts(rows in proptest::collection::vec((0u64..5000, any::<bool>(), any::<bool>()), 0..100)) {
        let responses: Vec<ResolvedResponse> = rows
            .iter()
            .map(|&(size, malware, exe)| resp(if exe { "f.exe" } else { "f.mp3" }, size, malware))
            .collect();
        let filter = SizeFilter::from_sizes([100, 2000, 4000]);
        let ev = evaluate(&filter, &responses);
        let universe = responses.iter().filter(|r| r.record.downloadable).count() as u64;
        prop_assert_eq!(ev.tp + ev.fn_ + ev.fp + ev.tn, universe);
        for rate in [ev.detection_rate(), ev.false_positive_rate(), ev.precision()] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    /// A learned filter always blocks the most common size of the most
    /// popular family in its own training data (k >= 1).
    #[test]
    fn learn_blocks_dominant_size(extra in proptest::collection::vec((0u64..9000, any::<bool>()), 0..40)) {
        let mut train: Vec<ResolvedResponse> =
            (0..50).map(|_| resp("worm.exe", 12_345, true)).collect();
        train.extend(extra.iter().map(|&(size, malware)| resp("other.exe", size, malware)));
        let f = SizeFilter::learn(&train, 1, 1);
        // 12,345 appears 50 times for the dominant family; no other single
        // (family,size) pair can beat it (extras are spread or few).
        prop_assert!(f.blocks_size(12_345) || extra.len() >= 50);
    }

    /// Widening the blocklist never reduces detection.
    #[test]
    fn more_sizes_never_hurt_detection(sizes in proptest::collection::vec(0u64..10_000, 1..12)) {
        let universe: Vec<ResolvedResponse> =
            sizes.iter().map(|&s| resp("m.exe", s, true)).collect();
        let mut det = Vec::new();
        for k in 0..=sizes.len() {
            let f = SizeFilter::from_sizes(sizes[..k].iter().copied());
            det.push(evaluate(&f, &universe).detection_rate());
        }
        for w in det.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }
}
