//! Filter evaluation: confusion matrices over ground-truth-labelled
//! responses.
//!
//! The evaluation universe is the paper's: downloadable responses whose
//! content received a scan verdict (so ground truth is known). Detection
//! rate is TP / (TP + FN) over malware-containing responses; the
//! false-positive rate is FP / (FP + TN) over clean ones.

use crate::ResponseFilter;
use p2pmal_crawler::ResolvedResponse;

/// A filter's confusion matrix and derived rates.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterEval {
    pub name: String,
    /// Malicious responses blocked.
    pub tp: u64,
    /// Malicious responses passed.
    pub fn_: u64,
    /// Clean responses blocked.
    pub fp: u64,
    /// Clean responses passed.
    pub tn: u64,
}

impl FilterEval {
    /// TP / (TP + FN): fraction of malware-containing responses detected.
    pub fn detection_rate(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// FP / (FP + TN): fraction of clean responses wrongly blocked.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Detection rate as a percentage.
    pub fn detection_pct(&self) -> f64 {
        100.0 * self.detection_rate()
    }

    /// FP rate as a percentage.
    pub fn false_positive_pct(&self) -> f64 {
        100.0 * self.false_positive_rate()
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Evaluates one filter over the scanned downloadable responses.
pub fn evaluate(filter: &dyn ResponseFilter, responses: &[ResolvedResponse]) -> FilterEval {
    let mut ev = FilterEval {
        name: filter.name().to_string(),
        tp: 0,
        fn_: 0,
        fp: 0,
        tn: 0,
    };
    for r in responses {
        if !r.record.downloadable || !r.scanned {
            continue;
        }
        let blocked = filter.blocks(r);
        match (r.malware.is_some(), blocked) {
            (true, true) => ev.tp += 1,
            (true, false) => ev.fn_ += 1,
            (false, true) => ev.fp += 1,
            (false, false) => ev.tn += 1,
        }
    }
    ev
}

/// Evaluates a panel of filters over the same responses.
pub fn evaluate_all(
    filters: &[&dyn ResponseFilter],
    responses: &[ResolvedResponse],
) -> Vec<FilterEval> {
    filters.iter().map(|f| evaluate(*f, responses)).collect()
}

/// Shared constructors for filter tests.
#[cfg(test)]
pub mod test_support {
    use p2pmal_crawler::log::{HostKey, ResponseRecord};
    use p2pmal_crawler::ResolvedResponse;
    use p2pmal_hashes::Sha1Digest;
    use p2pmal_netsim::SimTime;
    use std::net::Ipv4Addr;

    pub fn resp(query: &str, name: &str, size: u64, malware: Option<&str>) -> ResolvedResponse {
        resp_with_sha1(
            query,
            name,
            size,
            malware,
            Some(p2pmal_hashes::sha1(name.as_bytes())),
        )
    }

    pub fn resp_with_sha1(
        query: &str,
        name: &str,
        size: u64,
        malware: Option<&str>,
        sha1: Option<Sha1Digest>,
    ) -> ResolvedResponse {
        ResolvedResponse {
            record: ResponseRecord {
                at: SimTime::ZERO,
                day: 0,
                query: query.into(),
                filename: name.into(),
                size,
                source_ip: Ipv4Addr::new(9, 9, 9, 9),
                source_port: 6346,
                needs_push: false,
                host: HostKey::Guid([1; 16]),
                downloadable: p2pmal_crawler::is_downloadable_name(name),
            },
            malware: malware.map(String::from),
            scanned: sha1.is_some(),
            sha1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use crate::SizeFilter;

    fn universe() -> Vec<ResolvedResponse> {
        vec![
            resp("a", "worm_one.exe", 100, Some("W32.A")),
            resp("b", "worm_two.exe", 100, Some("W32.A")),
            resp("c", "other.exe", 200, Some("W32.B")),
            resp("d", "clean.exe", 300, None),
            resp("e", "collide.exe", 100, None), // benign at a blocked size
            resp("f", "song.mp3", 100, Some("W32.A")), // outside the universe
            resp_with_sha1("g", "never_fetched.exe", 100, None, None), // unscanned
        ]
    }

    #[test]
    fn confusion_matrix_counts() {
        let f = SizeFilter::from_sizes([100]);
        let ev = evaluate(&f, &universe());
        assert_eq!((ev.tp, ev.fn_, ev.fp, ev.tn), (2, 1, 1, 1));
        assert!((ev.detection_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert!((ev.false_positive_rate() - 0.5).abs() < 1e-9);
        assert!((ev.precision() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_universe_yields_zero_rates() {
        let f = SizeFilter::from_sizes([1]);
        let ev = evaluate(&f, &[]);
        assert_eq!(ev.detection_rate(), 0.0);
        assert_eq!(ev.false_positive_rate(), 0.0);
    }

    #[test]
    fn evaluate_all_runs_each_filter() {
        let a = SizeFilter::from_sizes([100]);
        let b = SizeFilter::from_sizes([200]);
        let evs = evaluate_all(&[&a, &b], &universe());
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].tp, 2);
        assert_eq!(evs[1].tp, 1);
    }
}
