//! The paper's defense insight and its baselines.
//!
//! The abstract: *"filtering downloads based on the most commonly seen
//! sizes of the most popular malware could block a large portion of
//! malicious files with a very low rate of false positives. While current
//! Limewire mechanisms detect only about 6% of malware containing
//! responses, our size based filtering would detect over 99% of them."*
//!
//! * [`size`] — the size-based filter, learned from a training log;
//! * [`limewire`] — the LimeWire 4.x built-in mechanisms (Mandragore-style
//!   exact-echo check plus a keyword blacklist), the paper's ~6% baseline;
//! * [`baselines`] — additional comparison points (filename heuristics,
//!   hash blacklist);
//! * [`eval`] — the confusion-matrix harness;
//! * [`sweep`] — parameter sweeps (how many sizes to block, exact vs
//!   tolerant matching) for the F3 ablation.

pub mod baselines;
pub mod eval;
pub mod limewire;
pub mod size;
pub mod sweep;

pub use baselines::{EchoHeuristicFilter, HashBlacklist};
pub use eval::{evaluate, evaluate_all, FilterEval};
pub use limewire::LimewireBuiltin;
pub use size::SizeFilter;

use p2pmal_crawler::ResolvedResponse;

/// A response filter: decides, per query response, whether a client should
/// refuse to download it.
///
/// Deployable filters ([`SizeFilter`], [`LimewireBuiltin`],
/// [`EchoHeuristicFilter`]) look only at what a response advertises —
/// filename, size, query. [`HashBlacklist`] also reads the downloaded
/// content hash; it represents the (expensive) download-then-check
/// deployment point and is included as an upper-bound comparison.
pub trait ResponseFilter {
    /// Short display name for tables.
    fn name(&self) -> &str;

    /// Should this response be blocked?
    fn blocks(&self, r: &ResolvedResponse) -> bool;
}
