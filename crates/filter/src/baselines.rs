//! Additional comparison filters bracketing the size-based design.

use crate::ResponseFilter;
use p2pmal_corpus::QueryCache;
use p2pmal_crawler::ResolvedResponse;
use p2pmal_hashes::Sha1Digest;
use std::collections::HashSet;
use std::sync::Arc;

/// A smarter filename heuristic than LimeWire's: blocks any downloadable
/// response whose name stem equals the query terms joined by *any* single
/// separator (space, underscore, dash). Catches underscore echo worms but
/// starts colliding with honest exact-title matches — the FP trade-off the
/// size filter avoids.
#[derive(Debug, Clone, Default)]
pub struct EchoHeuristicFilter {
    /// Crawl logs repeat the same query text across thousands of
    /// responses; each distinct text is tokenized once.
    queries: Arc<QueryCache>,
}

impl EchoHeuristicFilter {
    pub fn new() -> Self {
        Self::default()
    }

    fn normalize(s: &str) -> Vec<String> {
        p2pmal_corpus::library::query_terms(s)
    }
}

impl ResponseFilter for EchoHeuristicFilter {
    fn name(&self) -> &str {
        "echo heuristic"
    }

    fn blocks(&self, r: &ResolvedResponse) -> bool {
        if !r.record.downloadable {
            return false;
        }
        let stem = match r.record.filename.rsplit_once('.') {
            Some((stem, _)) => stem,
            None => return false,
        };
        let q = self.queries.compile(&r.record.query);
        !q.is_empty() && Self::normalize(stem) == q.terms()
    }
}

/// A hash blacklist of known-bad content. This is the *post-download*
/// deployment point: perfect on content it has seen, useless on anything
/// new, and it costs a full download per response — shown as the accuracy
/// upper bound the size filter approaches at advertisement time.
#[derive(Debug, Clone, Default)]
pub struct HashBlacklist {
    known_bad: HashSet<Sha1Digest>,
}

impl HashBlacklist {
    pub fn new(known_bad: impl IntoIterator<Item = Sha1Digest>) -> Self {
        HashBlacklist {
            known_bad: known_bad.into_iter().collect(),
        }
    }

    /// Learns every malicious content hash from a training log.
    pub fn learn(training: &[ResolvedResponse]) -> Self {
        Self::new(
            training
                .iter()
                .filter(|r| r.malware.is_some())
                .filter_map(|r| r.sha1),
        )
    }

    pub fn len(&self) -> usize {
        self.known_bad.len()
    }

    pub fn is_empty(&self) -> bool {
        self.known_bad.is_empty()
    }
}

impl ResponseFilter for HashBlacklist {
    fn name(&self) -> &str {
        "hash blacklist"
    }

    fn blocks(&self, r: &ResolvedResponse) -> bool {
        match r.sha1 {
            Some(h) => self.known_bad.contains(&h),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::test_support::{resp, resp_with_sha1};

    #[test]
    fn echo_heuristic_catches_any_separator() {
        let f = EchoHeuristicFilter::new();
        assert!(f.blocks(&resp("free music", "free_music.exe", 1, None)));
        assert!(f.blocks(&resp("free music", "free music.zip", 1, None)));
        assert!(f.blocks(&resp("free music", "free-music.exe", 1, None)));
        assert!(!f.blocks(&resp("free music", "free_music_remix.exe", 1, None)));
        // Non-downloadable class passes even on exact echo.
        assert!(!f.blocks(&resp("free music", "free_music.mp3", 1, None)));
    }

    #[test]
    fn echo_heuristic_false_positive_shape() {
        // A user searching the exact title of a benign app gets the honest
        // result blocked — the FP cost of name heuristics.
        let f = EchoHeuristicFilter::new();
        assert!(f.blocks(&resp(
            "silver echo toolkit",
            "silver_echo_toolkit.exe",
            1,
            None
        )));
    }

    #[test]
    fn hash_blacklist_learn_and_block() {
        let bad = p2pmal_hashes::sha1(b"malware");
        let good = p2pmal_hashes::sha1(b"benign");
        let train = vec![
            resp_with_sha1("q", "w.exe", 10, Some("W32.A"), Some(bad)),
            resp_with_sha1("q", "ok.exe", 20, None, Some(good)),
        ];
        let f = HashBlacklist::learn(&train);
        assert_eq!(f.len(), 1);
        assert!(f.blocks(&resp_with_sha1(
            "other",
            "renamed.exe",
            10,
            Some("W32.A"),
            Some(bad)
        )));
        assert!(!f.blocks(&resp_with_sha1("other", "ok.exe", 20, None, Some(good))));
        // Unscanned content can't be hash-matched.
        assert!(!f.blocks(&resp("q", "unknown.exe", 30, None)));
    }
}
