//! Parameter sweeps for the F3 ablation: how many sizes must be blocked,
//! and what tolerance costs.

use crate::eval::{evaluate, FilterEval};
use crate::size::SizeFilter;
use p2pmal_crawler::ResolvedResponse;
use std::collections::HashMap;

/// One sweep point: `k` blocked sizes and the resulting accuracy.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub k: usize,
    pub blocked_sizes: Vec<u64>,
    pub eval: FilterEval,
}

/// Ranks all sizes seen in malicious training responses by volume.
pub fn ranked_malicious_sizes(training: &[ResolvedResponse]) -> Vec<(u64, u64)> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for r in training {
        if r.malware.is_some() {
            *counts.entry(r.record.size).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// F3 — sweeps `k` (number of top malicious sizes blocked) and evaluates
/// each resulting filter on `test`.
pub fn size_filter_sweep(
    training: &[ResolvedResponse],
    test: &[ResolvedResponse],
    ks: &[usize],
) -> Vec<SweepPoint> {
    let ranked = ranked_malicious_sizes(training);
    ks.iter()
        .map(|&k| {
            let sizes: Vec<u64> = ranked.iter().take(k).map(|(s, _)| *s).collect();
            let filter = SizeFilter::from_sizes(sizes.iter().copied());
            SweepPoint {
                k,
                blocked_sizes: sizes,
                eval: evaluate(&filter, test),
            }
        })
        .collect()
}

/// Tolerance ablation: same blocklist, varying ± tolerance.
pub fn tolerance_ablation(
    training: &[ResolvedResponse],
    test: &[ResolvedResponse],
    k: usize,
    tolerances: &[u64],
) -> Vec<(u64, FilterEval)> {
    let ranked = ranked_malicious_sizes(training);
    let sizes: Vec<u64> = ranked.iter().take(k).map(|(s, _)| *s).collect();
    tolerances
        .iter()
        .map(|&t| {
            let filter = SizeFilter::from_sizes(sizes.iter().copied()).with_tolerance(t);
            (t, evaluate(&filter, test))
        })
        .collect()
}

/// Splits a resolved log into (train, test) halves by day: days before
/// `split_day` train, the rest test — the deployment-honest evaluation.
pub fn split_by_day(
    resolved: &[ResolvedResponse],
    split_day: u64,
) -> (Vec<ResolvedResponse>, Vec<ResolvedResponse>) {
    let mut train = Vec::new();
    let mut test = Vec::new();
    for r in resolved {
        if r.record.day < split_day {
            train.push(r.clone());
        } else {
            test.push(r.clone());
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::test_support::resp;

    fn log() -> Vec<ResolvedResponse> {
        let mut v = Vec::new();
        for _ in 0..50 {
            v.push(resp("q", "w.exe", 100, Some("W32.A")));
        }
        for _ in 0..20 {
            v.push(resp("q", "x.exe", 200, Some("W32.B")));
        }
        for _ in 0..5 {
            v.push(resp("q", "y.exe", 300, Some("W32.C")));
        }
        for s in [1000, 2000, 3000] {
            v.push(resp("q", "clean.exe", s, None));
        }
        v
    }

    #[test]
    fn ranking_orders_by_volume() {
        let ranked = ranked_malicious_sizes(&log());
        assert_eq!(ranked[0], (100, 50));
        assert_eq!(ranked[1], (200, 20));
        assert_eq!(ranked[2], (300, 5));
    }

    #[test]
    fn detection_saturates_with_k() {
        let l = log();
        let points = size_filter_sweep(&l, &l, &[0, 1, 2, 3]);
        let det: Vec<f64> = points.iter().map(|p| p.eval.detection_pct()).collect();
        assert_eq!(det[0], 0.0);
        assert!((det[1] - 100.0 * 50.0 / 75.0).abs() < 0.01);
        assert!((det[2] - 100.0 * 70.0 / 75.0).abs() < 0.01);
        assert_eq!(det[3], 100.0);
        // Monotone non-decreasing detection, zero FPs throughout here.
        assert!(det.windows(2).all(|w| w[0] <= w[1]));
        assert!(points.iter().all(|p| p.eval.fp == 0));
    }

    #[test]
    fn tolerance_widens_and_can_cost_fps() {
        let mut l = log();
        // A benign file 10 bytes from the top malicious size.
        l.push(resp("q", "near.exe", 110, None));
        let points = tolerance_ablation(&l, &l, 3, &[0, 4, 16]);
        assert_eq!(points[0].1.fp, 0);
        assert_eq!(points[1].1.fp, 0);
        assert_eq!(points[2].1.fp, 1, "±16 swallows the nearby benign size");
    }

    #[test]
    fn day_split() {
        let mut l = log();
        for r in l.iter_mut().take(10) {
            r.record.day = 5;
        }
        let (train, test) = split_by_day(&l, 3);
        assert_eq!(train.len(), l.len() - 10);
        assert_eq!(test.len(), 10);
    }
}
