//! The LimeWire 4.x built-in response filters — the paper's ≈6% baseline.
//!
//! LimeWire shipped two relevant mechanisms in 2006:
//!
//! * the **Mandragore worm filter**: drop any result whose filename is
//!   exactly the query text with `.exe`/`.zip` appended (the W32/Gnuman
//!   "Mandragore" worm echoed queries verbatim). Worms that join query
//!   terms with underscores evade this check — which is precisely why the
//!   era's dominant families did;
//! * a **keyword blacklist** ("junk" filter) over result names.
//!
//! Both look only at the advertised response, never at content, and both
//! are implemented here as they behaved: exact, case-insensitive, easy to
//! sidestep.

use crate::ResponseFilter;
use p2pmal_crawler::ResolvedResponse;

/// Default keyword blacklist, shaped after LimeWire's stock junk terms.
pub const DEFAULT_KEYWORDS: &[&str] = &["crack", "keygen", "warez", "serial", "hack"];

/// The built-in filter pair.
#[derive(Debug, Clone)]
pub struct LimewireBuiltin {
    keywords: Vec<String>,
}

impl Default for LimewireBuiltin {
    fn default() -> Self {
        Self::new()
    }
}

impl LimewireBuiltin {
    pub fn new() -> Self {
        LimewireBuiltin {
            keywords: DEFAULT_KEYWORDS.iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn with_keywords(keywords: Vec<String>) -> Self {
        LimewireBuiltin {
            keywords: keywords
                .into_iter()
                .map(|k| k.to_ascii_lowercase())
                .collect(),
        }
    }

    /// The Mandragore check: filename == query + ".exe"/".zip", verbatim.
    pub fn is_query_echo(query: &str, filename: &str) -> bool {
        let q = query.trim().to_ascii_lowercase();
        if q.is_empty() {
            return false;
        }
        let f = filename.to_ascii_lowercase();
        for ext in [".exe", ".zip"] {
            if let Some(stem) = f.strip_suffix(ext) {
                if stem == q {
                    return true;
                }
            }
        }
        false
    }

    fn keyword_hit(&self, filename: &str) -> bool {
        let f = filename.to_ascii_lowercase();
        self.keywords.iter().any(|k| f.contains(k.as_str()))
    }
}

impl ResponseFilter for LimewireBuiltin {
    fn name(&self) -> &str {
        "LimeWire built-in"
    }

    fn blocks(&self, r: &ResolvedResponse) -> bool {
        Self::is_query_echo(&r.record.query, &r.record.filename)
            || self.keyword_hit(&r.record.filename)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::test_support::resp;

    #[test]
    fn mandragore_check_is_verbatim_only() {
        assert!(LimewireBuiltin::is_query_echo(
            "free music",
            "free music.exe"
        ));
        assert!(LimewireBuiltin::is_query_echo(
            "Free Music",
            "free music.zip"
        ));
        // The evasion every 2006 worm used: underscores.
        assert!(!LimewireBuiltin::is_query_echo(
            "free music",
            "free_music.exe"
        ));
        // Not merely containing the query.
        assert!(!LimewireBuiltin::is_query_echo(
            "free music",
            "free music remix.exe"
        ));
        assert!(!LimewireBuiltin::is_query_echo("", ".exe"));
    }

    #[test]
    fn keyword_blacklist_hits() {
        let f = LimewireBuiltin::new();
        assert!(f.blocks(&resp("q", "photoshop_keygen.exe", 10, None)));
        assert!(f.blocks(&resp("q", "WinZip_CRACK.exe", 10, None)));
        assert!(!f.blocks(&resp("q", "holiday_photos.zip", 10, None)));
    }

    #[test]
    fn blocks_verbatim_echo_responses() {
        let f = LimewireBuiltin::new();
        assert!(f.blocks(&resp(
            "top hits 2006",
            "top hits 2006.exe",
            92_672,
            Some("W32.Bagle.DL")
        )));
        assert!(!f.blocks(&resp(
            "top hits 2006",
            "top_hits_2006.exe",
            58_368,
            Some("W32.Padobot.P2P")
        )));
    }

    #[test]
    fn custom_keywords() {
        let f = LimewireBuiltin::with_keywords(vec!["XXX".into()]);
        assert!(f.blocks(&resp("q", "hot_xxx_pack.zip", 1, None)));
        assert!(!f.blocks(&resp("q", "photoshop_keygen.exe", 1, None)));
    }
}
