//! The size-based filter — the paper's actionable insight.
//!
//! P2P malware of the era served byte-identical replicas, so each family
//! exhibits a tiny set of exact transfer sizes while benign content (rips,
//! encodings, bundles) is size-diverse. Blocking the most commonly seen
//! sizes of the most popular malware therefore kills almost all malicious
//! responses at near-zero false-positive cost.

use crate::ResponseFilter;
use p2pmal_crawler::ResolvedResponse;
use std::collections::{BTreeSet, HashMap};

/// A filter blocking responses whose exact size (optionally ± a tolerance)
/// appears on the blocklist.
#[derive(Debug, Clone)]
pub struct SizeFilter {
    /// Sorted blocked sizes (exact bytes).
    blocked: BTreeSet<u64>,
    /// Symmetric tolerance in bytes (0 = exact match).
    tolerance: u64,
    name: String,
}

impl SizeFilter {
    /// Builds a filter from explicit sizes.
    pub fn from_sizes(sizes: impl IntoIterator<Item = u64>) -> Self {
        SizeFilter {
            blocked: sizes.into_iter().collect(),
            tolerance: 0,
            name: "size-based".to_string(),
        }
    }

    /// Learns the blocklist from a training log: rank malware by malicious
    /// response volume, take the `top_families` most popular, and block
    /// each one's `sizes_per_family` most commonly seen sizes.
    pub fn learn(
        training: &[ResolvedResponse],
        top_families: usize,
        sizes_per_family: usize,
    ) -> Self {
        // malicious responses per family, and per (family, size)
        let mut family_counts: HashMap<&str, u64> = HashMap::new();
        let mut size_counts: HashMap<(&str, u64), u64> = HashMap::new();
        for r in training {
            if let Some(fam) = r.malware.as_deref() {
                *family_counts.entry(fam).or_insert(0) += 1;
                *size_counts.entry((fam, r.record.size)).or_insert(0) += 1;
            }
        }
        let mut families: Vec<(&str, u64)> = family_counts.into_iter().collect();
        families.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mut blocked = BTreeSet::new();
        for (fam, _) in families.into_iter().take(top_families) {
            let mut sizes: Vec<(u64, u64)> = size_counts
                .iter()
                .filter(|((f, _), _)| *f == fam)
                .map(|((_, s), c)| (*s, *c))
                .collect();
            sizes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (s, _) in sizes.into_iter().take(sizes_per_family) {
                blocked.insert(s);
            }
        }
        SizeFilter {
            blocked,
            tolerance: 0,
            name: "size-based".to_string(),
        }
    }

    /// Switches to tolerant matching: block sizes within `bytes` of a
    /// blocklist entry. Trades false positives for robustness against
    /// padding variants.
    pub fn with_tolerance(mut self, bytes: u64) -> Self {
        self.tolerance = bytes;
        self.name = format!("size-based ±{bytes}B");
        self
    }

    /// The current blocklist.
    pub fn blocked_sizes(&self) -> Vec<u64> {
        self.blocked.iter().copied().collect()
    }

    /// Is `size` blocked?
    pub fn blocks_size(&self, size: u64) -> bool {
        if self.tolerance == 0 {
            return self.blocked.contains(&size);
        }
        let lo = size.saturating_sub(self.tolerance);
        let hi = size.saturating_add(self.tolerance);
        self.blocked.range(lo..=hi).next().is_some()
    }
}

impl ResponseFilter for SizeFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn blocks(&self, r: &ResolvedResponse) -> bool {
        r.record.downloadable && self.blocks_size(r.record.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::test_support::resp;

    #[test]
    fn exact_matching() {
        let f = SizeFilter::from_sizes([100, 200]);
        assert!(f.blocks_size(100));
        assert!(!f.blocks_size(101));
        assert_eq!(f.blocked_sizes(), vec![100, 200]);
    }

    #[test]
    fn tolerant_matching() {
        let f = SizeFilter::from_sizes([1000]).with_tolerance(8);
        assert!(f.blocks_size(1000));
        assert!(f.blocks_size(992));
        assert!(f.blocks_size(1008));
        assert!(!f.blocks_size(991));
        assert!(!f.blocks_size(1009));
    }

    #[test]
    fn learn_picks_top_families_and_their_common_sizes() {
        let mut train = Vec::new();
        // Family A: very popular, mostly size 100, sometimes 101.
        for _ in 0..30 {
            train.push(resp("q", "a.exe", 100, Some("W32.A")));
        }
        for _ in 0..5 {
            train.push(resp("q", "a.exe", 101, Some("W32.A")));
        }
        // Family B: less popular, size 200.
        for _ in 0..10 {
            train.push(resp("q", "b.exe", 200, Some("W32.B")));
        }
        // Family C: rare, size 300.
        train.push(resp("q", "c.exe", 300, Some("W32.C")));
        // Benign noise.
        for s in [5000, 6000] {
            train.push(resp("q", "ok.exe", s, None));
        }

        let f = SizeFilter::learn(&train, 2, 1);
        assert_eq!(
            f.blocked_sizes(),
            vec![100, 200],
            "top-2 families, 1 size each"
        );
        let f = SizeFilter::learn(&train, 2, 2);
        assert_eq!(f.blocked_sizes(), vec![100, 101, 200]);
        let f = SizeFilter::learn(&train, 3, 1);
        assert!(f.blocked_sizes().contains(&300));
    }

    #[test]
    fn non_downloadable_responses_pass() {
        let f = SizeFilter::from_sizes([100]);
        let mp3 = resp("q", "song.mp3", 100, None);
        assert!(
            !f.blocks(&mp3),
            "size filter applies to the downloadable class only"
        );
        let exe = resp("q", "x.exe", 100, None);
        assert!(f.blocks(&exe));
    }
}
