//! Determinism guards for the fault-injection layer.
//!
//! Two properties: (1) the same seed plus the same `FaultPlan` reproduces
//! the exact same `SimMetrics` — faults are part of the deterministic event
//! trace, not noise; (2) `FaultPlan::none()` (the default) is
//! indistinguishable from a config that never mentions faults at all.

use p2pmal_netsim::{
    App, ConnId, Ctx, Direction, FaultPlan, HostAddr, NodeSpec, SimConfig, SimDuration, SimMetrics,
    SimTime, Simulator,
};

/// Echo server: bounces every chunk straight back.
struct Echo;

impl App for Echo {
    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        ctx.send(conn, data);
    }
}

/// Chatty client: dials the server, sends a payload every tick, and
/// re-dials after any close or failed connect — the minimal shape of a
/// fault-tolerant protocol app.
struct Chatter {
    server: HostAddr,
    conn: Option<ConnId>,
    payload: Vec<u8>,
}

const TICK: u64 = 1;

impl Chatter {
    fn dial(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = Some(ctx.connect(self.server));
    }
}

impl App for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.dial(ctx);
        ctx.set_timer(SimDuration::from_secs(30), TICK);
    }
    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _d: Direction, _p: HostAddr) {
        ctx.send(conn, &self.payload.clone());
    }
    fn on_connect_failed(&mut self, _ctx: &mut Ctx<'_>, conn: ConnId) {
        if self.conn == Some(conn) {
            self.conn = None;
        }
    }
    fn on_closed(&mut self, _ctx: &mut Ctx<'_>, conn: ConnId) {
        if self.conn == Some(conn) {
            self.conn = None;
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        match self.conn {
            Some(conn) => ctx.send(conn, &self.payload.clone()),
            None => self.dial(ctx),
        }
        ctx.set_timer(SimDuration::from_secs(30), TICK);
    }
}

/// Runs a small echo swarm for six simulated hours and returns its metrics.
fn run_swarm(config: SimConfig, seed: u64) -> SimMetrics {
    let mut sim = Simulator::new(config, seed);
    let server = sim.spawn(NodeSpec::public().listen(6346).durable(), Box::new(Echo));
    let server_addr = sim.node_addr(server);
    for i in 0..12u64 {
        let spec = if i % 3 == 0 {
            NodeSpec::nat()
        } else {
            NodeSpec::public()
        };
        sim.spawn(
            spec,
            Box::new(Chatter {
                server: server_addr,
                conn: None,
                payload: vec![i as u8; 2048 + (i as usize) * 97],
            }),
        );
    }
    sim.run_until(SimTime::from_secs(6 * 3600));
    sim.metrics().clone()
}

fn faulty_config(faults: FaultPlan) -> SimConfig {
    SimConfig {
        mss: Some(1200), // exercise the shared-buffer fan-out under faults
        faults,
        ..SimConfig::default()
    }
}

#[test]
fn same_seed_same_plan_same_metrics() {
    for plan in [FaultPlan::mild(), FaultPlan::harsh()] {
        let a = run_swarm(faulty_config(plan), 99);
        let b = run_swarm(faulty_config(plan), 99);
        assert_eq!(a, b, "fault plan {plan:?} was not seed-deterministic");
    }
}

#[test]
fn different_seeds_diverge_under_faults() {
    let a = run_swarm(faulty_config(FaultPlan::harsh()), 99);
    let b = run_swarm(faulty_config(FaultPlan::harsh()), 100);
    assert_ne!(a, b, "different seeds should sample different faults");
}

#[test]
fn harsh_actually_injects_faults() {
    let m = run_swarm(faulty_config(FaultPlan::harsh()), 99);
    assert!(m.faults_chunks_dropped > 0, "no chunk loss: {m:?}");
    assert!(m.faults_chunks_corrupted > 0, "no corruption: {m:?}");
    assert!(m.faults_resets > 0, "no resets: {m:?}");
    assert!(m.faults_latency_spikes > 0, "no latency spikes: {m:?}");
    assert!(m.faults_churn_downs > 0, "no churn downs: {m:?}");
    assert!(m.faults_churn_ups > 0, "no churn ups: {m:?}");
}

#[test]
fn none_plan_is_identical_to_no_fault_config() {
    // A config that spells out FaultPlan::none() must produce metrics
    // identical to one that never mentions faults (the pre-fault-layer
    // shape): zero extra RNG draws, zero fault events.
    let explicit = run_swarm(faulty_config(FaultPlan::none()), 2006);
    let implicit = run_swarm(
        SimConfig {
            mss: Some(1200),
            ..SimConfig::default()
        },
        2006,
    );
    assert_eq!(explicit, implicit);
    assert_eq!(explicit.faults_chunks_dropped, 0);
    assert_eq!(explicit.faults_chunks_corrupted, 0);
    assert_eq!(explicit.faults_resets, 0);
    assert_eq!(explicit.faults_latency_spikes, 0);
    assert_eq!(explicit.faults_churn_downs, 0);
    assert_eq!(explicit.faults_churn_ups, 0);
}
