//! Virtual time. Microsecond resolution covers month-long simulations in a
//! `u64` with room to spare (a `u64` of microseconds spans ~584k years).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Whole simulated days, for the study's daily time-series buckets.
    pub fn from_days(d: u64) -> Self {
        SimTime(d * 86_400 * 1_000_000)
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Index of the simulated day this instant falls in.
    pub fn day(self) -> u64 {
        self.0 / (86_400 * 1_000_000)
    }

    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    pub fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000)
    }

    pub fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000)
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000_000;
        let d = total_secs / 86_400;
        let h = (total_secs % 86_400) / 3_600;
        let m = (total_secs % 3_600) / 60;
        let s = total_secs % 60;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
    }

    #[test]
    fn day_bucketing() {
        assert_eq!(SimTime::from_days(0).day(), 0);
        assert_eq!(SimTime::from_secs(86_399).day(), 0);
        assert_eq!(SimTime::from_secs(86_400).day(), 1);
        assert_eq!(SimTime::from_days(34).day(), 34);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_days(3) + SimDuration::from_hours(4) + SimDuration::from_mins(5);
        assert_eq!(t.to_string(), "d3+04:05:00");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
