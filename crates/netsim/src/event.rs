//! The simulator's event queue: a thin wrapper that binds [`EventKind`] to
//! one of the [`crate::queue`] schedulers. Simultaneous events dispatch in
//! scheduling order (the schedulers' `(time, seq)` contract), keeping runs
//! deterministic regardless of which scheduler backs the queue.

use crate::addr::HostAddr;
use crate::app::{ConnId, NodeId, TimerToken};
use crate::pool::Payload;
use crate::queue::{CalendarQueue, HeapQueue, Scheduler, SchedulerKind};
use crate::time::SimTime;

#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver `on_start` to a freshly spawned node.
    Start { node: NodeId },
    /// An outbound SYN reaches the target address.
    ConnAttempt { conn: ConnId, target: HostAddr },
    /// Bytes reach the receiving endpoint of `conn`.
    Data {
        conn: ConnId,
        to: NodeId,
        data: Payload,
    },
    /// A close notification reaches the peer.
    CloseNotify { conn: ConnId, to: NodeId },
    /// A fault-injected connection reset reaches `to`. Unlike
    /// [`EventKind::CloseNotify`] this carries no connection-table entry —
    /// the entry is removed when the reset is sampled — so both endpoints
    /// can be notified independently.
    Reset { conn: ConnId, to: NodeId },
    /// Churn session: the node loses power.
    ChurnDown { node: NodeId },
    /// Churn session: the node comes back online.
    ChurnUp { node: NodeId },
    /// An app timer fires.
    Timer { node: NodeId, token: TimerToken },
}

enum QueueImpl {
    Calendar(CalendarQueue<EventKind>),
    Heap(HeapQueue<EventKind>),
}

/// Deterministic event queue.
pub(crate) struct EventQueue {
    q: QueueImpl,
    high_water: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new(SchedulerKind::Calendar)
    }
}

impl EventQueue {
    pub fn new(kind: SchedulerKind) -> Self {
        let q = match kind {
            SchedulerKind::Calendar => QueueImpl::Calendar(CalendarQueue::default()),
            SchedulerKind::Heap => QueueImpl::Heap(HeapQueue::default()),
        };
        EventQueue { q, high_water: 0 }
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        match &mut self.q {
            QueueImpl::Calendar(q) => q.push(time, kind),
            QueueImpl::Heap(q) => q.push(time, kind),
        }
        let len = self.len();
        if len > self.high_water {
            self.high_water = len;
        }
    }

    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        match &mut self.q {
            QueueImpl::Calendar(q) => q.pop(),
            QueueImpl::Heap(q) => q.pop(),
        }
    }

    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.q {
            QueueImpl::Calendar(q) => q.peek_time(),
            QueueImpl::Heap(q) => q.peek_time(),
        }
    }

    pub fn len(&self) -> usize {
        match &self.q {
            QueueImpl::Calendar(q) => q.len(),
            QueueImpl::Heap(q) => q.len(),
        }
    }

    /// Peak number of simultaneously scheduled events.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn queues() -> [EventQueue; 2] {
        [
            EventQueue::new(SchedulerKind::Calendar),
            EventQueue::new(SchedulerKind::Heap),
        ]
    }

    fn token(kind: EventKind) -> u64 {
        match kind {
            EventKind::Timer { token, .. } => token,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in queues() {
            q.push(
                t(30),
                EventKind::Timer {
                    node: NodeId(0),
                    token: 3,
                },
            );
            q.push(
                t(10),
                EventKind::Timer {
                    node: NodeId(0),
                    token: 1,
                },
            );
            q.push(
                t(20),
                EventKind::Timer {
                    node: NodeId(0),
                    token: 2,
                },
            );
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, kind)| token(kind))
                .collect();
            assert_eq!(order, [1, 2, 3]);
        }
    }

    #[test]
    fn ties_break_on_insertion_order() {
        for mut q in queues() {
            for tok in 0..100 {
                q.push(
                    t(5),
                    EventKind::Timer {
                        node: NodeId(0),
                        token: tok,
                    },
                );
            }
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, kind)| token(kind))
                .collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        for mut q in queues() {
            assert_eq!(q.peek_time(), None);
            q.push(
                t(50),
                EventKind::Timer {
                    node: NodeId(0),
                    token: 0,
                },
            );
            q.push(
                t(5),
                EventKind::Timer {
                    node: NodeId(0),
                    token: 0,
                },
            );
            assert_eq!(q.peek_time(), Some(t(5)));
            assert_eq!(q.len(), 2);
            assert_eq!(q.high_water(), 2);
        }
    }
}
