//! The event heap: a min-heap on (time, sequence) so simultaneous events
//! dispatch in scheduling order, keeping runs deterministic.

use crate::addr::HostAddr;
use crate::app::{ConnId, NodeId, TimerToken};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver `on_start` to a freshly spawned node.
    Start { node: NodeId },
    /// An outbound SYN reaches the target address.
    ConnAttempt { conn: ConnId, target: HostAddr },
    /// Bytes reach the receiving endpoint of `conn`.
    Data { conn: ConnId, to: NodeId, data: Vec<u8> },
    /// A close notification reaches the peer.
    CloseNotify { conn: ConnId, to: NodeId },
    /// An app timer fires.
    Timer { node: NodeId, token: TimerToken },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour inside std's max-heap.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic event queue.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        q.push(t(30), EventKind::Timer { node: NodeId(0), token: 3 });
        q.push(t(10), EventKind::Timer { node: NodeId(0), token: 1 });
        q.push(t(20), EventKind::Timer { node: NodeId(0), token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_on_insertion_order() {
        let mut q = EventQueue::default();
        for token in 0..100 {
            q.push(t(5), EventKind::Timer { node: NodeId(0), token });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(t(50), EventKind::Timer { node: NodeId(0), token: 0 });
        q.push(t(5), EventKind::Timer { node: NodeId(0), token: 0 });
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.len(), 2);
    }
}
