//! Pluggable event schedulers.
//!
//! Both queues implement the same deterministic contract: items pushed with
//! a [`SimTime`] pop back in `(time, insertion order)` order. The original
//! implementation, [`HeapQueue`], is a `BinaryHeap` over `(time, seq)` —
//! every push and pop costs `O(log n)` comparisons on a heap that reaches
//! hundreds of thousands of entries at paper scale.
//!
//! [`CalendarQueue`] replaces it on the simulator hot path (Brown, CACM
//! 1988): time is hashed into a power-of-two ring of buckets of fixed
//! width, so a push is `O(1)` ring insertion and a pop only ever sorts the
//! one bucket the clock currently points at. Discrete-event traffic is
//! heavily clustered around "now" (link transmit delays, sub-second
//! latencies, short timers), which keeps buckets small; events beyond the
//! ring's horizon go to an overflow heap and are pulled forward as the
//! cursor reaches them, so far-future timers stay cheap too.
//!
//! `HeapQueue` is kept both as the reference oracle for the equivalence
//! tests below and for the head-to-head scheduler benchmark in
//! `crates/bench/benches/perf_simulator.rs`.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Selects which scheduler backs a simulator run (see `SimConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The bucketed calendar queue (default).
    Calendar,
    /// The original `(time, seq)` binary heap, kept for benchmarking.
    Heap,
}

/// Log2 of the bucket width in microseconds: 2^15 µs ≈ 32.8 ms per bucket.
/// Chosen to bracket the simulated latency floor (20 ms) so consecutive
/// deliveries land in the current or next few buckets.
const BUCKET_SHIFT: u32 = 15;
/// Number of buckets in the ring (power of two). Horizon =
/// `BUCKETS << BUCKET_SHIFT` ≈ 134 simulated seconds; anything further out
/// waits in the overflow heap.
const BUCKETS: usize = 4096;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: std's BinaryHeap is a max-heap, we want the min first.
        other.key().cmp(&self.key())
    }
}

/// The scheduler interface the simulator core and the benchmarks share.
pub trait Scheduler<T> {
    /// Enqueues `item` at `time`. Items at equal times dequeue in push
    /// order.
    fn push(&mut self, time: SimTime, item: T);
    /// Enqueues `item` at `time` under an explicit tie-break key instead of
    /// the auto-assigned insertion sequence: equal-time items dequeue in
    /// ascending `seq` order regardless of push order. The sharded
    /// simulator derives `seq` from `(source node, per-source counter)` so
    /// the dispatch order is a pure function of the event set, not of which
    /// thread pushed first. Do not mix with [`Scheduler::push`] on the same
    /// queue — the auto sequence would collide with caller keys.
    fn push_keyed(&mut self, time: SimTime, seq: u64, item: T);
    /// Removes and returns the earliest item.
    fn pop(&mut self) -> Option<(SimTime, T)>;
    /// Like [`Scheduler::pop`], but also returns the item's tie-break key.
    fn pop_keyed(&mut self) -> Option<(SimTime, u64, T)>;
    /// The timestamp [`Scheduler::pop`] would return next. Takes `&mut
    /// self` so implementations may reorganise lazily.
    fn peek_time(&mut self) -> Option<SimTime>;
    /// Number of queued items.
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The original `(time, seq)` binary-heap scheduler.
pub struct HeapQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> Scheduler<T> for HeapQueue<T> {
    fn push(&mut self, time: SimTime, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, item });
    }

    fn push_keyed(&mut self, time: SimTime, seq: u64, item: T) {
        self.heap.push(Entry { time, seq, item });
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.item))
    }

    fn pop_keyed(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.item))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// A bucketed calendar queue with an overflow heap for far-future events.
///
/// Invariant: every entry in the ring lives in the slot of its *absolute*
/// bucket index (`time >> BUCKET_SHIFT`), and that index is within
/// `[cursor, cursor + BUCKETS)`. Entries at or past the horizon sit in
/// `overflow` and are migrated into the ring as the cursor advances.
/// Because the ring is indexed modulo `BUCKETS`, every entry found in slot
/// `cursor % BUCKETS` is known to belong to bucket `cursor` exactly.
pub struct CalendarQueue<T> {
    ring: Vec<Vec<Entry<T>>>,
    /// Absolute index of the earliest bucket that may hold entries.
    cursor: u64,
    /// Whether the current bucket is sorted descending by `(time, seq)`
    /// (popped from the back).
    sorted: bool,
    /// Entries with `abs_bucket >= cursor + BUCKETS`.
    overflow: BinaryHeap<Entry<T>>,
    ring_len: usize,
    next_seq: u64,
    /// Peak total occupancy, for the depth statistics.
    high_water: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        let mut ring = Vec::with_capacity(BUCKETS);
        ring.resize_with(BUCKETS, Vec::new);
        CalendarQueue {
            ring,
            cursor: 0,
            sorted: false,
            overflow: BinaryHeap::new(),
            ring_len: 0,
            next_seq: 0,
            high_water: 0,
        }
    }
}

impl<T> CalendarQueue<T> {
    fn abs_bucket(time: SimTime) -> u64 {
        time.as_micros() >> BUCKET_SHIFT
    }

    /// Peak number of simultaneously queued items over the queue's life.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    fn insert_ring(&mut self, entry: Entry<T>) {
        // Clamp into the current bucket: schedulers never travel backwards,
        // but an entry clamped forward still pops in correct `(time, seq)`
        // order because the bucket is sorted on the full key.
        let abs = Self::abs_bucket(entry.time).max(self.cursor);
        debug_assert!(abs < self.cursor + BUCKETS as u64);
        let slot = (abs as usize) & (BUCKETS - 1);
        let bucket = &mut self.ring[slot];
        if abs == self.cursor && self.sorted {
            // The live bucket is already sorted descending; splice the new
            // entry into position so the back stays the minimum.
            let key = entry.key();
            let pos = bucket.partition_point(|e| e.key() > key);
            bucket.insert(pos, entry);
        } else {
            bucket.push(entry);
        }
        self.ring_len += 1;
    }

    /// Pulls overflow entries that the advancing cursor has brought inside
    /// the horizon into the ring.
    fn refill(&mut self) {
        let horizon = self.cursor + BUCKETS as u64;
        while let Some(e) = self.overflow.peek() {
            if Self::abs_bucket(e.time) >= horizon {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            self.insert_ring(e);
        }
    }

    /// Advances the cursor to the next non-empty bucket and sorts it.
    /// Returns false when the queue is empty.
    fn settle(&mut self) -> bool {
        if self.ring_len == 0 {
            // Jump straight to the overflow's first bucket instead of
            // walking up to it one bucket at a time.
            match self.overflow.peek() {
                Some(e) => {
                    self.cursor = Self::abs_bucket(e.time);
                    self.sorted = false;
                    self.refill();
                }
                None => return false,
            }
        }
        loop {
            let slot = (self.cursor as usize) & (BUCKETS - 1);
            if !self.ring[slot].is_empty() {
                if !self.sorted {
                    self.ring[slot].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.sorted = true;
                }
                return true;
            }
            self.cursor += 1;
            self.sorted = false;
            self.refill();
        }
    }
}

impl<T> Scheduler<T> for CalendarQueue<T> {
    fn push(&mut self, time: SimTime, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_keyed(time, seq, item);
    }

    fn push_keyed(&mut self, time: SimTime, seq: u64, item: T) {
        let entry = Entry { time, seq, item };
        if Self::abs_bucket(time) >= self.cursor + BUCKETS as u64 {
            self.overflow.push(entry);
        } else {
            self.insert_ring(entry);
        }
        let len = self.len();
        if len > self.high_water {
            self.high_water = len;
        }
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_keyed().map(|(time, _, item)| (time, item))
    }

    fn pop_keyed(&mut self) -> Option<(SimTime, u64, T)> {
        if !self.settle() {
            return None;
        }
        let slot = (self.cursor as usize) & (BUCKETS - 1);
        let e = self.ring[slot].pop().expect("settled on non-empty bucket");
        self.ring_len -= 1;
        Some((e.time, e.seq, e.item))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if !self.settle() {
            return None;
        }
        let slot = (self.cursor as usize) & (BUCKETS - 1);
        self.ring[slot].last().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn drain<S: Scheduler<u64>>(q: &mut S) -> Vec<(SimTime, u64)> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn orders_across_bucket_boundaries() {
        // Straddle several bucket widths, pushed out of order.
        let width = 1u64 << BUCKET_SHIFT;
        let times = [
            3 * width + 1,
            0,
            width - 1,
            width,
            2 * width + 7,
            1,
            width + 1,
        ];
        let mut q = CalendarQueue::default();
        for (i, &us) in times.iter().enumerate() {
            q.push(t(us), i as u64);
        }
        let popped = drain(&mut q);
        let mut expect: Vec<(SimTime, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, &us)| (t(us), i as u64))
            .collect();
        expect.sort_by_key(|&(time, i)| (time, i));
        assert_eq!(popped, expect);
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = CalendarQueue::default();
        for i in 0..1000u64 {
            q.push(t(42), i);
        }
        let ids: Vec<u64> = drain(&mut q).into_iter().map(|(_, i)| i).collect();
        assert_eq!(ids, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn push_into_live_sorted_bucket_keeps_order() {
        // Pop once (forcing the bucket to sort), then push more entries at
        // the same and nearby times into the now-live bucket.
        let mut q = CalendarQueue::default();
        q.push(t(10), 0);
        q.push(t(30), 1);
        assert_eq!(q.pop(), Some((t(10), 0)));
        q.push(t(20), 2);
        q.push(t(30), 3);
        q.push(t(5), 4); // "past" push: clamped into the live bucket
        assert_eq!(
            drain(&mut q),
            vec![(t(5), 4), (t(20), 2), (t(30), 1), (t(30), 3)]
        );
    }

    #[test]
    fn far_future_spills_to_overflow_and_returns() {
        let horizon_us = (BUCKETS as u64) << BUCKET_SHIFT;
        let mut q = CalendarQueue::default();
        q.push(t(7), 0);
        q.push(t(3 * horizon_us + 5), 1); // ~400 simulated seconds out
        q.push(t(horizon_us + 9), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(
            drain(&mut q),
            vec![
                (t(7), 0),
                (t(horizon_us + 9), 2),
                (t(3 * horizon_us + 5), 1)
            ]
        );
    }

    #[test]
    fn overflow_tie_break_survives_refill() {
        // Two far-future entries at the identical time must still come
        // back in push order after the spill/refill round trip.
        let far = ((BUCKETS as u64) << BUCKET_SHIFT) * 2 + 123;
        let mut q = CalendarQueue::default();
        for i in 0..100u64 {
            q.push(t(far), i);
        }
        q.push(t(1), 999);
        let ids: Vec<u64> = drain(&mut q).into_iter().map(|(_, i)| i).collect();
        assert_eq!(ids[0], 999);
        assert_eq!(ids[1..], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest_without_consuming() {
        let mut q = CalendarQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(t(50), 0);
        q.push(t(5), 1);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(5), 1)));
        assert_eq!(q.peek_time(), Some(t(50)));
    }

    #[test]
    fn interleaved_push_pop_tracks_len_and_high_water() {
        let mut q = CalendarQueue::default();
        q.push(t(1), 0);
        q.push(t(2), 1);
        q.push(t(3), 2);
        assert_eq!(q.pop(), Some((t(1), 0)));
        q.push(t(4), 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.high_water(), 3);
        drain(&mut q);
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn keyed_pushes_pop_in_key_order_not_push_order() {
        // Same-time entries with explicit keys dequeue by ascending key,
        // regardless of push order — including pushes into a live (already
        // sorted) bucket and entries that round-trip through the overflow.
        let far = ((BUCKETS as u64) << BUCKET_SHIFT) * 2 + 9;
        let mut cal = CalendarQueue::default();
        let mut heap = HeapQueue::default();
        for q in [&mut cal as &mut dyn Scheduler<u64>, &mut heap] {
            q.push_keyed(t(40), 7, 0);
            q.push_keyed(t(40), 2, 1);
            q.push_keyed(t(10), 5, 2);
            q.push_keyed(t(far), 9, 3);
            q.push_keyed(t(far), 1, 4);
            assert_eq!(q.pop_keyed(), Some((t(10), 5, 2)));
            q.push_keyed(t(40), 4, 5); // into the live sorted bucket
            assert_eq!(q.pop_keyed(), Some((t(40), 2, 1)));
            assert_eq!(q.pop_keyed(), Some((t(40), 4, 5)));
            assert_eq!(q.pop_keyed(), Some((t(40), 7, 0)));
            assert_eq!(q.pop_keyed(), Some((t(far), 1, 4)));
            assert_eq!(q.pop_keyed(), Some((t(far), 9, 3)));
            assert_eq!(q.pop_keyed(), None);
        }
    }

    /// Property: for any random event set — including far-future outliers,
    /// duplicates and pops interleaved with pushes — the calendar queue
    /// dispatches in exactly the order of the reference heap.
    #[test]
    fn matches_heap_on_random_workloads() {
        let mut rng = StdRng::seed_from_u64(0xCA1E_17DA);
        for _case in 0..50 {
            let mut cal = CalendarQueue::default();
            let mut heap = HeapQueue::default();
            let mut id = 0u64;
            let mut now = 0u64;
            for _step in 0..rng.gen_range(10..400usize) {
                if rng.gen_bool(0.6) {
                    // Mostly near-future, occasionally way past the horizon.
                    let jitter = if rng.gen_bool(0.05) {
                        rng.gen_range(0..2_000_000_000u64)
                    } else {
                        rng.gen_range(0..5_000_000u64)
                    };
                    let burst = rng.gen_range(1..5u64);
                    for _ in 0..burst {
                        cal.push(t(now + jitter), id);
                        heap.push(t(now + jitter), id);
                        id += 1;
                    }
                } else {
                    assert_eq!(cal.peek_time(), heap.peek_time());
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b);
                    if let Some((time, _)) = a {
                        now = time.as_micros();
                    }
                }
            }
            assert_eq!(drain(&mut cal), drain(&mut heap));
        }
    }
}
