//! The sans-IO application interface: protocol state machines implement
//! [`App`] and interact with the outside world exclusively through [`Ctx`].

use crate::addr::HostAddr;
use crate::pool::BufferPool;
use crate::profile::{Subsystem, SubsystemProfile};
use crate::telemetry::{
    EventBody, EventCategory, MetricsRegistry, SpanCtx, Telemetry, TelemetryEvent,
};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

/// Identifies a node within one simulator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a connection. Allocated when `connect` is called (before the
/// connection is established) so apps can correlate the eventual
/// `on_connected` / `on_connect_failed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// App-chosen discriminator delivered back in `on_timer`.
pub type TimerToken = u64;

/// Which side of a connection this node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Outbound,
    Inbound,
}

/// Actions an app can request during a callback; applied by the simulator
/// (or the live-TCP runtime) after the callback returns.
#[derive(Debug)]
pub(crate) enum Action {
    Connect {
        conn: ConnId,
        target: HostAddr,
    },
    Send {
        conn: ConnId,
        data: Vec<u8>,
    },
    Close {
        conn: ConnId,
    },
    Timer {
        delay: SimDuration,
        token: TimerToken,
    },
    Shutdown,
}

/// Execution context handed to every [`App`] callback.
///
/// Commands are buffered and applied after the callback returns, which keeps
/// the callback free of re-entrancy: an app never observes its own sends.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) local_addr: HostAddr,
    pub(crate) external_addr: HostAddr,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) actions: &'a mut Vec<Action>,
    pub(crate) next_conn: &'a mut u64,
    pub(crate) pool: &'a mut BufferPool,
    pub(crate) profile: &'a mut SubsystemProfile,
    pub(crate) registry: &'a mut MetricsRegistry,
    pub(crate) telemetry: &'a mut Telemetry,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The address this node *believes* it has. For NATed nodes this is the
    /// RFC 1918 address — exactly what a 2006 servent would advertise in a
    /// QUERYHIT.
    pub fn local_addr(&self) -> HostAddr {
        self.local_addr
    }

    /// The routable address peers can actually dial (differs from
    /// [`Ctx::local_addr`] behind NAT).
    pub fn external_addr(&self) -> HostAddr {
        self.external_addr
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Begins opening a connection to `target`. Returns the [`ConnId`] that
    /// `on_connected` or `on_connect_failed` will later reference.
    pub fn connect(&mut self, target: HostAddr) -> ConnId {
        let conn = ConnId(*self.next_conn);
        *self.next_conn += 1;
        self.actions.push(Action::Connect { conn, target });
        conn
    }

    /// Queues bytes on an established connection. Bytes sent on a closed or
    /// still-pending connection are silently dropped, mirroring how a
    /// real socket write after reset is lost. The copy lands in a pooled
    /// buffer that is recycled once the bytes are delivered.
    pub fn send(&mut self, conn: ConnId, data: &[u8]) {
        let buf = self.pool.acquire(data);
        self.actions.push(Action::Send { conn, data: buf });
    }

    /// Closes a connection; the peer receives `on_closed` after any
    /// in-flight data.
    pub fn close(&mut self, conn: ConnId) {
        self.actions.push(Action::Close { conn });
    }

    /// Arms a one-shot timer; `on_timer(token)` fires after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Takes this node offline: all its connections close and no further
    /// callbacks are delivered. Used to model churn.
    pub fn shutdown(&mut self) {
        self.actions.push(Action::Shutdown);
    }

    /// Times `f` into wall-clock bucket `s` of the simulation's
    /// [`SubsystemProfile`] — how apps attribute their scan-pipeline and
    /// query-matching work. Diagnostics only; never affects determinism.
    #[inline]
    pub fn time<R>(&mut self, s: Subsystem, f: impl FnOnce() -> R) -> R {
        self.profile.time(s, f)
    }

    /// Adds an already-measured wall-clock interval to bucket `s`. The
    /// batched scan service times its flush phases internally (they run
    /// without a `Ctx`) and attributes them here afterwards.
    #[inline]
    pub fn record_profile(&mut self, s: Subsystem, nanos: u64) {
        self.profile.record(s, nanos);
    }

    /// The simulation's metrics registry — where instrumented apps record
    /// named counters, gauges and histograms (rolled up into
    /// `SimMetrics::telemetry`).
    #[inline]
    pub fn registry(&mut self) -> &mut MetricsRegistry {
        self.registry
    }

    /// Whether telemetry events of `cat` go anywhere. Check this before
    /// constructing an expensive [`EventBody`] (string formatting etc.) so
    /// journal-off runs pay nothing.
    #[inline]
    pub fn telemetry_on(&self, cat: EventCategory) -> bool {
        self.telemetry.enabled(cat)
    }

    /// Emits one telemetry event stamped with the current sim-time. A no-op
    /// when no sink is attached (but prefer gating construction on
    /// [`Ctx::telemetry_on`]).
    #[inline]
    pub fn emit(&mut self, body: EventBody) {
        if self.telemetry.enabled(body.category()) {
            self.telemetry.emit(TelemetryEvent::new(self.now, body));
        }
    }

    /// Emits one telemetry event carrying causal identity (see
    /// [`crate::telemetry::span`]). Same discipline as [`Ctx::emit`]: gate
    /// both body *and* span derivation on [`Ctx::telemetry_on`] so
    /// journal-off runs construct nothing.
    #[inline]
    pub fn emit_spanned(&mut self, body: EventBody, span: SpanCtx) {
        if self.telemetry.enabled(body.category()) {
            self.telemetry
                .emit(TelemetryEvent::with_span(self.now, body, span));
        }
    }
}

/// A sans-IO network application (protocol node).
///
/// All methods have default no-op implementations so small test apps only
/// implement what they need. `Send` because sharded runs migrate each
/// shard's nodes onto a scoped worker thread for the duration of a window
/// (callbacks still never run concurrently *for the same node*, and all
/// cross-node interaction flows through simulator events).
#[allow(unused_variables)]
pub trait App: Send {
    /// Downcast support for harness access via `Simulator::with_node`:
    /// instrumented apps override this to return `Some(self)` so the
    /// harness can recover the concrete type.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Called once when the node comes online.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {}

    /// An outbound connect completed, or an inbound connection arrived.
    /// `peer` is the remote's routable address (what `accept()` would show).
    fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, dir: Direction, peer: HostAddr) {}

    /// An outbound connect failed (no listener, NAT-blocked, or peer gone).
    fn on_connect_failed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {}

    /// Bytes arrived. Chunk boundaries carry no meaning; apps must frame.
    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {}

    /// The peer closed the connection (or the node it lived on shut down).
    fn on_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {}

    /// A timer armed with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {}

    /// A sim-time barrier: the harness has run the simulation up to a
    /// quiescent point (e.g. the end of a crawl day) and gives the app a
    /// chance to settle deferred work — the batched scan service merges its
    /// pending verdicts here. Default: nothing deferred, nothing to do.
    fn on_barrier(&mut self, ctx: &mut Ctx<'_>) {}

    /// Deterministic deep-heap estimate of this app's state in bytes
    /// (container capacities, owned buffers, per-node routing tables).
    /// Summed across live nodes by [`crate::Simulator::record_memory`] into
    /// the bytes-per-node gauge; purely diagnostic, never affects the
    /// trajectory. Default: unaccounted (0).
    fn memory_estimate(&self) -> u64 {
        0
    }
}
