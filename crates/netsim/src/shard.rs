//! Sharded deterministic simulation: a conservative parallel event loop.
//!
//! With `SimConfig::shards >= 2` the node population is partitioned into
//! shards by [`shard_of`] — a pure function of `(seed, node id, shard
//! count)` — and each shard runs its own calendar queue, metrics slice,
//! buffer pool and telemetry buffer on a scoped worker thread. Execution
//! proceeds in lock-step sim-time windows: every shard processes the events
//! it owns with timestamps inside the current window, deposits cross-shard
//! messages into per-pair mailboxes, and meets the others at a barrier
//! where the next window is derived from the global minimum pending
//! timestamp (classic conservative lookahead, Chandy/Misra style).
//!
//! ## Determinism model
//!
//! The serial simulator threads *all* randomness through one `StdRng` in
//! event-dispatch order, so its trajectory cannot be reproduced by any
//! parallel execution. Sharded mode therefore runs a *different but equally
//! deterministic* trajectory built from thread-schedule-independent
//! ingredients:
//!
//! - **Per-node RNG streams.** Every node draws from its own
//!   `StdRng` seeded by `splitmix64(seed, node id)`; spawn-time draws
//!   (addresses, bandwidth, churn enrollment) and harness `rng()` sampling
//!   stay on a serial *control* stream seeded with the raw seed.
//! - **Total event order.** Every event carries a key
//!   `(source node, per-source counter)` packed into a `u64`; queues
//!   dispatch in `(time, key)` order, so the dispatch order is a pure
//!   function of the event set — not of which thread pushed first.
//! - **Latency floor.** Connection latency in sharded mode is
//!   `window + draw(latency_us)`, which preserves the configured variance
//!   while guaranteeing every potentially-cross-shard event lands at least
//!   one full window past its creation: the lookahead condition holds by
//!   construction, including under fault-plan latency spikes (they only
//!   push events further out). Zero-delay events (timers, churn, resets to
//!   self) are always shard-local.
//! - **Buffered telemetry.** Shards buffer events unsampled; the window
//!   leader merges them in `(time, key, index)` order and replays the merge
//!   through the control hub, so sampling counters advance in global order
//!   and journals are byte-identical across shard counts and schedules.
//!
//! The result: for a fixed seed and harness script, every shard count >= 2
//! produces byte-identical reports, journals and (normalized) metrics — on
//! any number of threads — while `shards = 1` keeps the untouched legacy
//! serial path.
//!
//! Connection establishment uses an explicit RTT handshake (`Attempt` →
//! `Established`/`Refused`) because the endpoints live on different shards:
//! each endpoint owns a local [`View`] of the connection (peer, latency,
//! outgoing bandwidth, link serialization) and all teardown flows through
//! keyed `Close`/`Reset` events.

use crate::addr::{AddressAllocator, HostAddr};
use crate::app::{Action, App, ConnId, Ctx, Direction, NodeId};
use crate::faults::ChunkFate;
use crate::metrics::SimMetrics;
use crate::pool::{BufferPool, Payload};
use crate::profile::Subsystem;
use crate::queue::{CalendarQueue, Scheduler};
use crate::sim::{NodeSpec, SimConfig};
use crate::telemetry::{
    EventBody, EventCategory, FaultKind, Gauge, SimHist, Telemetry, TelemetryEvent, CATEGORY_COUNT,
};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// SplitMix64: the standard 64-bit finalizer used to derive independent
/// per-node seeds from the run seed. Public-domain constants (Steele et
/// al., "Fast splittable pseudorandom number generators").
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Which shard owns `node`: a pure function of `(seed, node, shards)`.
/// `shards <= 1` maps everything to shard 0.
pub fn shard_of(seed: u64, node: usize, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (splitmix64(seed ^ splitmix64(node as u64)) % shards as u64) as usize
}

/// Event keys pack `(source node, per-source sequence)`; control-plane
/// events (spawn-time starts, churn enrollment) use this pseudo-source and
/// a global counter, sorting after node events at equal times.
const CONTROL_SRC: u32 = u32::MAX;

/// Window-end sentinel: the leader publishes this to stop the workers.
const STOP: u64 = u64::MAX;

fn pack(src: u32, seq: u32) -> u64 {
    ((src as u64) << 32) | seq as u64
}

/// Sharded-mode events. Unlike the serial `EventKind`, connection events
/// carry everything the receiving endpoint needs — there is no shared
/// connection table to consult.
enum Ev {
    Start {
        node: NodeId,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    ChurnDown {
        node: NodeId,
    },
    ChurnUp {
        node: NodeId,
    },
    /// SYN: dial arriving at the listener.
    Attempt {
        conn: ConnId,
        to: NodeId,
        initiator: NodeId,
        peer_addr: HostAddr,
        down_bps: u64,
        latency: SimDuration,
    },
    /// SYN-ACK: the listener accepted; the initiator opens its view.
    Established {
        conn: ConnId,
        to: NodeId,
        from: NodeId,
        peer_addr: HostAddr,
        down_bps: u64,
        latency: SimDuration,
    },
    /// The dial failed (no listener, NAT, self-dial, or dead acceptor).
    Refused {
        conn: ConnId,
        to: NodeId,
    },
    Data {
        conn: ConnId,
        to: NodeId,
        data: Payload,
    },
    /// FIN: ordered after queued data on the closer's direction.
    Close {
        conn: ConnId,
        to: NodeId,
    },
    /// Spontaneous reset (fault plan): notification only.
    Reset {
        conn: ConnId,
        to: NodeId,
    },
}

impl Ev {
    fn target(&self) -> NodeId {
        match self {
            Ev::Start { node }
            | Ev::Timer { node, .. }
            | Ev::ChurnDown { node }
            | Ev::ChurnUp { node } => *node,
            Ev::Attempt { to, .. }
            | Ev::Established { to, .. }
            | Ev::Refused { to, .. }
            | Ev::Data { to, .. }
            | Ev::Close { to, .. }
            | Ev::Reset { to, .. } => *to,
        }
    }
}

/// One endpoint's view of an open connection.
struct View {
    peer: NodeId,
    latency: SimDuration,
    /// min(own upload, peer download), the serialization rate outward.
    bandwidth_out: u64,
    /// Earliest time the outgoing link is free.
    next_free: SimTime,
}

struct NodeState {
    app: Option<Box<dyn App>>,
    local_addr: HostAddr,
    external_addr: HostAddr,
    upload_bps: u64,
    download_bps: u64,
    alive: bool,
    /// Spawn-time listener flag; an alive listener accepts dials (churn
    /// revival re-enables acceptance by restoring `alive`).
    listener: bool,
    /// This node's private random stream.
    rng: StdRng,
    /// ConnId allocator base: `(node id << 32) | local counter`, so ids are
    /// globally unique without cross-shard coordination.
    next_conn: u64,
    /// Event tie-break counter; see [`pack`].
    next_seq: u32,
    views: HashMap<u64, View>,
    /// Outbound dials awaiting `Established`/`Refused`.
    pending: HashSet<u64>,
}

/// A cross-shard message: a keyed event in flight between shards.
struct Msg {
    time: u64,
    key: u64,
    ev: Ev,
}

/// A buffered telemetry event tagged with the dispatch key that produced
/// it, for the leader's deterministic merge.
struct Tagged {
    time: u64,
    key: u64,
    idx: u32,
    ev: TelemetryEvent,
}

/// Per-node routing info shared read-only across all shards.
struct DirEntry {
    shard: usize,
    external_addr: HostAddr,
    local_addr: HostAddr,
}

/// One shard: the nodes it owns plus its private queue, metrics slice,
/// buffer pool and telemetry buffer. Migrates onto a scoped worker thread
/// for the duration of each `run_windows` call.
struct Shard {
    queue: CalendarQueue<Ev>,
    nodes: HashMap<usize, NodeState>,
    metrics: SimMetrics,
    pool: BufferPool,
    /// A buffering hub mirroring the control hub's category mask.
    telemetry: Telemetry,
    /// Key-tagged events drained after each dispatch, awaiting the leader.
    tel_buf: Vec<Tagged>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            queue: CalendarQueue::default(),
            nodes: HashMap::new(),
            metrics: SimMetrics::default(),
            pool: BufferPool::default(),
            telemetry: Telemetry::buffered([false; CATEGORY_COUNT]),
            tel_buf: Vec::new(),
        }
    }
}

/// Barrier-shared coordination state for one `run_windows` call.
struct Coord {
    n: usize,
    barrier: Barrier,
    /// Current window end (exclusive), or [`STOP`].
    window_end: AtomicU64,
    /// Each shard's earliest pending timestamp (`u64::MAX` when empty).
    next_times: Vec<AtomicU64>,
    /// Each shard's queue depth at the last window boundary.
    depths: Vec<AtomicU64>,
    /// `n * n` mailboxes indexed `[src * n + dst]`.
    mailboxes: Vec<Mutex<Vec<Msg>>>,
    /// Per-shard buffered telemetry awaiting the leader's merge.
    tel_slots: Vec<Mutex<Vec<Tagged>>>,
    /// Highest dispatched timestamp across all shards.
    max_time: AtomicU64,
}

/// The window leader's serial duties: merge telemetry, record the global
/// queue depth, derive the next window from the global minimum.
struct LeaderCtx<'a> {
    telemetry: &'a mut Telemetry,
    control: &'a mut SimMetrics,
    high_water: &'a mut u64,
    deadline_us: u64,
    window_us: u64,
    first: bool,
}

impl LeaderCtx<'_> {
    fn sequence(&mut self, coord: &Coord) {
        let t0 = Instant::now();
        if !self.first {
            let mut events: Vec<Tagged> = Vec::new();
            for slot in &coord.tel_slots {
                events.append(&mut slot.lock().unwrap());
            }
            if !events.is_empty() {
                events.sort_unstable_by_key(|e| (e.time, e.key, e.idx));
                for t in events {
                    self.telemetry.emit(t.ev);
                }
            }
            // Global scheduled-event depth at this window boundary. The
            // boundary sequence is a function of global minimum pending
            // times, so these samples are identical for every shard count.
            let depth: u64 = coord.depths.iter().map(|d| d.load(Ordering::SeqCst)).sum();
            self.control.telemetry.set_gauge(Gauge::QueueDepth, depth);
            self.control.telemetry.record(SimHist::QueueDepth, depth);
            if depth > *self.high_water {
                *self.high_water = depth;
            }
        }
        self.first = false;
        let gmin = coord
            .next_times
            .iter()
            .map(|t| t.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        let we = if gmin > self.deadline_us {
            STOP
        } else {
            gmin.saturating_add(self.window_us)
                .min(self.deadline_us + 1)
        };
        coord.window_end.store(we, Ordering::SeqCst);
        self.control
            .timing
            .record(Subsystem::ShardExchange, t0.elapsed().as_nanos() as u64);
    }
}

/// A shard's execution context for one stretch of work: the shard itself
/// plus read-only routing state and an outbox of cross-shard messages.
struct Lane<'a> {
    id: usize,
    shard: &'a mut Shard,
    dir: &'a [DirEntry],
    addr_owner: &'a HashMap<HostAddr, NodeId>,
    config: &'a SimConfig,
    window: SimDuration,
    now: SimTime,
    outbox: Vec<Vec<Msg>>,
}

fn emit_fault(tel: &mut Telemetry, now: SimTime, kind: FaultKind) {
    if tel.enabled(EventCategory::Fault) {
        tel.emit(TelemetryEvent::new(now, EventBody::FaultInjected { kind }));
    }
}

fn drop_chunk(shard: &mut Shard, now: SimTime, payload: Payload) {
    shard.metrics.faults_chunks_dropped += 1;
    emit_fault(&mut shard.telemetry, now, FaultKind::ChunkDrop);
    shard.metrics.bytes_dropped += payload.len() as u64;
    if let Payload::Owned(v) = payload {
        shard.pool.release(v);
    }
}

impl Lane<'_> {
    /// Stamps an event with the sender's next key and routes it.
    fn send_from(&mut self, src: NodeId, time: SimTime, ev: Ev) {
        let st = self.shard.nodes.get_mut(&src.0).expect("sender owned here");
        let key = pack(src.0 as u32, st.next_seq);
        st.next_seq += 1;
        self.route(time, key, ev);
    }

    fn route(&mut self, time: SimTime, key: u64, ev: Ev) {
        let dst = self.dir[ev.target().0].shard;
        if dst == self.id {
            self.shard.queue.push_keyed(time, key, ev);
        } else {
            self.outbox[dst].push(Msg {
                time: time.as_micros(),
                key,
                ev,
            });
        }
    }

    fn dispatch(&mut self, time: SimTime, ev: Ev) {
        self.now = time;
        self.shard.metrics.events_processed += 1;
        match ev {
            Ev::Start { node } => {
                if self.alive(node) {
                    self.with_app(node, |app, ctx| app.on_start(ctx));
                }
            }
            Ev::Timer { node, token } => {
                if self.alive(node) {
                    self.shard.metrics.timers_fired += 1;
                    self.with_app(node, |app, ctx| app.on_timer(ctx, token));
                }
            }
            Ev::Attempt {
                conn,
                to,
                initiator,
                peer_addr,
                down_bps,
                latency,
            } => {
                let shard = &mut *self.shard;
                let st = shard.nodes.get_mut(&to.0).expect("target owned here");
                if st.alive && st.listener {
                    let bw = st.upload_bps.min(down_bps).max(1);
                    st.views.insert(
                        conn.0,
                        View {
                            peer: initiator,
                            latency,
                            bandwidth_out: bw,
                            next_free: time,
                        },
                    );
                    shard.metrics.conns_established += 1;
                    let my_addr = st.external_addr;
                    let my_down = st.download_bps;
                    // SYN-ACK first so it keys ahead of anything the
                    // acceptor's callback sends on the new connection.
                    self.send_from(
                        to,
                        time + latency,
                        Ev::Established {
                            conn,
                            to: initiator,
                            from: to,
                            peer_addr: my_addr,
                            down_bps: my_down,
                            latency,
                        },
                    );
                    self.with_app(to, |app, ctx| {
                        app.on_connected(ctx, conn, Direction::Inbound, peer_addr)
                    });
                } else {
                    self.send_from(
                        to,
                        time + latency,
                        Ev::Refused {
                            conn,
                            to: initiator,
                        },
                    );
                }
            }
            Ev::Established {
                conn,
                to,
                from,
                peer_addr,
                down_bps,
                latency,
            } => {
                let shard = &mut *self.shard;
                let st = shard.nodes.get_mut(&to.0).expect("target owned here");
                if st.alive && st.pending.remove(&conn.0) {
                    let bw = st.upload_bps.min(down_bps).max(1);
                    st.views.insert(
                        conn.0,
                        View {
                            peer: from,
                            latency,
                            bandwidth_out: bw,
                            next_free: time,
                        },
                    );
                    self.with_app(to, |app, ctx| {
                        app.on_connected(ctx, conn, Direction::Outbound, peer_addr)
                    });
                } else {
                    // Stale accept (initiator died or abandoned the dial):
                    // tell the acceptor to reap its view.
                    self.send_from(to, time + latency, Ev::Close { conn, to: from });
                }
            }
            Ev::Refused { conn, to } => {
                let shard = &mut *self.shard;
                let st = shard.nodes.get_mut(&to.0).expect("target owned here");
                if st.pending.remove(&conn.0) {
                    shard.metrics.conns_failed += 1;
                    if st.alive {
                        self.with_app(to, |app, ctx| app.on_connect_failed(ctx, conn));
                    }
                }
            }
            Ev::Data { conn, to, data } => {
                let shard = &mut *self.shard;
                let st = shard.nodes.get_mut(&to.0).expect("target owned here");
                if st.alive && st.views.contains_key(&conn.0) {
                    shard.metrics.bytes_delivered += data.len() as u64;
                    self.with_app(to, |app, ctx| app.on_data(ctx, conn, &data));
                } else {
                    shard.metrics.bytes_dropped += data.len() as u64;
                }
                self.shard.pool.recycle(data);
            }
            Ev::Close { conn, to } => {
                let shard = &mut *self.shard;
                let st = shard.nodes.get_mut(&to.0).expect("target owned here");
                if st.views.remove(&conn.0).is_some() {
                    shard.metrics.conns_closed += 1;
                    if st.alive {
                        self.with_app(to, |app, ctx| app.on_closed(ctx, conn));
                    }
                }
            }
            Ev::Reset { conn, to } => {
                let st = self.shard.nodes.get_mut(&to.0).expect("target owned here");
                st.views.remove(&conn.0);
                st.pending.remove(&conn.0);
                if st.alive {
                    self.with_app(to, |app, ctx| app.on_closed(ctx, conn));
                }
            }
            Ev::ChurnDown { node } => self.churn_down(node),
            Ev::ChurnUp { node } => self.churn_up(node),
        }
    }

    fn alive(&self, node: NodeId) -> bool {
        self.shard
            .nodes
            .get(&node.0)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    fn with_app(&mut self, node: NodeId, f: impl FnOnce(&mut Box<dyn App>, &mut Ctx<'_>)) {
        let shard = &mut *self.shard;
        let st = match shard.nodes.get_mut(&node.0) {
            Some(s) => s,
            None => return,
        };
        let mut app = match st.app.take() {
            Some(a) => a,
            None => return,
        };
        let mut actions = Vec::new();
        let start = Instant::now();
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                local_addr: st.local_addr,
                external_addr: st.external_addr,
                rng: &mut st.rng,
                actions: &mut actions,
                next_conn: &mut st.next_conn,
                pool: &mut shard.pool,
                profile: &mut shard.metrics.timing,
                registry: &mut shard.metrics.telemetry,
                telemetry: &mut shard.telemetry,
            };
            f(&mut app, &mut ctx);
        }
        let mid = Instant::now();
        shard
            .metrics
            .timing
            .record(Subsystem::App, (mid - start).as_nanos() as u64);
        st.app = Some(app);
        self.apply(node, actions);
        self.shard
            .metrics
            .timing
            .record(Subsystem::TcpPump, mid.elapsed().as_nanos() as u64);
    }

    /// Harness entry point (serial, between windows): like [`Lane::with_app`]
    /// but with a return value and an offline check.
    fn with_node_r<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn App, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        let shard = &mut *self.shard;
        let st = shard.nodes.get_mut(&node.0)?;
        if !st.alive {
            return None;
        }
        let mut app = st.app.take()?;
        let mut actions = Vec::new();
        let start = Instant::now();
        let r;
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                local_addr: st.local_addr,
                external_addr: st.external_addr,
                rng: &mut st.rng,
                actions: &mut actions,
                next_conn: &mut st.next_conn,
                pool: &mut shard.pool,
                profile: &mut shard.metrics.timing,
                registry: &mut shard.metrics.telemetry,
                telemetry: &mut shard.telemetry,
            };
            r = f(app.as_mut(), &mut ctx);
        }
        let mid = Instant::now();
        shard
            .metrics
            .timing
            .record(Subsystem::App, (mid - start).as_nanos() as u64);
        st.app = Some(app);
        self.apply(node, actions);
        self.shard
            .metrics
            .timing
            .record(Subsystem::TcpPump, mid.elapsed().as_nanos() as u64);
        Some(r)
    }

    /// Like [`Lane::with_app`] but discards buffered actions — churn death
    /// semantics: the app's bookkeeping updates, nothing leaves the host.
    fn notify_discard(&mut self, node: NodeId, f: impl FnOnce(&mut Box<dyn App>, &mut Ctx<'_>)) {
        let shard = &mut *self.shard;
        let st = match shard.nodes.get_mut(&node.0) {
            Some(s) => s,
            None => return,
        };
        let mut app = match st.app.take() {
            Some(a) => a,
            None => return,
        };
        let mut actions = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                local_addr: st.local_addr,
                external_addr: st.external_addr,
                rng: &mut st.rng,
                actions: &mut actions,
                next_conn: &mut st.next_conn,
                pool: &mut shard.pool,
                profile: &mut shard.metrics.timing,
                registry: &mut shard.metrics.telemetry,
                telemetry: &mut shard.telemetry,
            };
            f(&mut app, &mut ctx);
        }
        st.app = Some(app);
    }

    fn apply(&mut self, node: NodeId, actions: Vec<Action>) {
        for act in actions {
            match act {
                Action::Connect { conn, target } => self.start_dial(node, conn, target),
                Action::Send { conn, data } => self.send_bytes(node, conn, data),
                Action::Close { conn } => self.close_conn(node, conn),
                Action::Timer { delay, token } => {
                    let when = self.now + delay;
                    self.send_from(node, when, Ev::Timer { node, token });
                }
                Action::Shutdown => self.shutdown_node(node),
            }
        }
    }

    fn start_dial(&mut self, node: NodeId, conn: ConnId, target: HostAddr) {
        let shard = &mut *self.shard;
        let st = shard.nodes.get_mut(&node.0).expect("dialer owned here");
        let mut raw = st
            .rng
            .gen_range(self.config.latency_us.0..=self.config.latency_us.1);
        let mult = self.config.faults.latency_mult(&mut st.rng);
        if mult > 1 {
            shard.metrics.faults_latency_spikes += 1;
            emit_fault(&mut shard.telemetry, self.now, FaultKind::LatencySpike);
            raw *= mult;
        }
        // The latency floor: one full window on top of the configured draw
        // keeps cross-shard deliveries safely past the current lookahead.
        let latency = self.window + SimDuration::from_micros(raw);
        st.pending.insert(conn.0);
        let my_addr = st.external_addr;
        let down_bps = st.download_bps;
        let when = self.now + latency;
        let owner = self.addr_owner.get(&target).copied().filter(|&o| o != node);
        match owner {
            Some(acc) => self.send_from(
                node,
                when,
                Ev::Attempt {
                    conn,
                    to: acc,
                    initiator: node,
                    peer_addr: my_addr,
                    down_bps,
                    latency,
                },
            ),
            // Nobody ever listened there (or self-dial): refuse after one
            // latency, like a serial failed ConnAttempt.
            None => self.send_from(node, when, Ev::Refused { conn, to: node }),
        }
    }

    fn send_bytes(&mut self, from: NodeId, conn: ConnId, data: Vec<u8>) {
        let shard = &mut *self.shard;
        let st = shard.nodes.get_mut(&from.0).expect("sender owned here");
        let (to, latency, arrival_base) = match st.views.get_mut(&conn.0) {
            Some(v) => {
                let start = v.next_free.max(self.now);
                let transmit =
                    SimDuration::from_micros(data.len() as u64 * 1_000_000 / v.bandwidth_out);
                v.next_free = start + transmit;
                (v.peer, v.latency, start + transmit + v.latency)
            }
            None => {
                // Closed or still-pending connection: bytes are lost, like
                // a socket write after reset.
                shard.metrics.bytes_dropped += data.len() as u64;
                shard.pool.release(data);
                return;
            }
        };
        if self.config.faults.send_resets(&mut st.rng) {
            st.views.remove(&conn.0);
            shard.metrics.faults_resets += 1;
            emit_fault(&mut shard.telemetry, self.now, FaultKind::Reset);
            shard.metrics.conns_closed += 1;
            shard.metrics.bytes_dropped += data.len() as u64;
            shard.pool.release(data);
            self.send_from(from, self.now, Ev::Reset { conn, to: from });
            self.send_from(from, self.now + latency, Ev::Reset { conn, to });
            return;
        }
        match self.config.mss {
            Some(mss) if data.len() > mss => {
                let total = data.len();
                let buf = Arc::new(data);
                let mut t = arrival_base;
                let mut start = 0;
                while start < total {
                    let end = (start + mss).min(total);
                    let payload = Payload::Shared {
                        buf: buf.clone(),
                        start,
                        end,
                    };
                    if let Some(payload) = self.fault_chunk(from, payload) {
                        self.send_from(
                            from,
                            t,
                            Ev::Data {
                                conn,
                                to,
                                data: payload,
                            },
                        );
                    }
                    t += SimDuration::from_micros(1);
                    start = end;
                }
            }
            _ => {
                if let Some(payload) = self.fault_chunk(from, Payload::Owned(data)) {
                    self.send_from(
                        from,
                        arrival_base,
                        Ev::Data {
                            conn,
                            to,
                            data: payload,
                        },
                    );
                }
            }
        }
    }

    fn fault_chunk(&mut self, from: NodeId, payload: Payload) -> Option<Payload> {
        let faults = self.config.faults;
        if faults.chunk_loss == 0.0 && faults.corrupt == 0.0 {
            return Some(payload);
        }
        let shard = &mut *self.shard;
        let st = shard.nodes.get_mut(&from.0).expect("sender owned here");
        match faults.chunk_fate(&mut st.rng) {
            ChunkFate::Deliver => Some(payload),
            ChunkFate::Drop => {
                drop_chunk(shard, self.now, payload);
                None
            }
            ChunkFate::Truncate => {
                let len = payload.len();
                let keep = len / 2;
                if keep == 0 {
                    drop_chunk(shard, self.now, payload);
                    return None;
                }
                shard.metrics.faults_chunks_corrupted += 1;
                emit_fault(&mut shard.telemetry, self.now, FaultKind::ChunkTruncate);
                shard.metrics.bytes_dropped += (len - keep) as u64;
                Some(match payload {
                    Payload::Owned(mut v) => {
                        v.truncate(keep);
                        Payload::Owned(v)
                    }
                    Payload::Shared { buf, start, .. } => Payload::Shared {
                        buf,
                        start,
                        end: start + keep,
                    },
                })
            }
            ChunkFate::BitFlip => {
                let len = payload.len();
                if len == 0 {
                    return Some(payload);
                }
                shard.metrics.faults_chunks_corrupted += 1;
                emit_fault(&mut shard.telemetry, self.now, FaultKind::ChunkBitFlip);
                let bit = st.rng.gen_range(0..len * 8);
                Some(match payload {
                    Payload::Owned(mut v) => {
                        v[bit / 8] ^= 1 << (bit % 8);
                        Payload::Owned(v)
                    }
                    Payload::Shared { buf, start, end } => {
                        let mut v = buf[start..end].to_vec();
                        v[bit / 8] ^= 1 << (bit % 8);
                        Payload::Owned(v)
                    }
                })
            }
        }
    }

    fn close_conn(&mut self, node: NodeId, conn: ConnId) {
        let st = self
            .shard
            .nodes
            .get_mut(&node.0)
            .expect("closer owned here");
        if let Some(view) = st.views.remove(&conn.0) {
            // FIN is ordered after any queued data on this direction; the
            // peer counts the close when the FIN lands.
            let when = view.next_free.max(self.now) + view.latency;
            let peer = view.peer;
            self.send_from(node, when, Ev::Close { conn, to: peer });
        } else {
            // Abandoning a pending dial: a later Established will be
            // answered with a reaping Close, a Refused finds nothing.
            st.pending.remove(&conn.0);
        }
    }

    fn shutdown_node(&mut self, node: NodeId) {
        let st = match self.shard.nodes.get_mut(&node.0) {
            Some(s) => s,
            None => return,
        };
        if !st.alive {
            return;
        }
        st.alive = false;
        self.shard.metrics.nodes_stopped += 1;
        let (open, pending) = self.take_conns(node);
        for &c in &open {
            self.close_conn(node, ConnId(c));
        }
        self.shard.metrics.conns_failed += pending.len() as u64;
    }

    /// Sorted open-view and pending-dial ids of `node`, with the pending
    /// set cleared (the caller decides what to do with the open views).
    fn take_conns(&mut self, node: NodeId) -> (Vec<u64>, Vec<u64>) {
        let st = self.shard.nodes.get_mut(&node.0).expect("node owned here");
        let mut open: Vec<u64> = st.views.keys().copied().collect();
        open.sort_unstable();
        let mut pending: Vec<u64> = st.pending.drain().collect();
        pending.sort_unstable();
        (open, pending)
    }

    fn churn_down(&mut self, node: NodeId) {
        let shard = &mut *self.shard;
        let st = match shard.nodes.get_mut(&node.0) {
            Some(s) => s,
            None => return,
        };
        if !st.alive {
            // The app shut itself down; that death is permanent.
            return;
        }
        shard.metrics.faults_churn_downs += 1;
        if shard.telemetry.enabled(EventCategory::Churn) {
            shard.telemetry.emit(TelemetryEvent::new(
                self.now,
                EventBody::ChurnDown {
                    node: node.0 as u64,
                },
            ));
        }
        let (open, pending) = self.take_conns(node);
        for &c in &open {
            self.close_conn(node, ConnId(c));
        }
        self.shard.metrics.conns_failed += pending.len() as u64;
        let st = self.shard.nodes.get_mut(&node.0).expect("node owned here");
        st.alive = false;
        self.shard.metrics.nodes_stopped += 1;
        for &c in &open {
            self.notify_discard(node, |app, ctx| app.on_closed(ctx, ConnId(c)));
        }
        for &c in &pending {
            self.notify_discard(node, |app, ctx| app.on_connect_failed(ctx, ConnId(c)));
        }
        let churn = self.config.faults.churn.expect("churn event implies plan");
        let st = self.shard.nodes.get_mut(&node.0).expect("node owned here");
        let down = st
            .rng
            .gen_range(churn.downtime_secs.0..=churn.downtime_secs.1);
        let when = self.now + SimDuration::from_secs(down);
        self.send_from(node, when, Ev::ChurnUp { node });
    }

    fn churn_up(&mut self, node: NodeId) {
        let shard = &mut *self.shard;
        let st = match shard.nodes.get_mut(&node.0) {
            Some(s) => s,
            None => return,
        };
        if st.alive {
            return;
        }
        st.alive = true;
        shard.metrics.faults_churn_ups += 1;
        if shard.telemetry.enabled(EventCategory::Churn) {
            shard.telemetry.emit(TelemetryEvent::new(
                self.now,
                EventBody::ChurnUp {
                    node: node.0 as u64,
                },
            ));
        }
        let now = self.now;
        self.send_from(node, now, Ev::Start { node });
        let churn = self.config.faults.churn.expect("churn event implies plan");
        let st = self.shard.nodes.get_mut(&node.0).expect("node owned here");
        let up = st.rng.gen_range(churn.uptime_secs.0..=churn.uptime_secs.1);
        let when = now + SimDuration::from_secs(up);
        self.send_from(node, when, Ev::ChurnDown { node });
    }

    /// Moves this dispatch's buffered telemetry into the shard's tagged
    /// buffer, preserving emission order under the dispatch key.
    fn drain_telemetry(&mut self, time: u64, key: u64) {
        let events = self.shard.telemetry.take_buffered();
        for (i, ev) in events.into_iter().enumerate() {
            self.shard.tel_buf.push(Tagged {
                time,
                key,
                idx: i as u32,
                ev,
            });
        }
    }
}

/// One shard's window loop. All shards run this in lock-step; shard 0 (on
/// the calling thread) additionally carries the [`LeaderCtx`] duties. Three
/// barrier crossings per window: (A) window published, (B) processing and
/// mailbox deposits done, (C) drains and next-time publications done.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    id: usize,
    shard: &mut Shard,
    coord: &Coord,
    dir: &[DirEntry],
    addr_owner: &HashMap<HostAddr, NodeId>,
    config: &SimConfig,
    window: SimDuration,
    mut leader: Option<LeaderCtx<'_>>,
) {
    let n = coord.n;
    let t = &shard.metrics.timing;
    let before_cb = t.nanos(Subsystem::App) + t.nanos(Subsystem::TcpPump);
    let mut proc_nanos = 0u64;
    let mut xchg_nanos = 0u64;
    let mut max_t = 0u64;
    let mut outbox: Vec<Vec<Msg>> = (0..n).map(|_| Vec::new()).collect();
    loop {
        let tb = Instant::now();
        if let Some(l) = leader.as_mut() {
            l.sequence(coord);
        }
        coord.barrier.wait(); // A: window published
        let we = coord.window_end.load(Ordering::SeqCst);
        xchg_nanos += tb.elapsed().as_nanos() as u64;
        if we == STOP {
            break;
        }
        let tp = Instant::now();
        {
            let mut lane = Lane {
                id,
                shard: &mut *shard,
                dir,
                addr_owner,
                config,
                window,
                now: SimTime::ZERO,
                outbox,
            };
            while let Some(t) = lane.shard.queue.peek_time() {
                if t.as_micros() >= we {
                    break;
                }
                let (time, key, ev) = lane.shard.queue.pop_keyed().expect("peeked");
                lane.dispatch(time, ev);
                lane.drain_telemetry(time.as_micros(), key);
                if time.as_micros() > max_t {
                    max_t = time.as_micros();
                }
            }
            outbox = lane.outbox;
        }
        proc_nanos += tp.elapsed().as_nanos() as u64;
        let tx = Instant::now();
        for (dst, msgs) in outbox.iter_mut().enumerate() {
            if !msgs.is_empty() {
                coord.mailboxes[id * n + dst].lock().unwrap().append(msgs);
            }
        }
        coord.barrier.wait(); // B: deposits done
        for src in 0..n {
            let incoming = std::mem::take(&mut *coord.mailboxes[src * n + id].lock().unwrap());
            for m in incoming {
                shard
                    .queue
                    .push_keyed(SimTime::from_micros(m.time), m.key, m.ev);
            }
        }
        let next = shard.queue.peek_time().map_or(u64::MAX, |t| t.as_micros());
        coord.next_times[id].store(next, Ordering::SeqCst);
        coord.depths[id].store(shard.queue.len() as u64, Ordering::SeqCst);
        if !shard.tel_buf.is_empty() {
            coord.tel_slots[id]
                .lock()
                .unwrap()
                .append(&mut shard.tel_buf);
        }
        xchg_nanos += tx.elapsed().as_nanos() as u64;
        coord.barrier.wait(); // C: publications done
    }
    coord.max_time.fetch_max(max_t, Ordering::SeqCst);
    let t = &shard.metrics.timing;
    let cb_delta = t.nanos(Subsystem::App) + t.nanos(Subsystem::TcpPump) - before_cb;
    shard
        .metrics
        .timing
        .record(Subsystem::Scheduler, proc_nanos.saturating_sub(cb_delta));
    shard
        .metrics
        .timing
        .record(Subsystem::ShardExchange, xchg_nanos);
}

/// The sharded deterministic simulator. Constructed by `Simulator::new`
/// when `SimConfig::shards >= 2`; mirrors the serial simulator's public
/// surface (the `Simulator` methods delegate here).
pub(crate) struct ShardedSim {
    config: SimConfig,
    seed: u64,
    n_shards: usize,
    window: SimDuration,
    now: SimTime,
    /// The serial control stream: spawn-time draws and harness `rng()`.
    control_rng: StdRng,
    alloc: AddressAllocator,
    shards: Vec<Shard>,
    dir: Vec<DirEntry>,
    /// Listener address -> node, registered at spawn. Liveness and listener
    /// status are re-checked by the owner shard at `Attempt` delivery.
    addr_owner: HashMap<HostAddr, NodeId>,
    /// Control-plane metrics slice (spawn counts, leader-recorded depth
    /// samples and sequencing time).
    control: SimMetrics,
    /// The merged snapshot handed out by `metrics()`; refreshed after every
    /// mutating entry point.
    merged: SimMetrics,
    /// The control telemetry hub: real sinks, global sampling counters.
    telemetry: Telemetry,
    control_seq: u32,
    /// Peak global queue depth over all window boundaries.
    global_queue_high_water: u64,
}

impl ShardedSim {
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let n = config.shards.max(2);
        let window = SimDuration::from_micros(config.shard_window_us.max(1));
        ShardedSim {
            seed,
            n_shards: n,
            window,
            now: SimTime::ZERO,
            control_rng: StdRng::seed_from_u64(seed),
            alloc: AddressAllocator::new(),
            shards: (0..n).map(|_| Shard::new()).collect(),
            dir: Vec::new(),
            addr_owner: HashMap::new(),
            control: SimMetrics::default(),
            merged: SimMetrics::default(),
            telemetry: Telemetry::disabled(),
            control_seq: 0,
            global_queue_high_water: 0,
            config,
        }
    }

    fn control_key(&mut self) -> u64 {
        let k = pack(CONTROL_SRC, self.control_seq);
        self.control_seq += 1;
        k
    }

    pub fn spawn(&mut self, spec: NodeSpec, app: Box<dyn App>) -> NodeId {
        let id = NodeId(self.dir.len());
        let external_ip = self.alloc.alloc_public(&mut self.control_rng);
        let port = spec.listen_port.unwrap_or(0);
        let external_addr = HostAddr::new(external_ip, port);
        let local_addr = if spec.nat {
            HostAddr::new(self.alloc.alloc_private(&mut self.control_rng), port)
        } else {
            external_addr
        };
        let upload = spec.upload_bps.unwrap_or_else(|| {
            self.control_rng
                .gen_range(self.config.upload_bps.0..=self.config.upload_bps.1)
        });
        let download = spec.download_bps.unwrap_or_else(|| {
            self.control_rng
                .gen_range(self.config.download_bps.0..=self.config.download_bps.1)
        });
        let listener = spec.listen_port.is_some() && !spec.nat;
        let sh = shard_of(self.seed, id.0, self.n_shards);
        self.shards[sh].nodes.insert(
            id.0,
            NodeState {
                app: Some(app),
                local_addr,
                external_addr,
                upload_bps: upload,
                download_bps: download,
                alive: true,
                listener,
                rng: StdRng::seed_from_u64(splitmix64(
                    self.seed ^ splitmix64(id.0 as u64 ^ 0x5EED_0000_0000_0001),
                )),
                next_conn: (id.0 as u64) << 32,
                next_seq: 0,
                views: HashMap::new(),
                pending: HashSet::new(),
            },
        );
        self.dir.push(DirEntry {
            shard: sh,
            external_addr,
            local_addr,
        });
        if listener {
            self.addr_owner.insert(external_addr, id);
        }
        self.control.nodes_spawned += 1;
        let key = self.control_key();
        self.shards[sh]
            .queue
            .push_keyed(self.now, key, Ev::Start { node: id });
        if let Some(churn) = self.config.faults.churn {
            if !spec.durable && churn.fraction > 0.0 && self.control_rng.gen_bool(churn.fraction) {
                let up = self
                    .control_rng
                    .gen_range(churn.uptime_secs.0..=churn.uptime_secs.1);
                let key = self.control_key();
                self.shards[sh].queue.push_keyed(
                    self.now + SimDuration::from_secs(up),
                    key,
                    Ev::ChurnDown { node: id },
                );
            }
        }
        self.refresh_merged();
        id
    }

    /// Runs `f` on a serial lane for shard `sh`, then delivers its outbox
    /// and replays its buffered telemetry through the control hub.
    fn serial_lane<R>(&mut self, sh: usize, f: impl FnOnce(&mut Lane<'_>) -> R) -> R {
        let n = self.n_shards;
        let ShardedSim {
            shards,
            dir,
            addr_owner,
            config,
            window,
            now,
            telemetry,
            ..
        } = self;
        let mut lane = Lane {
            id: sh,
            shard: &mut shards[sh],
            dir,
            addr_owner,
            config,
            window: *window,
            now: *now,
            outbox: (0..n).map(|_| Vec::new()).collect(),
        };
        let r = f(&mut lane);
        let outbox = std::mem::take(&mut lane.outbox);
        for (dst, msgs) in outbox.into_iter().enumerate() {
            for m in msgs {
                shards[dst]
                    .queue
                    .push_keyed(SimTime::from_micros(m.time), m.key, m.ev);
            }
        }
        for ev in shards[sh].telemetry.take_buffered() {
            telemetry.emit(ev);
        }
        r
    }

    pub fn with_node<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn App, &mut Ctx<'_>) -> R,
    ) -> Option<R> {
        let sh = self.dir[node.0].shard;
        let r = self.serial_lane(sh, |lane| lane.with_node_r(node, f));
        self.refresh_merged();
        r
    }

    pub fn stop_node(&mut self, node: NodeId) {
        let sh = self.dir[node.0].shard;
        self.serial_lane(sh, |lane| lane.shutdown_node(node));
        self.refresh_merged();
    }

    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before: u64 = self.shards.iter().map(|s| s.metrics.events_processed).sum();
        self.run_windows(deadline);
        if self.now < deadline {
            self.now = deadline;
        }
        self.refresh_merged();
        let after: u64 = self.shards.iter().map(|s| s.metrics.events_processed).sum();
        after - before
    }

    pub fn run_to_quiescence(&mut self) -> u64 {
        let before: u64 = self.shards.iter().map(|s| s.metrics.events_processed).sum();
        self.run_windows(SimTime::from_micros(u64::MAX - 2));
        self.refresh_merged();
        let after: u64 = self.shards.iter().map(|s| s.metrics.events_processed).sum();
        after - before
    }

    fn run_windows(&mut self, deadline: SimTime) {
        let n = self.n_shards;
        let deadline_us = deadline.as_micros().min(u64::MAX - 2);
        let window_us = self.window.as_micros();
        let next_times: Vec<AtomicU64> = self
            .shards
            .iter_mut()
            .map(|s| AtomicU64::new(s.queue.peek_time().map_or(u64::MAX, |t| t.as_micros())))
            .collect();
        let coord = Coord {
            n,
            barrier: Barrier::new(n),
            window_end: AtomicU64::new(0),
            next_times,
            depths: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mailboxes: (0..n * n).map(|_| Mutex::new(Vec::new())).collect(),
            tel_slots: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            max_time: AtomicU64::new(self.now.as_micros()),
        };
        {
            let ShardedSim {
                shards,
                dir,
                addr_owner,
                config,
                window,
                telemetry,
                control,
                global_queue_high_water,
                ..
            } = self;
            let window = *window;
            let dir: &[DirEntry] = dir;
            let addr_owner: &HashMap<HostAddr, NodeId> = addr_owner;
            let config: &SimConfig = config;
            let leader = LeaderCtx {
                telemetry,
                control,
                high_water: global_queue_high_water,
                deadline_us,
                window_us,
                first: true,
            };
            let coord = &coord;
            std::thread::scope(|s| {
                let mut iter = shards.iter_mut();
                let shard0 = iter.next().expect("at least two shards");
                for (i, shard) in iter.enumerate() {
                    let id = i + 1;
                    s.spawn(move || {
                        worker_loop(id, shard, coord, dir, addr_owner, config, window, None)
                    });
                }
                worker_loop(
                    0,
                    shard0,
                    coord,
                    dir,
                    addr_owner,
                    config,
                    window,
                    Some(leader),
                );
            });
        }
        let max_t = coord.max_time.load(Ordering::SeqCst);
        if max_t > self.now.as_micros() {
            self.now = SimTime::from_micros(max_t);
        }
    }

    pub fn sample_queue_depth(&mut self) {
        let depth: u64 = self.shards.iter().map(|s| s.queue.len() as u64).sum();
        self.control.telemetry.set_gauge(Gauge::QueueDepth, depth);
        self.control.telemetry.record(SimHist::QueueDepth, depth);
        self.refresh_merged();
    }

    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        let mask = self.telemetry.enabled_mask();
        for shard in &mut self.shards {
            shard.telemetry = Telemetry::buffered(mask);
        }
    }

    pub fn flush_telemetry(&mut self) {
        self.telemetry.flush();
    }

    pub fn node_addr(&self, node: NodeId) -> HostAddr {
        self.dir[node.0].external_addr
    }

    pub fn node_local_addr(&self, node: NodeId) -> HostAddr {
        self.dir[node.0].local_addr
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        let sh = self.dir[node.0].shard;
        self.shards[sh]
            .nodes
            .get(&node.0)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn metrics(&self) -> &SimMetrics {
        &self.merged
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.control_rng
    }

    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    pub fn shard_count(&self) -> usize {
        self.n_shards
    }

    pub fn window_us(&self) -> u64 {
        self.window.as_micros()
    }

    /// Sharded counterpart of `Simulator::record_memory`: sums every live
    /// app's estimate across all shards into the control metrics slice
    /// (shard slices keep the zero default, so the merge is the sum).
    pub fn record_memory(&mut self) {
        let mut mem = crate::metrics::MemoryStats::default();
        for shard in &self.shards {
            for st in shard.nodes.values() {
                if let Some(app) = &st.app {
                    mem.nodes += 1;
                    mem.app_bytes += app.memory_estimate();
                }
            }
        }
        let (peak, current) = crate::metrics::process_rss_kb();
        mem.peak_rss_kb = peak;
        mem.current_rss_kb = current;
        self.control.memory = mem;
        self.refresh_merged();
    }

    /// Rebuilds the merged snapshot: control slice plus every shard slice,
    /// with pool/queue statistics synced first. The merged queue high-water
    /// is the peak *global* boundary depth (shard-count-invariant), not the
    /// max of per-shard peaks.
    fn refresh_merged(&mut self) {
        for shard in &mut self.shards {
            let s = &shard.pool.stats;
            shard.metrics.pool_hits = s.hits;
            shard.metrics.pool_misses = s.misses;
            shard.metrics.pool_recycled_bytes = s.recycled_bytes;
            shard.metrics.pool_high_water = s.high_water;
            shard.metrics.queue_high_water = shard.queue.high_water() as u64;
        }
        let mut m = self.control.clone();
        for shard in &self.shards {
            m.merge(&shard.metrics);
        }
        let depth_now: u64 = self.shards.iter().map(|s| s.queue.len() as u64).sum();
        m.queue_high_water = self.global_queue_high_water.max(depth_now);
        self.merged = m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::sim::Simulator;

    #[test]
    fn shard_assignment_is_pure_in_range_and_balanced() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            for shards in [1usize, 2, 3, 4, 8] {
                let mut counts = vec![0usize; shards];
                for node in 0..4096 {
                    let a = shard_of(seed, node, shards);
                    let b = shard_of(seed, node, shards);
                    assert_eq!(a, b, "not a pure function");
                    assert!(a < shards);
                    counts[a] += 1;
                }
                if shards == 1 {
                    assert_eq!(counts[0], 4096);
                } else {
                    // Loose balance: no shard more than 2x the fair share.
                    let fair = 4096 / shards;
                    for &c in &counts {
                        assert!(c > fair / 2 && c < fair * 2, "unbalanced: {counts:?}");
                    }
                }
            }
        }
        // Different seeds shuffle the partition.
        let a: Vec<usize> = (0..64).map(|n| shard_of(1, n, 4)).collect();
        let b: Vec<usize> = (0..64).map(|n| shard_of(2, n, 4)).collect();
        assert_ne!(a, b);
    }

    // Per-node logs: cross-node interleaving is schedule-dependent in
    // parallel mode, but each node's own callback sequence is fully
    // deterministic.
    type NodeLogs = Arc<Mutex<HashMap<usize, Vec<String>>>>;

    fn log(logs: &NodeLogs, node: usize, msg: String) {
        logs.lock().unwrap().entry(node).or_default().push(msg);
    }

    struct Echo {
        logs: NodeLogs,
    }

    impl App for Echo {
        fn on_connected(&mut self, ctx: &mut Ctx<'_>, _c: ConnId, dir: Direction, _p: HostAddr) {
            log(
                &self.logs,
                ctx.node().0,
                format!("connected {dir:?} at {}", ctx.now()),
            );
        }
        fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
            log(
                &self.logs,
                ctx.node().0,
                format!("got {}", String::from_utf8_lossy(data)),
            );
            ctx.send(conn, data);
        }
        fn on_closed(&mut self, ctx: &mut Ctx<'_>, _conn: ConnId) {
            log(&self.logs, ctx.node().0, "closed".into());
        }
    }

    struct Client {
        logs: NodeLogs,
        server: HostAddr,
        payload: Vec<u8>,
    }

    impl App for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.server);
        }
        fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _d: Direction, _p: HostAddr) {
            ctx.send(conn, &self.payload.clone());
        }
        fn on_connect_failed(&mut self, ctx: &mut Ctx<'_>, _conn: ConnId) {
            log(&self.logs, ctx.node().0, "connect failed".into());
        }
        fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
            log(
                &self.logs,
                ctx.node().0,
                format!("echoed {}", String::from_utf8_lossy(data)),
            );
            ctx.close(conn);
        }
    }

    fn sharded_config(shards: usize) -> SimConfig {
        SimConfig {
            shards,
            ..SimConfig::default()
        }
    }

    #[test]
    fn sharded_echo_roundtrip() {
        let logs: NodeLogs = Arc::new(Mutex::new(HashMap::new()));
        let mut sim = Simulator::new(sharded_config(4), 1);
        let server = sim.spawn(
            NodeSpec::public().listen(6346),
            Box::new(Echo { logs: logs.clone() }),
        );
        let addr = sim.node_addr(server);
        let client = sim.spawn(
            NodeSpec::public(),
            Box::new(Client {
                logs: logs.clone(),
                server: addr,
                payload: b"ping".to_vec(),
            }),
        );
        sim.run_to_quiescence();
        let logs = logs.lock().unwrap();
        let server_log = &logs[&server.0];
        assert!(server_log[0].starts_with("connected Inbound"));
        assert_eq!(server_log[1], "got ping");
        assert_eq!(server_log[2], "closed");
        assert_eq!(logs[&client.0], vec!["echoed ping"]);
        assert_eq!(sim.metrics().conns_established, 1);
        assert_eq!(sim.metrics().conns_closed, 1);
    }

    #[test]
    fn sharded_dial_to_nobody_fails() {
        let logs: NodeLogs = Arc::new(Mutex::new(HashMap::new()));
        let mut sim = Simulator::new(sharded_config(2), 2);
        let phantom = HostAddr::new(std::net::Ipv4Addr::new(9, 9, 9, 9), 1234);
        let c = sim.spawn(
            NodeSpec::public(),
            Box::new(Client {
                logs: logs.clone(),
                server: phantom,
                payload: vec![],
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(logs.lock().unwrap()[&c.0], vec!["connect failed"]);
        assert_eq!(sim.metrics().conns_failed, 1);
    }

    #[test]
    fn sharded_timers_fire_in_order() {
        struct Timers {
            fired: Arc<Mutex<Vec<u64>>>,
        }
        impl App for Timers {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(3), 3);
                ctx.set_timer(SimDuration::from_secs(1), 1);
                ctx.set_timer(SimDuration::from_secs(2), 2);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.lock().unwrap().push(token);
            }
        }
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulator::new(sharded_config(3), 8);
        sim.spawn(
            NodeSpec::public(),
            Box::new(Timers {
                fired: fired.clone(),
            }),
        );
        sim.run_to_quiescence();
        assert_eq!(*fired.lock().unwrap(), vec![1, 2, 3]);
        assert_eq!(sim.metrics().timers_fired, 3);
    }

    /// One world, observed per-node: a listener plus a crowd of clients,
    /// with faults and fragmentation on to exercise every code path.
    fn run_world(shards: usize, seed: u64) -> (HashMap<usize, Vec<String>>, SimMetrics, SimTime) {
        let logs: NodeLogs = Arc::new(Mutex::new(HashMap::new()));
        let config = SimConfig {
            shards,
            shard_window_us: 500_000,
            mss: Some(256),
            faults: FaultPlan::mild(),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(config, seed);
        let server = sim.spawn(
            NodeSpec::public().listen(6346).durable(),
            Box::new(Echo { logs: logs.clone() }),
        );
        let addr = sim.node_addr(server);
        for i in 0..24 {
            sim.spawn(
                NodeSpec::public(),
                Box::new(Client {
                    logs: logs.clone(),
                    server: addr,
                    payload: format!("message-{i}-{}", "x".repeat(400)).into_bytes(),
                }),
            );
        }
        // Bounded run: mild() includes churn, whose up/down cycle reschedules
        // forever, so quiescence never comes (true of the serial loop too).
        sim.run_until(SimTime::from_secs(600));
        sim.run_until(SimTime::from_secs(1200));
        let mut metrics = sim.metrics().clone();
        // Pool statistics depend on how buffers partition across shards;
        // everything else is shard-count-invariant.
        metrics.pool_hits = 0;
        metrics.pool_misses = 0;
        metrics.pool_recycled_bytes = 0;
        metrics.pool_high_water = 0;
        let logs = logs.lock().unwrap().clone();
        (logs, metrics, sim.now())
    }

    #[test]
    fn trajectory_is_identical_across_shard_counts() {
        let base = run_world(2, 77);
        for shards in [3usize, 4, 8] {
            let other = run_world(shards, 77);
            assert_eq!(base.0, other.0, "per-node logs diverged at {shards} shards");
            assert_eq!(base.1, other.1, "metrics diverged at {shards} shards");
            assert_eq!(base.2, other.2, "final clock diverged at {shards} shards");
        }
    }

    #[test]
    fn trajectory_is_identical_across_repeated_runs() {
        // Same shard count, run twice: thread scheduling must not leak in.
        assert_eq!(run_world(4, 123), run_world(4, 123));
    }

    #[test]
    fn sharded_stop_node_closes_peer_connections() {
        let logs: NodeLogs = Arc::new(Mutex::new(HashMap::new()));
        let mut sim = Simulator::new(sharded_config(4), 7);
        let server = sim.spawn(
            NodeSpec::public().listen(1),
            Box::new(Echo { logs: logs.clone() }),
        );
        let addr = sim.node_addr(server);
        struct Idle {
            server: HostAddr,
            closed: Arc<Mutex<bool>>,
        }
        impl App for Idle {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.server);
            }
            fn on_closed(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId) {
                *self.closed.lock().unwrap() = true;
            }
        }
        let closed = Arc::new(Mutex::new(false));
        sim.spawn(
            NodeSpec::public(),
            Box::new(Idle {
                server: addr,
                closed: closed.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.is_alive(server));
        sim.stop_node(server);
        sim.run_to_quiescence();
        assert!(!sim.is_alive(server));
        assert!(*closed.lock().unwrap(), "peer should observe close");
    }

    #[test]
    fn sharded_mode_reports_exchange_bucket_and_depth_samples() {
        let logs: NodeLogs = Arc::new(Mutex::new(HashMap::new()));
        let mut sim = Simulator::new(sharded_config(2), 5);
        let server = sim.spawn(
            NodeSpec::public().listen(80),
            Box::new(Echo { logs: logs.clone() }),
        );
        let addr = sim.node_addr(server);
        sim.spawn(
            NodeSpec::public(),
            Box::new(Client {
                logs,
                server: addr,
                payload: b"z".to_vec(),
            }),
        );
        sim.run_to_quiescence();
        let m = sim.metrics();
        // Window boundaries sampled the queue depth without the harness
        // calling sample_queue_depth.
        assert!(
            m.telemetry.hist(SimHist::QueueDepth).count() > 0,
            "no boundary depth samples"
        );
        assert!(m.queue_high_water > 0);
    }
}
