//! Payload buffer recycling.
//!
//! Every `Ctx::send` used to allocate a fresh `Vec<u8>`, and every MSS
//! fragment another one — at paper scale that is tens of millions of
//! short-lived allocations whose lifetimes all end inside `on_data`. The
//! pool keeps freed buffers on a free list and hands them back out, and the
//! MSS fan-out path shares one buffer across all fragments instead of
//! copying each chunk.

use std::ops::Deref;
use std::sync::Arc;

/// Buffers retained on the free list; beyond this, freed buffers drop.
const MAX_POOLED_BUFFERS: usize = 1024;
/// Buffers whose payload exceeds this are not retained, and retained
/// buffers are shrunk to at most this capacity (a month-scale run
/// occasionally moves multi-megabyte payloads; hoarding those would pin
/// memory long after the transfer).
const MAX_POOLED_CAPACITY: usize = 256 * 1024;

/// Counters the simulator mirrors into `SimMetrics`.
#[derive(Debug, Default, Clone)]
pub(crate) struct PoolStats {
    /// Acquisitions served from the free list.
    pub hits: u64,
    /// Acquisitions that had to allocate.
    pub misses: u64,
    /// Total payload bytes whose buffers returned to the free list. This
    /// counts buffer *contents*, not capacity: the simulated apps fan
    /// messages out over `HashMap`-ordered peer sets, so while every
    /// payload is delivered at a deterministic time, the pairing of
    /// payloads to recycled buffers (and hence capacity growth) is not —
    /// content bytes are, keeping the metric reproducible run to run.
    pub recycled_bytes: u64,
    /// Peak free-list length.
    pub high_water: u64,
}

/// A free list of reusable byte buffers.
#[derive(Default)]
pub(crate) struct BufferPool {
    free: Vec<Vec<u8>>,
    pub stats: PoolStats,
}

impl BufferPool {
    /// Returns a buffer containing a copy of `data`, reusing a freed
    /// buffer when one is available.
    pub fn acquire(&mut self, data: &[u8]) -> Vec<u8> {
        let mut buf = match self.free.pop() {
            Some(b) => {
                self.stats.hits += 1;
                b
            }
            None => {
                self.stats.misses += 1;
                Vec::new()
            }
        };
        buf.clear();
        buf.extend_from_slice(data);
        buf
    }

    /// Returns a buffer to the free list (or drops it if the list is full
    /// or the payload it carried is oversized).
    pub fn release(&mut self, mut buf: Vec<u8>) {
        if self.free.len() >= MAX_POOLED_BUFFERS || buf.len() > MAX_POOLED_CAPACITY {
            return;
        }
        self.stats.recycled_bytes += buf.len() as u64;
        if buf.capacity() > MAX_POOLED_CAPACITY {
            buf.shrink_to(MAX_POOLED_CAPACITY);
        }
        self.free.push(buf);
        let len = self.free.len() as u64;
        if len > self.stats.high_water {
            self.stats.high_water = len;
        }
    }

    /// Reclaims a delivered payload's storage where possible: owned
    /// buffers always return; a shared buffer returns when this was the
    /// last fragment referencing it.
    pub fn recycle(&mut self, payload: Payload) {
        match payload {
            Payload::Owned(buf) => self.release(buf),
            Payload::Shared { buf, .. } => {
                if let Ok(inner) = Arc::try_unwrap(buf) {
                    self.release(inner);
                }
            }
        }
    }
}

/// Bytes in flight: either a whole (pooled) buffer, or a zero-copy window
/// into a buffer shared by every fragment of one MSS fan-out.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    Owned(Vec<u8>),
    Shared {
        buf: Arc<Vec<u8>>,
        start: usize,
        end: usize,
    },
}

impl Payload {
    pub fn len(&self) -> usize {
        match self {
            Payload::Owned(v) => v.len(),
            Payload::Shared { start, end, .. } => end - start,
        }
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared { buf, start, end } => &buf[*start..*end],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_copies_and_reuses() {
        let mut pool = BufferPool::default();
        let a = pool.acquire(b"hello");
        assert_eq!(a, b"hello");
        assert_eq!(pool.stats.misses, 1);
        pool.release(a);
        assert_eq!(pool.stats.recycled_bytes, 5);
        let b = pool.acquire(b"hi");
        assert_eq!(b, b"hi");
        assert_eq!(pool.stats.hits, 1);
    }

    #[test]
    fn oversized_payloads_are_not_retained() {
        let mut pool = BufferPool::default();
        pool.release(vec![0u8; MAX_POOLED_CAPACITY + 1]);
        assert_eq!(pool.free.len(), 0);
        assert_eq!(pool.stats.recycled_bytes, 0);
    }

    #[test]
    fn retained_buffers_are_shrunk_to_the_cap() {
        let mut pool = BufferPool::default();
        let mut big = Vec::with_capacity(MAX_POOLED_CAPACITY * 4);
        big.resize(10, 0u8);
        pool.release(big);
        assert_eq!(pool.free.len(), 1);
        assert!(pool.free[0].capacity() <= MAX_POOLED_CAPACITY);
        assert_eq!(pool.stats.recycled_bytes, 10);
    }

    #[test]
    fn shared_payload_recycles_on_last_fragment() {
        let mut pool = BufferPool::default();
        let buf = Arc::new(vec![0u8; 300]);
        let a = Payload::Shared {
            buf: buf.clone(),
            start: 0,
            end: 100,
        };
        let b = Payload::Shared {
            buf: buf.clone(),
            start: 100,
            end: 300,
        };
        drop(buf);
        assert_eq!(a.len(), 100);
        assert_eq!(&b[..4], &[0, 0, 0, 0]);
        pool.recycle(a);
        assert_eq!(pool.free.len(), 0, "still referenced by b");
        pool.recycle(b);
        assert_eq!(pool.free.len(), 1, "last fragment returns the buffer");
        assert_eq!(pool.stats.recycled_bytes, 300);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = BufferPool::default();
        for _ in 0..MAX_POOLED_BUFFERS + 50 {
            pool.release(vec![1, 2, 3]);
        }
        assert_eq!(pool.free.len(), MAX_POOLED_BUFFERS);
        assert_eq!(pool.stats.high_water, MAX_POOLED_BUFFERS as u64);
    }
}
