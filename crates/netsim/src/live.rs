//! Runs a sans-IO [`App`] over real TCP sockets.
//!
//! This is the second transport behind the [`App`] trait: the same protocol
//! state machines that run under the simulator can be attached to actual
//! `std::net` sockets, demonstrating that the implementations are wire-real
//! and not simulator artifacts (see `examples/live_tcp.rs`).
//!
//! The runtime is intentionally simple — one OS thread multiplexes each
//! node's callbacks through an mpsc channel, one reader thread per
//! connection, one thread per armed timer. That is plenty for examples and
//! integration tests; month-scale studies stay on the simulator.

use crate::addr::HostAddr;
use crate::app::NodeId;
use crate::app::{Action, App, ConnId, Ctx, Direction, TimerToken};
use crate::pool::BufferPool;
use crate::profile::SubsystemProfile;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum LiveEvent {
    Start,
    Connected {
        conn: ConnId,
        dir: Direction,
        peer: HostAddr,
        stream: TcpStream,
    },
    ConnectFailed {
        conn: ConnId,
    },
    Data {
        conn: ConnId,
        data: Vec<u8>,
    },
    Closed {
        conn: ConnId,
    },
    Timer {
        token: TimerToken,
    },
    Stop,
}

fn to_host_addr(sa: SocketAddr) -> HostAddr {
    match sa {
        SocketAddr::V4(v4) => HostAddr::new(*v4.ip(), v4.port()),
        SocketAddr::V6(_) => HostAddr::new(Ipv4Addr::LOCALHOST, sa.port()),
    }
}

fn spawn_reader(conn: ConnId, stream: TcpStream, tx: Sender<LiveEvent>) {
    std::thread::spawn(move || {
        let mut stream = stream;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => {
                    let _ = tx.send(LiveEvent::Closed { conn });
                    return;
                }
                Ok(n) => {
                    if tx
                        .send(LiveEvent::Data {
                            conn,
                            data: buf[..n].to_vec(),
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            }
        }
    });
}

/// A node running over real TCP on a background thread.
pub struct LiveNode {
    addr: HostAddr,
    tx: Sender<LiveEvent>,
    stopped: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl LiveNode {
    /// Binds `127.0.0.1:port` (0 picks a free port), starts the listener and
    /// app thread, and delivers `on_start`.
    pub fn spawn(app: Box<dyn App + Send>, port: u16) -> std::io::Result<LiveNode> {
        let listener = TcpListener::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))?;
        let addr = to_host_addr(listener.local_addr()?);
        let (tx, rx) = channel::<LiveEvent>();
        let stopped = Arc::new(AtomicBool::new(false));
        let next_conn = Arc::new(AtomicU64::new(1));

        // Acceptor thread: inbound connections become Connected events.
        {
            let tx = tx.clone();
            let stopped = stopped.clone();
            let next_conn = next_conn.clone();
            listener.set_nonblocking(true)?;
            std::thread::spawn(move || {
                while !stopped.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            let conn = ConnId(next_conn.fetch_add(1, Ordering::Relaxed));
                            let _ = stream.set_nonblocking(false);
                            let _ = tx.send(LiveEvent::Connected {
                                conn,
                                dir: Direction::Inbound,
                                peer: to_host_addr(peer),
                                stream,
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            });
        }

        let thread = {
            let tx_self = tx.clone();
            let stopped = stopped.clone();
            std::thread::spawn(move || {
                run_app_loop(app, addr, rx, tx_self, next_conn, stopped);
            })
        };
        let _ = tx.send(LiveEvent::Start);
        Ok(LiveNode {
            addr,
            tx,
            stopped,
            thread: Some(thread),
        })
    }

    /// The address peers can dial.
    pub fn addr(&self) -> HostAddr {
        self.addr
    }

    /// Stops the node and joins its app thread.
    pub fn stop(mut self) {
        self.stopped.store(true, Ordering::Relaxed);
        let _ = self.tx.send(LiveEvent::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LiveNode {
    fn drop(&mut self) {
        self.stopped.store(true, Ordering::Relaxed);
        let _ = self.tx.send(LiveEvent::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn run_app_loop(
    mut app: Box<dyn App + Send>,
    addr: HostAddr,
    rx: Receiver<LiveEvent>,
    tx: Sender<LiveEvent>,
    next_conn: Arc<AtomicU64>,
    stopped: Arc<AtomicBool>,
) {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(0x11_7e_c0_de);
    let mut pool = BufferPool::default();
    let mut profile = SubsystemProfile::new();
    let mut registry = crate::telemetry::MetricsRegistry::new();
    let mut telemetry = crate::telemetry::Telemetry::disabled();
    let mut streams: HashMap<u64, TcpStream> = HashMap::new();
    // `Ctx.next_conn` needs a plain &mut u64; reconcile with the shared
    // atomic after each callback.
    while let Ok(ev) = rx.recv() {
        if stopped.load(Ordering::Relaxed) {
            break;
        }
        let mut actions = Vec::new();
        let mut conn_counter = next_conn.load(Ordering::Relaxed);
        {
            let mut ctx = Ctx {
                now: SimTime::from_micros(start.elapsed().as_micros() as u64),
                node: NodeId(0),
                local_addr: addr,
                external_addr: addr,
                rng: &mut rng,
                actions: &mut actions,
                next_conn: &mut conn_counter,
                pool: &mut pool,
                profile: &mut profile,
                registry: &mut registry,
                telemetry: &mut telemetry,
            };
            match ev {
                LiveEvent::Start => app.on_start(&mut ctx),
                LiveEvent::Connected {
                    conn,
                    dir,
                    peer,
                    stream,
                } => {
                    if let Ok(reader) = stream.try_clone() {
                        spawn_reader(conn, reader, tx.clone());
                    }
                    streams.insert(conn.0, stream);
                    app.on_connected(&mut ctx, conn, dir, peer);
                }
                LiveEvent::ConnectFailed { conn } => app.on_connect_failed(&mut ctx, conn),
                LiveEvent::Data { conn, data } => app.on_data(&mut ctx, conn, &data),
                LiveEvent::Closed { conn } => {
                    streams.remove(&conn.0);
                    app.on_closed(&mut ctx, conn);
                }
                LiveEvent::Timer { token } => app.on_timer(&mut ctx, token),
                LiveEvent::Stop => break,
            }
        }
        next_conn.store(conn_counter, Ordering::Relaxed);
        // Apply buffered actions.
        for act in actions {
            match act {
                Action::Connect { conn, target } => {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let sa = SocketAddrV4::new(target.ip, target.port);
                        match TcpStream::connect_timeout(&sa.into(), Duration::from_secs(5)) {
                            Ok(stream) => {
                                let peer =
                                    to_host_addr(stream.peer_addr().unwrap_or_else(|_| sa.into()));
                                let _ = tx.send(LiveEvent::Connected {
                                    conn,
                                    dir: Direction::Outbound,
                                    peer,
                                    stream,
                                });
                            }
                            Err(_) => {
                                let _ = tx.send(LiveEvent::ConnectFailed { conn });
                            }
                        }
                    });
                }
                Action::Send { conn, data } => {
                    let mut failed = false;
                    if let Some(s) = streams.get_mut(&conn.0) {
                        failed = s.write_all(&data).is_err();
                    }
                    pool.release(data);
                    if failed {
                        streams.remove(&conn.0);
                        let _ = tx.send(LiveEvent::Closed { conn });
                    }
                }
                Action::Close { conn } => {
                    if let Some(s) = streams.remove(&conn.0) {
                        let _ = s.shutdown(Shutdown::Both);
                    }
                }
                Action::Timer { delay, token } => {
                    let tx = tx.clone();
                    let d = Duration::from_micros(delay.as_micros());
                    std::thread::spawn(move || {
                        std::thread::sleep(d);
                        let _ = tx.send(LiveEvent::Timer { token });
                    });
                }
                Action::Shutdown => {
                    stopped.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
    // Readers notice closed sockets when streams drop here.
    for (_, s) in streams {
        let _ = s.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct EchoServer;
    impl App for EchoServer {
        fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
            ctx.send(conn, data);
        }
    }

    struct OnceClient {
        target: HostAddr,
        got: Arc<Mutex<Vec<u8>>>,
    }
    impl App for OnceClient {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.target);
        }
        fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _d: Direction, _p: HostAddr) {
            ctx.send(conn, b"over real tcp");
        }
        fn on_data(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, data: &[u8]) {
            self.got.lock().unwrap().extend_from_slice(data);
        }
    }

    #[test]
    fn echo_over_real_sockets() {
        let server = LiveNode::spawn(Box::new(EchoServer), 0).unwrap();
        let got = Arc::new(Mutex::new(Vec::new()));
        let client = LiveNode::spawn(
            Box::new(OnceClient {
                target: server.addr(),
                got: got.clone(),
            }),
            0,
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if got.lock().unwrap().as_slice() == b"over real tcp" {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(got.lock().unwrap().as_slice(), b"over real tcp");
        client.stop();
        server.stop();
    }
}
