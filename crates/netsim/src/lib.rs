//! A deterministic discrete-event network simulator.
//!
//! The IMC 2006 study ran its instrumented clients against the live Gnutella
//! and OpenFT networks for over a month. Those networks no longer exist, so
//! this crate provides the substitute substrate: a virtual internet with
//! simulated time, IPv4 address allocation (public pools plus RFC 1918
//! private ranges behind NAT), and reliable ordered byte-stream connections
//! with per-link latency and per-direction bandwidth serialization.
//!
//! Protocol implementations are *sans-IO state machines* implementing the
//! [`App`] trait: every callback receives a [`Ctx`] through which the app
//! reads the clock, sends bytes, opens/closes connections and arms timers.
//! The same trait runs unchanged over real TCP sockets via the [`live`]
//! module, which is how the `live_tcp` example demonstrates wire-level
//! fidelity outside the simulator.
//!
//! Determinism contract: given the same seed and the same sequence of API
//! calls, a simulation produces byte-identical event orderings. All
//! randomness flows through one seeded [`rand::rngs::StdRng`]; ties in the
//! event heap break on a monotonically increasing sequence number.
//!
//! ```
//! use p2pmal_netsim::{Simulator, SimConfig, App, Ctx, ConnId, Direction, NodeSpec, SimTime};
//!
//! struct Echo;
//! impl App for Echo {
//!     fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
//!         ctx.send(conn, data); // echo back
//!     }
//! }
//!
//! struct Client { server: p2pmal_netsim::HostAddr, got: usize }
//! impl App for Client {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         let conn = ctx.connect(self.server);
//!         let _ = conn;
//!     }
//!     fn on_connected(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _dir: Direction, _peer: p2pmal_netsim::HostAddr) {
//!         ctx.send(conn, b"ping");
//!     }
//!     fn on_data(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, data: &[u8]) {
//!         self.got += data.len();
//!     }
//! }
//!
//! let mut sim = Simulator::new(SimConfig::default(), 42);
//! let server = sim.spawn(NodeSpec::public().listen(6346), Box::new(Echo));
//! let server_addr = sim.node_addr(server);
//! sim.spawn(NodeSpec::public(), Box::new(Client { server: server_addr, got: 0 }));
//! sim.run_until(SimTime::from_secs(10));
//! ```

mod addr;
mod app;
pub mod compact;
mod event;
mod faults;
pub mod live;
mod metrics;
mod pool;
mod profile;
pub mod queue;
mod shard;
mod sim;
pub mod telemetry;
mod time;

pub use addr::{ip_class, AddressAllocator, HostAddr, IpClass};
pub use app::{App, ConnId, Ctx, Direction, NodeId, TimerToken};
pub use compact::{FifoMap, FifoSet, KeyHash, VecMap};
pub use faults::{ChurnSpec, FaultPlan};
pub use metrics::{process_rss_kb, MemoryStats, SimMetrics};
pub use profile::{Subsystem, SubsystemProfile, SUBSYSTEM_COUNT};
pub use queue::{CalendarQueue, HeapQueue, Scheduler, SchedulerKind};
pub use shard::shard_of;
pub use sim::{NodeSpec, SimConfig, Simulator};
pub use telemetry::span as telemetry_span;
pub use telemetry::{
    Counter, EventBody, EventCategory, FaultKind, Gauge, HistSummary, Log2Histogram,
    MetricsRegistry, NullSink, RingSink, SimHist, SpanCtx, Telemetry, TelemetryConfig,
    TelemetryEvent, TelemetrySink, WallHist,
};
pub use time::{SimDuration, SimTime};
